//! Regenerates the paper's Fig. 4: the optimal schedules of the two longest
//! alternative paths of the Fig. 1 example and the adjusted activation times
//! the merged schedule table assigns to the second of them.

#![forbid(unsafe_code)]

fn main() {
    print!("{}", cpg_bench::fig4_report());
}
