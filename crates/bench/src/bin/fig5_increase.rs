//! Regenerates the paper's Fig. 5: the average percentage increase of the
//! worst-case delay over the longest-path delay as a function of the number
//! of merged schedules, for graphs of 60, 80 and 120 nodes, plus the fraction
//! of graphs with zero increase.
//!
//! Usage: `fig5_increase [graphs_per_size]` (default 30; the paper uses 360).

#![forbid(unsafe_code)]

fn main() {
    let graphs_per_size = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(30);
    eprintln!("running the Fig. 5 experiment on {graphs_per_size} graphs per size...");
    let outcomes = cpg_bench::run_suite(graphs_per_size);
    print!("{}", cpg_bench::fig5_rows(&outcomes));
}
