//! Regenerates the paper's Fig. 2: the lengths of the optimal schedules of
//! the alternative paths of the Fig. 1 example and the decision tree explored
//! while merging them.

#![forbid(unsafe_code)]

fn main() {
    print!("{}", cpg_bench::fig2_report());
}
