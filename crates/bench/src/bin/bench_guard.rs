//! Benchmark regression gate, normalized by code-stable calibration
//! benchmarks so it is independent of the absolute speed of the machine.
//!
//! Compares a fresh criterion-shim measurement (the JSON-lines file produced
//! by running `cargo bench` with `CRITERION_JSON=<path>`) against a committed
//! baseline (`BENCH_4.json`) and fails when any gated median
//! (`schedule_merging_serial/*` and `merge_walk/*` — the one-thread-pinned
//! merge trajectories, whose cost is core-count-independent) regresses by
//! more than the allowed percentage; the default-parallelism
//! `schedule_merging/*` group is reported for information (see
//! `GATED_PREFIXES`).
//!
//! When both files contain the `calibration/spin` benchmark (a fixed integer
//! workload that never changes with the scheduler code, see
//! `benches/calibration.rs`), every current median is divided by the machine
//! scale `current calibration / baseline calibration` before comparing:
//! a runner that is uniformly 2× slower than the recording machine measures
//! a 2× slower calibration spin too, and the gated ratios cancel the
//! difference out. Benches listed in `MEM_SENSITIVE_PREFIXES` are normalized
//! by the memory-bound `calibration/chase` probe instead (dependent pointer
//! chasing through a cache-busting buffer): their cost tracks memory latency
//! rather than ALU speed, which `spin` is blind to. Each probe falls back
//! independently — no chase on both sides degrades to the spin scale, no
//! spin degrades to comparing absolute nanoseconds (the pre-calibration
//! behaviour, needed for old baselines such as `BENCH_1.json`).
//!
//! ```text
//! CRITERION_JSON=bench_current.json cargo bench --bench calibration \
//!     --bench merge_time --bench path_schedule_time
//! cargo run --release -p cpg-bench --bin bench_guard -- \
//!     --baseline BENCH_4.json --current bench_current.json
//! ```
//!
//! `--emit <path> --label <name>` additionally writes the current
//! measurements as a composed baseline document (the format of the committed
//! `BENCH_*.json` files), which is how new baselines are produced.
//!
//! Both the appended JSON-lines format and the composed baseline document are
//! accepted as input: the parser simply pairs `"benchmark"` strings with the
//! `"median_ns_per_iter"` numbers that follow them.

use std::fmt::Write as _;
use std::process::ExitCode;

/// Benchmarks whose regression fails the gate; everything else is reported
/// for information only. Only the one-thread-pinned groups are gated — the
/// full serial merge trajectory and the deep-condition-nest walk trajectory
/// (`merge_walk/`, where the sequential decision-tree walk dominates): the
/// default-parallelism `schedule_merging/` group scales with the runner's
/// core count, which neither calibration probe (both single-threaded) can
/// normalize out — gating it would fail spuriously on any runner with fewer
/// cores than the baseline machine, exactly the hardware dependence the
/// calibration exists to prevent. The parallel medians are still measured,
/// reported and recorded in every baseline.
const GATED_PREFIXES: &[&str] = &["schedule_merging_serial/", "merge_walk/"];

/// The code-stable compute-bound calibration benchmark used to normalize out
/// clock/IPC differences between machines.
const CALIBRATION_BENCH: &str = "calibration/spin";

/// The code-stable memory-bound calibration benchmark (dependent pointer
/// chasing through a cache-busting buffer) used to normalize the
/// memory-sensitive benches below.
const MEM_CALIBRATION_BENCH: &str = "calibration/chase";

/// Benchmarks whose cost tracks memory latency rather than ALU speed: they
/// are normalized by [`MEM_CALIBRATION_BENCH`] when both files measured it,
/// falling back to the compute scale otherwise. The single-path list
/// scheduler walks dense per-track state end to end with almost no
/// arithmetic per touched cell, which makes it the canonical memory-bound
/// workload of this suite.
const MEM_SENSITIVE_PREFIXES: &[&str] = &["path_list_scheduling/"];

/// Allowed regression of a gated calibration-normalized median, in percent.
const ALLOWED_REGRESSION_PERCENT: f64 = 25.0;

fn matches_any(name: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|prefix| name.starts_with(prefix))
}

fn main() -> ExitCode {
    let mut baseline_path = String::from("BENCH_4.json");
    let mut current_path = None;
    let mut emit_path = None;
    let mut label = String::from("BENCH_CURRENT");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--baseline" => baseline_path = value("--baseline"),
            "--current" => current_path = Some(value("--current")),
            "--emit" => emit_path = Some(value("--emit")),
            "--label" => label = value("--label"),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: bench_guard --current <json> [--baseline <json>] \
                     [--emit <json> --label <name>]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(current_path) = current_path else {
        eprintln!("--current <json> is required (the CRITERION_JSON output of cargo bench)");
        return ExitCode::FAILURE;
    };

    let current = match read_benchmarks(&current_path) {
        Ok(rows) if !rows.is_empty() => rows,
        Ok(_) => {
            eprintln!("no benchmarks found in {current_path}");
            return ExitCode::FAILURE;
        }
        Err(error) => {
            eprintln!("cannot read {current_path}: {error}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(emit_path) = emit_path {
        let doc = compose_baseline(&label, &current);
        if let Err(error) = std::fs::write(&emit_path, doc) {
            eprintln!("cannot write {emit_path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} benchmarks to {emit_path}", current.len());
    }

    let baseline = match read_benchmarks(&baseline_path) {
        Ok(rows) => rows,
        Err(error) => {
            eprintln!("cannot read baseline {baseline_path}: {error}");
            return ExitCode::FAILURE;
        }
    };

    // Machine scales: how much slower (or faster) this run's hardware is
    // than the machine that recorded the baseline, measured by the
    // code-stable calibration benchmarks present in both files — one probe
    // for compute speed, one for memory latency.
    let calibration_of = |rows: &[(String, f64)], name: &str| {
        rows.iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .filter(|&m| m > 0.0)
    };
    let scale = match (
        calibration_of(&baseline, CALIBRATION_BENCH),
        calibration_of(&current, CALIBRATION_BENCH),
    ) {
        (Some(base_cal), Some(current_cal)) => {
            let scale = current_cal / base_cal;
            println!(
                "calibration ({CALIBRATION_BENCH}): baseline {base_cal:.0} ns, \
                 current {current_cal:.0} ns -> compute scale {scale:.3}"
            );
            scale
        }
        (Some(_), None) => {
            // The baseline was recorded with calibration, so comparing raw
            // nanoseconds against it would bring back exactly the
            // machine-dependent failures the calibration exists to prevent:
            // the current run is misconfigured (it did not include
            // `--bench calibration`).
            eprintln!(
                "\"{CALIBRATION_BENCH}\" is in {baseline_path} but missing from \
                 {current_path}; run cargo bench with --bench calibration"
            );
            return ExitCode::FAILURE;
        }
        (None, _) => {
            eprintln!(
                "warning: \"{CALIBRATION_BENCH}\" missing from baseline {baseline_path}; \
                 comparing absolute (machine-dependent) nanoseconds"
            );
            1.0
        }
    };
    let mem_scale = match (
        calibration_of(&baseline, MEM_CALIBRATION_BENCH),
        calibration_of(&current, MEM_CALIBRATION_BENCH),
    ) {
        (Some(base_cal), Some(current_cal)) => {
            let mem_scale = current_cal / base_cal;
            println!(
                "calibration ({MEM_CALIBRATION_BENCH}): baseline {base_cal:.0} ns, \
                 current {current_cal:.0} ns -> memory scale {mem_scale:.3}"
            );
            Some(mem_scale)
        }
        (Some(_), None) => {
            eprintln!(
                "\"{MEM_CALIBRATION_BENCH}\" is in {baseline_path} but missing from \
                 {current_path}; run cargo bench with --bench calibration"
            );
            return ExitCode::FAILURE;
        }
        (None, _) => {
            // Pre-chase baselines (BENCH_2 and older): memory-sensitive
            // benches degrade to the compute scale instead of failing.
            eprintln!(
                "warning: \"{MEM_CALIBRATION_BENCH}\" missing from baseline {baseline_path}; \
                 normalizing memory-sensitive benches by the compute scale"
            );
            None
        }
    };

    let mut failures = 0usize;
    println!(
        "{:<36} {:>14} {:>14} {:>9}  gate",
        "benchmark", "baseline (ns)", "normalized (ns)", "change"
    );
    for (name, base_median) in &baseline {
        if name == CALIBRATION_BENCH || name == MEM_CALIBRATION_BENCH {
            continue;
        }
        let Some((_, current_median)) = current.iter().find(|(n, _)| n == name) else {
            println!(
                "{name:<36} {base_median:>14.0} {:>14} {:>9}  MISSING",
                "-", "-"
            );
            if matches_any(name, GATED_PREFIXES) {
                failures += 1;
            }
            continue;
        };
        let mem_sensitive = matches_any(name, MEM_SENSITIVE_PREFIXES);
        let row_scale = if mem_sensitive {
            mem_scale.unwrap_or(scale)
        } else {
            scale
        };
        let normalized = current_median / row_scale;
        let change = (normalized - base_median) / base_median * 100.0;
        let gated = matches_any(name, GATED_PREFIXES);
        let verdict = match (gated, change > ALLOWED_REGRESSION_PERCENT) {
            (false, _) if mem_sensitive && mem_scale.is_some() => "info (mem)",
            (false, _) => "info",
            (true, true) => {
                failures += 1;
                "FAIL"
            }
            (true, false) => "ok",
        };
        println!("{name:<36} {base_median:>14.0} {normalized:>14.0} {change:>+8.1}%  {verdict}");
    }

    if failures > 0 {
        eprintln!(
            "{failures} gated benchmark(s) regressed more than \
             {ALLOWED_REGRESSION_PERCENT}% (calibration-normalized, or went missing) \
             against {baseline_path}"
        );
        return ExitCode::FAILURE;
    }
    println!("benchmark gate passed against {baseline_path}");
    ExitCode::SUCCESS
}

/// Extracts `(benchmark, median_ns_per_iter)` pairs from either the appended
/// JSON-lines format of the criterion shim or a composed baseline document.
///
/// The shim *appends* to `CRITERION_JSON`, so a file left over from an
/// earlier `cargo bench` run contains multiple entries per benchmark; the
/// newest (last) measurement wins and a warning is printed, so the gate and
/// `--emit` never silently act on stale numbers.
fn read_benchmarks(path: &str) -> Result<Vec<(String, f64)>, std::io::Error> {
    let text = std::fs::read_to_string(path)?;
    let mut rows: Vec<(String, f64)> = Vec::new();
    let mut duplicates = 0usize;
    let mut rest = text.as_str();
    while let Some(pos) = rest.find("\"benchmark\"") {
        rest = &rest[pos + "\"benchmark\"".len()..];
        let Some(name) = extract_string(rest) else {
            break;
        };
        let Some(pos) = rest.find("\"median_ns_per_iter\"") else {
            break;
        };
        rest = &rest[pos + "\"median_ns_per_iter\"".len()..];
        let Some(median) = extract_number(rest) else {
            break;
        };
        if let Some(row) = rows.iter_mut().find(|(n, _)| *n == name) {
            duplicates += 1;
            row.1 = median;
        } else {
            rows.push((name, median));
        }
    }
    if duplicates > 0 {
        eprintln!(
            "warning: {path} contains {duplicates} repeated benchmark entr{} \
             (appended by successive cargo bench runs); using the newest of each",
            if duplicates == 1 { "y" } else { "ies" }
        );
    }
    Ok(rows)
}

/// The first JSON string value after a `:` in `text`.
fn extract_string(text: &str) -> Option<String> {
    let start = text.find('"')?;
    let rest = &text[start + 1..];
    let end = rest.find('"')?;
    Some(rest[..end].to_owned())
}

/// The first JSON number after a `:` in `text`.
fn extract_number(text: &str) -> Option<f64> {
    let colon = text.find(':')?;
    let rest = text[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders the composed baseline document committed as `BENCH_*.json`.
fn compose_baseline(label: &str, rows: &[(String, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"baseline\": \"{label}\",");
    let _ = writeln!(
        out,
        "  \"command\": \"CRITERION_JSON=<path> cargo bench --bench calibration --bench merge_time --bench path_schedule_time\","
    );
    let _ = writeln!(out, "  \"units\": \"median nanoseconds per iteration\",");
    let _ = writeln!(out, "  \"benchmarks\": [");
    for (i, (name, median)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"benchmark\": \"{name}\",");
        let _ = writeln!(out, "      \"median_ns_per_iter\": {median}");
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
