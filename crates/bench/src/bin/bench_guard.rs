//! Benchmark regression gate, normalized by code-stable calibration
//! benchmarks so it is independent of the absolute speed of the machine.
//!
//! Compares a fresh criterion-shim measurement (the JSON-lines file produced
//! by running `cargo bench` with `CRITERION_JSON=<path>`) against a committed
//! baseline (`BENCH_7.json`) and fails when any gated median
//! (`schedule_merging_serial/*`, `merge_walk/*` and `merge_rewalk/*` — the
//! one-thread-pinned merge trajectories, whose cost is
//! core-count-independent) regresses by
//! more than the allowed percentage; the default-parallelism
//! `schedule_merging/*` and speculative-walk `merge_walk_par/*` groups are
//! reported for information (see `GATED_PREFIXES`).
//!
//! A gated group must be *present* on both sides: a gated prefix with no row
//! in the current measurement means the bench run was misconfigured, and one
//! with no row in the baseline means the baseline predates the group — both
//! fail hard instead of silently gating nothing (a renamed or dropped gated
//! group used to pass the guard without measuring anything).
//!
//! When both files contain the `calibration/spin` benchmark (a fixed integer
//! workload that never changes with the scheduler code, see
//! `benches/calibration.rs`), every current median is divided by the machine
//! scale `current calibration / baseline calibration` before comparing:
//! a runner that is uniformly 2× slower than the recording machine measures
//! a 2× slower calibration spin too, and the gated ratios cancel the
//! difference out. Benches listed in `MEM_SENSITIVE_PREFIXES` are normalized
//! by the memory-bound `calibration/chase` probe instead (dependent pointer
//! chasing through a cache-busting buffer): their cost tracks memory latency
//! rather than ALU speed, which `spin` is blind to. Each probe falls back
//! independently — no chase on both sides degrades to the spin scale, no
//! spin degrades to comparing absolute nanoseconds (the pre-calibration
//! behaviour, needed for old baselines such as `BENCH_1.json`).
//!
//! A gated row *fails* only when it is beyond the threshold under **both**
//! probes' scales: a genuine code regression reproduces under either
//! normalization (the two scales differ only by machine factors), while a
//! row that regresses under exactly one probe is a machine-profile shift —
//! a runner whose memory is slower relative to its ALU than the recording
//! machine's inflates every memory-touching median in a way the
//! compute-only spin scale cannot correct (and vice versa). Such rows pass
//! with an `ok (shift)` verdict and a stderr warning.
//!
//! ```text
//! CRITERION_JSON=bench_current.json cargo bench --bench calibration \
//!     --bench merge_time --bench path_schedule_time
//! cargo run --release -p cpg-bench --bin bench_guard -- \
//!     --baseline BENCH_7.json --current bench_current.json
//! ```
//!
//! `--emit <path> --label <name>` additionally writes the current
//! measurements as a composed baseline document (the format of the committed
//! `BENCH_*.json` files), which is how new baselines are produced.
//!
//! Both the appended JSON-lines format and the composed baseline document are
//! accepted as input: the parser simply pairs `"benchmark"` strings with the
//! `"median_ns_per_iter"` numbers that follow them.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::process::ExitCode;

/// Benchmarks whose regression fails the gate; everything else is reported
/// for information only. Only the one-thread-pinned groups are gated — the
/// full serial merge trajectory, the deep-condition-nest walk trajectory
/// (`merge_walk/`, where the sequential decision-tree walk dominates) and
/// the incremental re-merge trajectory (`merge_rewalk/`, whose `warm/*`
/// rows hold the session's cached-replay speedup and whose `cold/*` rows
/// anchor the ratio): the
/// default-parallelism `schedule_merging/` group and the speculative
/// `merge_walk_par/` group scale with the runner's core count, which neither
/// calibration probe (both single-threaded) can normalize out — gating them
/// would fail spuriously on any runner with fewer cores than the baseline
/// machine, exactly the hardware dependence the calibration exists to
/// prevent. The parallel medians are still measured, reported and recorded
/// in every baseline.
const GATED_PREFIXES: &[&str] = &["schedule_merging_serial/", "merge_walk/", "merge_rewalk/"];

/// The code-stable compute-bound calibration benchmark used to normalize out
/// clock/IPC differences between machines.
const CALIBRATION_BENCH: &str = "calibration/spin";

/// The code-stable memory-bound calibration benchmark (dependent pointer
/// chasing through a cache-busting buffer) used to normalize the
/// memory-sensitive benches below.
const MEM_CALIBRATION_BENCH: &str = "calibration/chase";

/// Benchmarks whose cost tracks memory latency rather than ALU speed: they
/// are normalized by [`MEM_CALIBRATION_BENCH`] when both files measured it,
/// falling back to the compute scale otherwise. The single-path list
/// scheduler walks dense per-track state end to end with almost no
/// arithmetic per touched cell, which makes it the canonical memory-bound
/// workload of this suite.
const MEM_SENSITIVE_PREFIXES: &[&str] = &["path_list_scheduling/"];

/// Allowed regression of a gated calibration-normalized median, in percent.
const ALLOWED_REGRESSION_PERCENT: f64 = 25.0;

fn matches_any(name: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|prefix| name.starts_with(prefix))
}

/// The outcome of comparing a current measurement against a baseline:
/// everything the binary prints, separated by stream, plus the verdict.
#[derive(Debug, Default)]
struct GateReport {
    /// Human-readable comparison table and calibration lines (stdout).
    lines: Vec<String>,
    /// Warnings and failure explanations (stderr).
    complaints: Vec<String>,
    /// Number of gate failures; non-zero fails the run.
    failures: usize,
}

impl GateReport {
    fn fail(&mut self, message: String) {
        self.complaints.push(message);
        self.failures += 1;
    }
}

/// The entire comparison logic of the guard, pure over the parsed
/// measurement rows so the gating rules are unit-testable: resolves the
/// calibration scales, requires every gated prefix to be populated on *both*
/// sides, and flags every gated median that regressed beyond
/// [`ALLOWED_REGRESSION_PERCENT`] or went missing.
fn run_gate(baseline: &[(String, f64)], current: &[(String, f64)]) -> GateReport {
    let mut report = GateReport::default();

    // A gated prefix with no row on a side means nothing under it can be
    // compared: the guard would "pass" while gating nothing. Fail loudly —
    // an absent group is a misconfigured bench run (current side) or a
    // baseline that predates the group and must be re-recorded (baseline
    // side).
    for prefix in GATED_PREFIXES {
        if !baseline.iter().any(|(n, _)| matches_any(n, &[prefix])) {
            report.fail(format!(
                "gated prefix \"{prefix}\" has no benchmarks in the baseline; \
                 re-record the baseline with --emit so the group is gated"
            ));
        }
        if !current.iter().any(|(n, _)| matches_any(n, &[prefix])) {
            report.fail(format!(
                "gated prefix \"{prefix}\" has no benchmarks in the current \
                 measurement; run cargo bench with the benches that produce it"
            ));
        }
    }

    // Machine scales: how much slower (or faster) this run's hardware is
    // than the machine that recorded the baseline, measured by the
    // code-stable calibration benchmarks present in both files — one probe
    // for compute speed, one for memory latency.
    let calibration_of = |rows: &[(String, f64)], name: &str| {
        rows.iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
            .filter(|&m| m > 0.0)
    };
    let scale = match (
        calibration_of(baseline, CALIBRATION_BENCH),
        calibration_of(current, CALIBRATION_BENCH),
    ) {
        (Some(base_cal), Some(current_cal)) => {
            let scale = current_cal / base_cal;
            report.lines.push(format!(
                "calibration ({CALIBRATION_BENCH}): baseline {base_cal:.0} ns, \
                 current {current_cal:.0} ns -> compute scale {scale:.3}"
            ));
            scale
        }
        (Some(_), None) => {
            // The baseline was recorded with calibration, so comparing raw
            // nanoseconds against it would bring back exactly the
            // machine-dependent failures the calibration exists to prevent:
            // the current run is misconfigured (it did not include
            // `--bench calibration`).
            report.fail(format!(
                "\"{CALIBRATION_BENCH}\" is in the baseline but missing from the \
                 current measurement; run cargo bench with --bench calibration"
            ));
            return report;
        }
        (None, _) => {
            report.complaints.push(format!(
                "warning: \"{CALIBRATION_BENCH}\" missing from the baseline; \
                 comparing absolute (machine-dependent) nanoseconds"
            ));
            1.0
        }
    };
    let mem_scale = match (
        calibration_of(baseline, MEM_CALIBRATION_BENCH),
        calibration_of(current, MEM_CALIBRATION_BENCH),
    ) {
        (Some(base_cal), Some(current_cal)) => {
            let mem_scale = current_cal / base_cal;
            report.lines.push(format!(
                "calibration ({MEM_CALIBRATION_BENCH}): baseline {base_cal:.0} ns, \
                 current {current_cal:.0} ns -> memory scale {mem_scale:.3}"
            ));
            Some(mem_scale)
        }
        (Some(_), None) => {
            report.fail(format!(
                "\"{MEM_CALIBRATION_BENCH}\" is in the baseline but missing from the \
                 current measurement; run cargo bench with --bench calibration"
            ));
            return report;
        }
        (None, _) => {
            // Pre-chase baselines (BENCH_2 and older): memory-sensitive
            // benches degrade to the compute scale instead of failing.
            report.complaints.push(format!(
                "warning: \"{MEM_CALIBRATION_BENCH}\" missing from the baseline; \
                 normalizing memory-sensitive benches by the compute scale"
            ));
            None
        }
    };

    report.lines.push(format!(
        "{:<36} {:>14} {:>14} {:>9}  gate",
        "benchmark", "baseline (ns)", "normalized (ns)", "change"
    ));
    for (name, base_median) in baseline {
        if name == CALIBRATION_BENCH || name == MEM_CALIBRATION_BENCH {
            continue;
        }
        let Some((_, current_median)) = current.iter().find(|(n, _)| n == name) else {
            report.lines.push(format!(
                "{name:<36} {base_median:>14.0} {:>14} {:>9}  MISSING",
                "-", "-"
            ));
            if matches_any(name, GATED_PREFIXES) {
                report.failures += 1;
            }
            continue;
        };
        let mem_sensitive = matches_any(name, MEM_SENSITIVE_PREFIXES);
        let row_scale = if mem_sensitive {
            mem_scale.unwrap_or(scale)
        } else {
            scale
        };
        let change_under =
            |scale: f64| (current_median / scale - base_median) / base_median * 100.0;
        let normalized = current_median / row_scale;
        let change = change_under(row_scale);
        // A genuine code regression reproduces under *both* calibration
        // models (the scales differ only by machine factors), so a gated row
        // fails only when it is beyond the threshold under its primary probe
        // AND under the other one. A row beyond the threshold under exactly
        // one model is a machine-profile shift — e.g. a runner whose memory
        // is much slower relative to its ALU than the baseline machine's
        // inflates every memory-heavy median that spin-normalization cannot
        // correct — and passes with a warning instead of failing spuriously.
        let other_scale = if mem_sensitive {
            Some(scale)
        } else {
            mem_scale
        };
        let over = change > ALLOWED_REGRESSION_PERCENT;
        let over_everywhere =
            over && other_scale.is_none_or(|s| change_under(s) > ALLOWED_REGRESSION_PERCENT);
        let gated = matches_any(name, GATED_PREFIXES);
        let verdict = match (gated, over, over_everywhere) {
            (false, ..) if mem_sensitive && mem_scale.is_some() => "info (mem)",
            (false, ..) => "info",
            (true, _, true) => {
                report.failures += 1;
                "FAIL"
            }
            (true, true, false) => {
                report.complaints.push(format!(
                    "warning: {name} regressed {change:+.1}% under its primary \
                     calibration probe but not under the other one; treating the \
                     difference as a machine-profile shift, not a code regression"
                ));
                "ok (shift)"
            }
            (true, false, _) => "ok",
        };
        report.lines.push(format!(
            "{name:<36} {base_median:>14.0} {normalized:>14.0} {change:>+8.1}%  {verdict}"
        ));
    }
    report
}

fn main() -> ExitCode {
    let mut baseline_path = String::from("BENCH_7.json");
    let mut current_path = None;
    let mut emit_path = None;
    let mut label = String::from("BENCH_CURRENT");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--baseline" => baseline_path = value("--baseline"),
            "--current" => current_path = Some(value("--current")),
            "--emit" => emit_path = Some(value("--emit")),
            "--label" => label = value("--label"),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: bench_guard --current <json> [--baseline <json>] \
                     [--emit <json> --label <name>]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(current_path) = current_path else {
        eprintln!("--current <json> is required (the CRITERION_JSON output of cargo bench)");
        return ExitCode::FAILURE;
    };

    let current = match read_benchmarks(&current_path) {
        Ok(rows) if !rows.is_empty() => rows,
        Ok(_) => {
            eprintln!("no benchmarks found in {current_path}");
            return ExitCode::FAILURE;
        }
        Err(error) => {
            eprintln!("cannot read {current_path}: {error}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(emit_path) = emit_path {
        let doc = compose_baseline(&label, &current);
        if let Err(error) = std::fs::write(&emit_path, doc) {
            eprintln!("cannot write {emit_path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} benchmarks to {emit_path}", current.len());
    }

    let baseline = match read_benchmarks(&baseline_path) {
        Ok(rows) => rows,
        Err(error) => {
            eprintln!("cannot read baseline {baseline_path}: {error}");
            return ExitCode::FAILURE;
        }
    };

    let report = run_gate(&baseline, &current);
    for line in &report.lines {
        println!("{line}");
    }
    for complaint in &report.complaints {
        eprintln!("{complaint}");
    }
    if report.failures > 0 {
        eprintln!(
            "{} gated benchmark(s) regressed more than {ALLOWED_REGRESSION_PERCENT}% \
             (calibration-normalized), went missing, or had no gated group to compare \
             against {baseline_path}",
            report.failures
        );
        return ExitCode::FAILURE;
    }
    println!("benchmark gate passed against {baseline_path}");
    ExitCode::SUCCESS
}

/// Extracts `(benchmark, median_ns_per_iter)` pairs from either the appended
/// JSON-lines format of the criterion shim or a composed baseline document.
///
/// The shim *appends* to `CRITERION_JSON`, so a file left over from an
/// earlier `cargo bench` run contains multiple entries per benchmark; the
/// newest (last) measurement wins and a warning is printed, so the gate and
/// `--emit` never silently act on stale numbers.
fn read_benchmarks(path: &str) -> Result<Vec<(String, f64)>, std::io::Error> {
    let text = std::fs::read_to_string(path)?;
    let mut rows: Vec<(String, f64)> = Vec::new();
    let mut duplicates = 0usize;
    let mut rest = text.as_str();
    while let Some(pos) = rest.find("\"benchmark\"") {
        rest = &rest[pos + "\"benchmark\"".len()..];
        let Some(name) = extract_string(rest) else {
            break;
        };
        let Some(pos) = rest.find("\"median_ns_per_iter\"") else {
            break;
        };
        rest = &rest[pos + "\"median_ns_per_iter\"".len()..];
        let Some(median) = extract_number(rest) else {
            break;
        };
        if let Some(row) = rows.iter_mut().find(|(n, _)| *n == name) {
            duplicates += 1;
            row.1 = median;
        } else {
            rows.push((name, median));
        }
    }
    if duplicates > 0 {
        eprintln!(
            "warning: {path} contains {duplicates} repeated benchmark entr{} \
             (appended by successive cargo bench runs); using the newest of each",
            if duplicates == 1 { "y" } else { "ies" }
        );
    }
    Ok(rows)
}

/// The first JSON string value after a `:` in `text`.
fn extract_string(text: &str) -> Option<String> {
    let start = text.find('"')?;
    let rest = &text[start + 1..];
    let end = rest.find('"')?;
    Some(rest[..end].to_owned())
}

/// The first JSON number after a `:` in `text`.
fn extract_number(text: &str) -> Option<f64> {
    let colon = text.find(':')?;
    let rest = text[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders the composed baseline document committed as `BENCH_*.json`.
fn compose_baseline(label: &str, rows: &[(String, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"baseline\": \"{label}\",");
    let _ = writeln!(
        out,
        "  \"command\": \"CRITERION_JSON=<path> cargo bench --bench calibration --bench merge_time --bench path_schedule_time\","
    );
    let _ = writeln!(out, "  \"units\": \"median nanoseconds per iteration\",");
    let _ = writeln!(out, "  \"benchmarks\": [");
    for (i, (name, median)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"benchmark\": \"{name}\",");
        let _ = writeln!(out, "      \"median_ns_per_iter\": {median}");
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rows covering every gated prefix plus both calibration probes.
    fn rows(entries: &[(&str, f64)]) -> Vec<(String, f64)> {
        entries
            .iter()
            .map(|&(name, median)| (name.to_owned(), median))
            .collect()
    }

    fn full_side(serial: f64, walk: f64) -> Vec<(String, f64)> {
        rows(&[
            ("calibration/spin", 100.0),
            ("calibration/chase", 200.0),
            ("schedule_merging_serial/60x12", serial),
            ("merge_walk/depth24", walk),
            ("merge_rewalk/cold/24", 4000.0),
            ("merge_rewalk/warm/24", 400.0),
            ("schedule_merging/60x12", 500.0),
            ("path_list_scheduling/60", 300.0),
        ])
    }

    #[test]
    fn identical_measurements_pass() {
        let side = full_side(1000.0, 2000.0);
        let report = run_gate(&side, &side);
        assert_eq!(report.failures, 0, "{:?}", report.complaints);
    }

    #[test]
    fn gated_regression_beyond_threshold_fails() {
        let baseline = full_side(1000.0, 2000.0);
        // 30% up on a gated row with identical calibration: over the 25%.
        let current = full_side(1300.0, 2000.0);
        assert_eq!(run_gate(&baseline, &current).failures, 1);
        // 20% stays under the threshold.
        let current = full_side(1200.0, 2000.0);
        assert_eq!(run_gate(&baseline, &current).failures, 0);
    }

    #[test]
    fn machine_profile_shift_does_not_fail_the_gate() {
        // The current machine's memory (chase) is 2x slower while its ALU
        // (spin) is unchanged; the gated serial merge touches memory, so its
        // raw median is up 30%. Under the spin scale that is a >25% "regression",
        // but under the chase scale it is a 35% improvement: one probe
        // disagreeing means machine profile, not code, so the gate passes.
        let baseline = full_side(1000.0, 2000.0);
        let mut current = full_side(1300.0, 2000.0);
        for (name, median) in &mut current {
            if name == "calibration/chase" {
                *median *= 2.0;
            }
        }
        let report = run_gate(&baseline, &current);
        assert_eq!(report.failures, 0, "{:?}", report.complaints);
        assert!(report
            .complaints
            .iter()
            .any(|c| c.contains("machine-profile shift")));

        // A real code regression shows under both probes: 2.8x raw is +180%
        // under spin and +40% under the doubled chase scale -> FAIL.
        let mut current = full_side(2800.0, 2000.0);
        for (name, median) in &mut current {
            if name == "calibration/chase" {
                *median *= 2.0;
            }
        }
        assert_eq!(run_gate(&baseline, &current).failures, 1);
    }

    #[test]
    fn calibration_normalizes_out_a_uniformly_slower_machine() {
        let baseline = full_side(1000.0, 2000.0);
        // Everything (calibration included) is 2x slower: no regression.
        let current: Vec<(String, f64)> =
            baseline.iter().map(|(n, m)| (n.clone(), m * 2.0)).collect();
        let report = run_gate(&baseline, &current);
        assert_eq!(report.failures, 0, "{:?}", report.complaints);
    }

    #[test]
    fn gated_row_missing_from_current_fails() {
        let baseline = full_side(1000.0, 2000.0);
        let mut current = full_side(1000.0, 2000.0);
        current.retain(|(n, _)| n != "schedule_merging_serial/60x12");
        // The prefix is still populated (only one row of it vanished), so
        // this exercises the per-row MISSING path, not the group check.
        let with_second_row = |mut side: Vec<(String, f64)>| {
            side.push(("schedule_merging_serial/80x18".to_owned(), 1500.0));
            side
        };
        let baseline = with_second_row(baseline);
        let current = with_second_row(current);
        assert_eq!(run_gate(&baseline, &current).failures, 1);
    }

    #[test]
    fn gated_group_absent_from_baseline_fails() {
        // The whole merge_walk/ group is missing from the baseline: the old
        // guard silently gated nothing; now it is a hard failure telling the
        // operator to re-record.
        let mut baseline = full_side(1000.0, 2000.0);
        baseline.retain(|(n, _)| !n.starts_with("merge_walk/"));
        let current = full_side(1000.0, 2000.0);
        let report = run_gate(&baseline, &current);
        assert_eq!(report.failures, 1);
        assert!(report
            .complaints
            .iter()
            .any(|c| c.contains("merge_walk/") && c.contains("baseline")));
    }

    #[test]
    fn gated_group_absent_from_current_fails() {
        let baseline = full_side(1000.0, 2000.0);
        let mut current = full_side(1000.0, 2000.0);
        current.retain(|(n, _)| !n.starts_with("merge_walk/"));
        let report = run_gate(&baseline, &current);
        // One failure for the empty group, one per-row MISSING failure.
        assert_eq!(report.failures, 2);
        assert!(report
            .complaints
            .iter()
            .any(|c| c.contains("merge_walk/") && c.contains("current")));
    }

    #[test]
    fn ungated_rows_never_fail() {
        let baseline = full_side(1000.0, 2000.0);
        let mut current = full_side(1000.0, 2000.0);
        for (name, median) in &mut current {
            if name.starts_with("schedule_merging/") || name.starts_with("path_list_scheduling/") {
                *median *= 10.0;
            }
        }
        assert_eq!(run_gate(&baseline, &current).failures, 0);
    }

    #[test]
    fn compute_calibration_missing_from_current_fails() {
        let baseline = full_side(1000.0, 2000.0);
        let mut current = full_side(1000.0, 2000.0);
        current.retain(|(n, _)| n != "calibration/spin");
        assert!(run_gate(&baseline, &current).failures > 0);
    }

    #[test]
    fn uncalibrated_baseline_compares_absolute_with_warning() {
        let mut baseline = full_side(1000.0, 2000.0);
        baseline.retain(|(n, _)| !n.starts_with("calibration/"));
        let current = full_side(1000.0, 2000.0);
        let report = run_gate(&baseline, &current);
        assert_eq!(report.failures, 0, "{:?}", report.complaints);
        assert!(report
            .complaints
            .iter()
            .any(|c| c.contains("machine-dependent")));
    }

    #[test]
    fn parser_reads_composed_baseline_documents() {
        let doc = compose_baseline("BENCH_TEST", &full_side(1000.0, 2000.0));
        let dir = std::env::temp_dir().join("bench_guard_test_roundtrip.json");
        std::fs::write(&dir, doc).unwrap();
        let parsed = read_benchmarks(dir.to_str().unwrap()).unwrap();
        std::fs::remove_file(&dir).ok();
        assert_eq!(parsed, full_side(1000.0, 2000.0));
    }
}
