//! Regenerates the paper's Table 2: the worst-case delays of the three OAM
//! operating modes on the ten candidate architectures, next to the published
//! values.

#![forbid(unsafe_code)]

fn main() {
    print!("{}", cpg_bench::table2_report());
}
