//! Ablation study (not in the paper): effect of the back-step path-selection
//! policy and of the condition-broadcast time on the quality of the generated
//! schedule tables.
//!
//! Usage: `ablation_policy [graphs]` (default 20).

#![forbid(unsafe_code)]

fn main() {
    let graphs = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(20);
    print!("{}", cpg_bench::ablation_report(graphs));
}
