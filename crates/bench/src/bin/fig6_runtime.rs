//! Regenerates the paper's Fig. 6: the average execution time of the schedule
//! merging as a function of the number of merged schedules, for graphs of 60,
//! 80 and 120 nodes (plus the per-path list-scheduling time, which the paper
//! reports as "less than 0.003 seconds for graphs having 120 nodes").
//!
//! Usage: `fig6_runtime [graphs_per_size]` (default 30; the paper uses 360).

#![forbid(unsafe_code)]

fn main() {
    let graphs_per_size = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(30);
    eprintln!("running the Fig. 6 experiment on {graphs_per_size} graphs per size...");
    let outcomes = cpg_bench::run_suite(graphs_per_size);
    print!("{}", cpg_bench::fig6_rows(&outcomes));
}
