//! Regenerates the paper's Table 1: the schedule table generated for the
//! Fig. 1 example, plus a simulator cross-check of its worst-case delay.

#![forbid(unsafe_code)]

fn main() {
    print!("{}", cpg_bench::table1_report());
}
