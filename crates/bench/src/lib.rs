//! Shared harness code for regenerating every table and figure of the paper's
//! evaluation (Section 6).
//!
//! The binaries of this crate are thin wrappers around the functions exposed
//! here:
//!
//! | paper artefact | binary | function |
//! |----------------|--------|----------|
//! | Fig. 2 (per-path delays, decision tree) | `fig2_paths` | [`fig2_report`] |
//! | Table 1 (schedule table of Fig. 1) | `table1_schedule` | [`table1_report`] |
//! | Fig. 4 (optimal vs adjusted path schedules) | `fig4_gantt` | [`fig4_report`] |
//! | Fig. 5 (increase of `δ_max` over `δ_M`) | `fig5_increase` | [`run_suite`], [`fig5_rows`] |
//! | Fig. 6 (merge execution time) | `fig6_runtime` | [`run_suite`], [`fig6_rows`] |
//! | Table 2 (OAM block delays) | `table2_atm` | [`table2_report`] |
//! | ablation (ours) | `ablation_policy` | [`ablation_report`] |

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use cpg::{enumerate_tracks, examples, Cpg};
use cpg_arch::{Architecture, Time};
use cpg_gen::{generate, paper_suite, GeneratorConfig};
use cpg_merge::{generate_schedule_table, MergeConfig, MergeResult, SelectionPolicy};
use cpg_path_sched::{ListScheduler, PathSchedule};
use cpg_sim::Simulator;

/// Outcome of scheduling one randomly generated system.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// The generator configuration of the system.
    pub config: GeneratorConfig,
    /// Lower bound `δ_M` (longest individual path delay).
    pub delta_m: Time,
    /// Worst-case delay `δ_max` of the generated table.
    pub delta_max: Time,
    /// Relative increase of `δ_max` over `δ_M` in percent, clamped at zero
    /// (the paper reports non-negative increases; a negative value means the
    /// merge accidentally improved on the heuristic per-path schedule).
    pub overhead_percent: f64,
    /// Wall-clock time spent in the merge (schedule-table generation), in
    /// seconds.
    pub merge_seconds: f64,
    /// Wall-clock time spent scheduling the individual paths, in seconds.
    pub path_scheduling_seconds: f64,
}

/// Worker threads for the outer fan-out of the experiment suite over whole
/// systems: the `CPG_SUITE_THREADS` environment variable when set (CI pins
/// `1` to smoke-check that serial and nested-parallel runs produce the same
/// report), otherwise the machine's available parallelism.
///
/// The variable goes through the same parser as `CPG_MERGE_THREADS`
/// ([`cpg_merge::threads_from_env`]): garbage values warn once on stderr and
/// fall back to the automatic choice instead of being silently swallowed.
#[must_use]
pub fn suite_threads() -> usize {
    cpg_merge::threads_from_env("CPG_SUITE_THREADS")
        .map_or_else(fj::available_parallelism, std::num::NonZeroUsize::get)
}

/// Ledger key: the generator parameters that dominate a shape's run time.
type ShapeKey = (usize, usize, usize, usize);

/// Measured per-shape evaluation costs, keyed by the generator parameters
/// that dominate the run time: `(nodes, paths, processors, buses)`.
///
/// The static `nodes * paths` product that used to drive the suite's
/// fork-join cost order is a poor proxy — a deep condition nest on a narrow
/// architecture merges orders of magnitude slower than a wide graph of the
/// same product. The ledger records the wall-clock of every completed
/// evaluation and serves it back as the cost estimate for later fan-outs
/// over the same shapes (the ablation report visits each config eight
/// times; `run_suite` evaluates several seeds per shape). The estimate only
/// influences *scheduling order*: every fan-out reduces by config index, so
/// reports stay identical for any thread count and any ledger state.
#[derive(Debug, Default)]
pub struct CostLedger {
    /// Total measured micros and number of samples per shape.
    samples: Mutex<HashMap<ShapeKey, (u64, u64)>>,
}

impl CostLedger {
    /// An empty ledger: every estimate falls back to the static
    /// `nodes * paths` proxy until measurements arrive.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn key(config: &GeneratorConfig) -> ShapeKey {
        (
            config.nodes(),
            config.target_paths(),
            config.processors(),
            config.buses(),
        )
    }

    /// Records one measured evaluation of `config` (any duration: the ledger
    /// only ever compares estimates against each other).
    pub fn record(&self, config: &GeneratorConfig, elapsed: std::time::Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let mut samples = self.samples.lock().expect("cost ledger poisoned");
        let entry = samples.entry(Self::key(config)).or_insert((0, 0));
        entry.0 = entry.0.saturating_add(micros);
        entry.1 += 1;
    }

    /// Estimated cost of evaluating `config`, for [`fj::map_with_cost`].
    ///
    /// The average measured duration of the shape when the ledger has seen
    /// it; otherwise the static `nodes * paths` proxy rescaled into measured
    /// units (so unmeasured shapes sort sensibly among measured ones); with
    /// an empty ledger, the bare proxy.
    #[must_use]
    pub fn estimate(&self, config: &GeneratorConfig) -> u64 {
        let proxy = (config.nodes() * config.target_paths()) as u64;
        let samples = self.samples.lock().expect("cost ledger poisoned");
        if let Some(&(total, count)) = samples.get(&Self::key(config)) {
            return (total / count.max(1)).max(1);
        }
        // Rescale the proxy by the measured-vs-proxy ratio of the shapes we
        // have seen, so a new shape lands in the right order of magnitude.
        let (measured_sum, proxy_sum) = samples.iter().fold((0u64, 0u64), |acc, (k, &(t, n))| {
            (
                acc.0.saturating_add(t / n.max(1)),
                acc.1.saturating_add((k.0 * k.1) as u64),
            )
        });
        match proxy.saturating_mul(measured_sum).checked_div(proxy_sum) {
            Some(scaled) => scaled.max(1),
            None => proxy.max(1),
        }
    }
}

/// The process-wide [`CostLedger`] shared by every suite fan-out: the first
/// pass over a set of shapes runs in proxy order and measures; every later
/// pass (the remaining ablation variants, a repeated suite) schedules by the
/// measured times.
#[must_use]
pub fn global_cost_ledger() -> &'static CostLedger {
    static LEDGER: std::sync::OnceLock<CostLedger> = std::sync::OnceLock::new();
    LEDGER.get_or_init(CostLedger::new)
}

/// Runs the experiment of the paper's Section 6 on `graphs_per_size` graphs
/// per node count (the paper uses 360). Every generated table is additionally
/// executed by the simulator as a sanity check.
///
/// The systems are independent, so they fan out over a second fork-join
/// level ([`suite_threads`] workers) in cost order — most expensive shapes
/// first, so one slow straggler drawn late cannot serialize the tail. The
/// cost of a shape is its measured evaluation time from earlier runs in this
/// process (a [`CostLedger`] fed by [`evaluate_config_recording`]), falling
/// back to the static `nodes * paths` proxy for shapes not yet seen. Each
/// system's merge detects it is running inside a worker and keeps its own
/// track-level phases serial (the nested-pool policy of `fj`), and the
/// reduction is by config index, so the report is identical for every
/// thread count and ledger state (timing columns aside).
#[must_use]
pub fn run_suite(graphs_per_size: usize) -> Vec<SuiteOutcome> {
    let configs = paper_suite(graphs_per_size);
    let ledger = global_cost_ledger();
    fj::map_with_cost(
        suite_threads(),
        &configs,
        |_, config| ledger.estimate(config),
        || (),
        |(), _, config| evaluate_config_recording(config, ledger),
    )
}

/// Schedules one generated system and measures the merge.
#[must_use]
pub fn evaluate_config(config: &GeneratorConfig) -> SuiteOutcome {
    let system = generate(config);
    let merge_config = MergeConfig::new(system.broadcast_time());

    let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
    let tracks = enumerate_tracks(system.cpg());
    let path_start = Instant::now();
    let _schedules: Vec<PathSchedule> = scheduler.schedule_all(&tracks);
    let path_scheduling_seconds = path_start.elapsed().as_secs_f64();

    let merge_start = Instant::now();
    let result = generate_schedule_table(system.cpg(), system.arch(), &merge_config);
    let merge_seconds = merge_start.elapsed().as_secs_f64();

    debug_assert!(result.table().verify(system.cpg(), result.tracks()).is_ok());

    SuiteOutcome {
        config: config.clone(),
        delta_m: result.delta_m(),
        delta_max: result.delta_max(),
        overhead_percent: result.overhead_percent().max(0.0),
        merge_seconds,
        path_scheduling_seconds,
    }
}

/// [`evaluate_config`] that also feeds the measured wall-clock back into a
/// [`CostLedger`], so later fan-outs over the same shapes schedule by real
/// cost instead of the static proxy.
#[must_use]
pub fn evaluate_config_recording(config: &GeneratorConfig, ledger: &CostLedger) -> SuiteOutcome {
    let start = Instant::now();
    let outcome = evaluate_config(config);
    ledger.record(config, start.elapsed());
    outcome
}

/// One row of the Fig. 5 / Fig. 6 summary: all graphs with the same node
/// count and number of alternative paths.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Number of ordinary processes of the graphs in this group.
    pub nodes: usize,
    /// Number of merged schedules (alternative paths).
    pub paths: usize,
    /// Number of graphs aggregated in this row.
    pub graphs: usize,
    /// Average increase of `δ_max` over `δ_M`, in percent (Fig. 5, y-axis).
    pub avg_overhead_percent: f64,
    /// Fraction of graphs with zero increase (`δ_max = δ_M`), in percent.
    pub zero_increase_percent: f64,
    /// Average merge execution time in seconds (Fig. 6, y-axis).
    pub avg_merge_seconds: f64,
    /// Average per-path list-scheduling time in seconds.
    pub avg_path_seconds: f64,
}

/// Groups suite outcomes by `(nodes, paths)` — the series of Fig. 5 and
/// Fig. 6.
#[must_use]
pub fn summary_rows(outcomes: &[SuiteOutcome]) -> Vec<SummaryRow> {
    let mut groups: BTreeMap<(usize, usize), Vec<&SuiteOutcome>> = BTreeMap::new();
    for outcome in outcomes {
        groups
            .entry((outcome.config.nodes(), outcome.config.target_paths()))
            .or_default()
            .push(outcome);
    }
    groups
        .into_iter()
        .map(|((nodes, paths), group)| {
            let graphs = group.len();
            let avg = |f: &dyn Fn(&SuiteOutcome) -> f64| {
                group.iter().map(|o| f(o)).sum::<f64>() / graphs as f64
            };
            SummaryRow {
                nodes,
                paths,
                graphs,
                avg_overhead_percent: avg(&|o| o.overhead_percent),
                zero_increase_percent: 100.0
                    * group.iter().filter(|o| o.delta_max <= o.delta_m).count() as f64
                    / graphs as f64,
                avg_merge_seconds: avg(&|o| o.merge_seconds),
                avg_path_seconds: avg(&|o| o.path_scheduling_seconds),
            }
        })
        .collect()
}

/// Renders the Fig. 5 reproduction: average percentage increase of the worst
/// case delay over the longest-path delay, per graph size and number of
/// merged schedules, plus the fraction of graphs with zero increase.
#[must_use]
pub fn fig5_rows(outcomes: &[SuiteOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>7} {:>7} {:>22} {:>18}",
        "nodes", "paths", "graphs", "avg increase of dmax", "zero increase"
    );
    for row in summary_rows(outcomes) {
        let _ = writeln!(
            out,
            "{:>6} {:>7} {:>7} {:>21.2}% {:>17.1}%",
            row.nodes, row.paths, row.graphs, row.avg_overhead_percent, row.zero_increase_percent
        );
    }
    out
}

/// Renders the Fig. 6 reproduction: average execution time of the schedule
/// merging, per graph size and number of merged schedules.
#[must_use]
pub fn fig6_rows(outcomes: &[SuiteOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>7} {:>7} {:>18} {:>22}",
        "nodes", "paths", "graphs", "merge time (s)", "path scheduling (s)"
    );
    for row in summary_rows(outcomes) {
        let _ = writeln!(
            out,
            "{:>6} {:>7} {:>7} {:>18.5} {:>22.5}",
            row.nodes, row.paths, row.graphs, row.avg_merge_seconds, row.avg_path_seconds
        );
    }
    out
}

/// Generates the merged schedule table of the Fig. 1 example system, with
/// decision-tree tracing on (the Fig. 2 report walks the recorded steps;
/// tracing is otherwise off by default).
#[must_use]
pub fn fig1_merge() -> (examples::ExampleSystem, MergeResult) {
    let system = examples::fig1();
    let result = generate_schedule_table(
        system.cpg(),
        system.arch(),
        &MergeConfig::new(system.broadcast_time()).with_trace(true),
    );
    (system, result)
}

/// The Fig. 2 reproduction: the length of the (near-)optimal schedule of each
/// alternative path of the Fig. 1 example and the decision-tree exploration
/// order.
#[must_use]
pub fn fig2_report() -> String {
    let (system, result) = fig1_merge();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Length of the optimal schedule of the alternative paths (Fig. 2):"
    );
    let mut delays: Vec<(String, Time)> = result
        .path_schedules()
        .iter()
        .map(|s| (system.cpg().display_cube(&s.label()), s.delay()))
        .collect();
    delays.sort_by_key(|(_, delay)| std::cmp::Reverse(*delay));
    for (label, delay) in &delays {
        let _ = writeln!(out, "  {label:>12}  {delay}");
    }
    let _ = writeln!(out, "\nDecision tree exploration (depth-first):");
    for step in result.steps() {
        let decided = system.cpg().display_cube(&step.decided);
        let cond = system.cpg().condition_name(step.condition);
        let current = system.cpg().display_cube(&step.current_path);
        let kind = if step.back_step {
            "back-step"
        } else {
            "continue"
        };
        let _ = writeln!(
            out,
            "  at [{decided}] condition {cond} resolved at t={} -> {kind}, current path {current}",
            step.resolved_at
        );
    }
    let _ = writeln!(
        out,
        "\ndelta_M = {}, delta_max = {} (increase {:.2}%)",
        result.delta_m(),
        result.delta_max(),
        result.overhead_percent()
    );
    out
}

/// The Table 1 reproduction: the generated schedule table of the Fig. 1
/// example.
#[must_use]
pub fn table1_report() -> String {
    let (system, result) = fig1_merge();
    let mut out = String::new();
    let _ = writeln!(out, "Schedule table of the Fig. 1 example (Table 1):\n");
    out.push_str(&result.table().render(system.cpg()));
    // Resource provenance: the bus each tabled broadcast occupies (recorded
    // when the activation time was tabled; this is the bus the run-time bus
    // scheduler dispatches the broadcast on).
    let mut broadcast_buses: Vec<String> = result
        .table()
        .all_entries_on()
        .filter_map(|(job, column, time, resource)| {
            let cond = job.as_broadcast()?;
            let bus = resource?;
            Some(format!(
                "  {} at {} in [{}] on {}",
                system.cpg().condition_name(cond),
                time,
                system.cpg().display_cube(&column),
                system.arch().pe(bus).name()
            ))
        })
        .collect();
    broadcast_buses.sort();
    if !broadcast_buses.is_empty() {
        let _ = writeln!(out, "\nbroadcast dispatch (recorded bus):");
        for line in broadcast_buses {
            let _ = writeln!(out, "{line}");
        }
    }
    let _ = writeln!(
        out,
        "\nworst case delay delta_max = {} (delta_M = {})",
        result.delta_max(),
        result.delta_m()
    );
    // Cross-check with the simulator.
    let simulator = Simulator::new(
        system.cpg(),
        system.arch(),
        result.table(),
        system.broadcast_time(),
    );
    let reports = simulator.run_all(result.tracks());
    let violations: usize = reports.iter().map(|r| r.violations().len()).sum();
    let _ = writeln!(
        out,
        "simulator cross-check: {} executions, {} violations, worst delay {}",
        reports.len(),
        violations,
        reports
            .iter()
            .map(|r| r.delay())
            .max()
            .unwrap_or(Time::ZERO)
    );
    out
}

/// Text Gantt chart of a path schedule (one line per processing element).
#[must_use]
pub fn render_gantt(cpg: &Cpg, arch: &Architecture, schedule: &PathSchedule) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "path {} (delay {}):",
        cpg.display_cube(&schedule.label()),
        schedule.delay()
    );
    for pe in arch.ids() {
        let mut jobs: Vec<_> = schedule
            .jobs()
            .iter()
            .filter(|sj| sj.pe() == Some(pe))
            .collect();
        jobs.sort_by_key(|sj| sj.start());
        let line: Vec<String> = jobs
            .iter()
            .map(|sj| {
                let name = match sj.job() {
                    cpg_path_sched::Job::Process(pid) => cpg.process(pid).name().to_owned(),
                    cpg_path_sched::Job::Broadcast(cond) => {
                        format!("bc:{}", cpg.condition_name(cond))
                    }
                };
                format!("{name}[{}..{})", sj.start(), sj.end())
            })
            .collect();
        let _ = writeln!(out, "  {:<12} {}", arch.pe(pe).name(), line.join(" "));
    }
    out
}

/// The Fig. 4 reproduction: the optimal schedules of the two longest paths of
/// the Fig. 1 example and the activation times the merged table actually
/// assigns to the second of them (its "adjusted" schedule).
#[must_use]
pub fn fig4_report() -> String {
    let (system, result) = fig1_merge();
    let cpg = system.cpg();
    let mut out = String::new();

    let mut schedules: Vec<&PathSchedule> = result.path_schedules().iter().collect();
    schedules.sort_by_key(|s| std::cmp::Reverse(s.delay()));
    let primary = schedules[0];
    let secondary = schedules[1];

    let _ = writeln!(out, "Optimal schedule of the longest path:");
    out.push_str(&render_gantt(cpg, system.arch(), primary));
    let _ = writeln!(out, "\nOptimal schedule of the second path:");
    out.push_str(&render_gantt(cpg, system.arch(), secondary));

    let _ = writeln!(
        out,
        "\nActivation times of the second path according to the merged table (adjusted schedule):"
    );
    let mut rows: Vec<(String, Time)> = secondary
        .jobs()
        .iter()
        .filter_map(|sj| {
            let job = sj.job();
            let time = result
                .table()
                .activation_on_track(job, &secondary.label())?;
            let name = match job {
                cpg_path_sched::Job::Process(pid) => {
                    if cpg.process(pid).kind().is_dummy() {
                        return None;
                    }
                    cpg.process(pid).name().to_owned()
                }
                cpg_path_sched::Job::Broadcast(cond) => {
                    format!("bc:{}", cpg.condition_name(cond))
                }
            };
            Some((name, time))
        })
        .collect();
    rows.sort_by_key(|&(_, t)| t);
    for (name, time) in rows {
        let _ = writeln!(out, "  {name:<12} {time}");
    }
    let _ = writeln!(
        out,
        "\ntable delay of the second path: {}",
        result.table().track_delay(cpg, &secondary.label())
    );
    out
}

/// Reference values of the paper's Table 2 (worst-case delays in ns), in the
/// platform order of [`cpg_atm::OamPlatform::paper_platforms`].
#[must_use]
pub fn paper_table2_reference() -> [(usize, [u64; 10]); 3] {
    [
        (
            1,
            [4471, 2701, 4471, 2701, 2932, 2131, 2532, 2932, 1932, 2532],
        ),
        (
            2,
            [1732, 1167, 1732, 1167, 1732, 1167, 1167, 1732, 1167, 1167],
        ),
        (
            3,
            [5852, 3548, 5852, 3548, 5033, 3548, 3548, 5033, 3548, 3548],
        ),
    ]
}

/// The Table 2 reproduction: worst-case delay of each OAM mode on each
/// architecture, next to the paper's published values.
#[must_use]
pub fn table2_report() -> String {
    use cpg_atm::{evaluate, OamMode, OamPlatform};
    let platforms = OamPlatform::paper_platforms();
    let reference = paper_table2_reference();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>6} {:>6} {:>10} {:>10}",
        "platform", "mode", "paths", "measured", "paper"
    );
    for (mode_idx, mode) in OamMode::all().iter().enumerate() {
        for (platform_idx, platform) in platforms.iter().enumerate() {
            let evaluation = evaluate(*mode, platform);
            let paper = reference[mode_idx].1[platform_idx];
            let _ = writeln!(
                out,
                "{:<20} {:>6} {:>6} {:>10} {:>10}",
                platform.name(),
                mode.number(),
                mode.path_count(),
                evaluation.delay(),
                paper
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Ablation study: the effect of the back-step path-selection policy and of
/// the broadcast time `τ0` on the quality of the generated tables, over a
/// batch of randomly generated systems.
///
/// Like [`run_suite`], the per-system evaluations fan out over
/// [`suite_threads`] workers in cost order — the first policy pass measures
/// every shape into the [`global_cost_ledger`] and the remaining seven
/// variants schedule by those measured times; the aggregation is over an
/// index-ordered reduction, so the report is identical for every thread
/// count and ledger state.
#[must_use]
pub fn ablation_report(graphs: usize) -> String {
    let mut out = String::new();
    let configs: Vec<GeneratorConfig> = (0..graphs)
        .map(|i| {
            GeneratorConfig::new(60, [10, 12, 18, 24, 32][i % 5])
                .with_processors(1 + (i % 5))
                .with_buses(1 + (i % 3))
                .with_seed(0xA11_0000 + i as u64)
        })
        .collect();
    let ledger = global_cost_ledger();
    let cost = |_: usize, config: &GeneratorConfig| ledger.estimate(config);

    let _ = writeln!(
        out,
        "Back-step selection policy (average increase of dmax over dM):"
    );
    for policy in [
        SelectionPolicy::LongestDelayFirst,
        SelectionPolicy::ShortestDelayFirst,
        SelectionPolicy::EnumerationOrder,
    ] {
        let outcomes = fj::map_with_cost(
            suite_threads(),
            &configs,
            cost,
            || (),
            |(), _, config| {
                let start = Instant::now();
                let system = generate(config);
                let result = generate_schedule_table(
                    system.cpg(),
                    system.arch(),
                    &MergeConfig::new(system.broadcast_time()).with_selection(policy),
                );
                ledger.record(config, start.elapsed());
                (
                    result.overhead_percent().max(0.0),
                    result.is_zero_overhead(),
                )
            },
        );
        let total: f64 = outcomes.iter().map(|&(overhead, _)| overhead).sum();
        let zero = outcomes.iter().filter(|&&(_, zero)| zero).count();
        let _ = writeln!(
            out,
            "  {policy:?}: avg +{:.2}%, zero increase on {}/{} graphs",
            total / graphs as f64,
            zero,
            graphs
        );
    }

    let _ = writeln!(out, "\nBroadcast time tau0 sensitivity (average dmax):");
    for tau0 in [0u64, 1, 2, 5, 10] {
        let delays = fj::map_with_cost(
            suite_threads(),
            &configs,
            cost,
            || (),
            |(), _, config| {
                let start = Instant::now();
                let system = generate(config);
                let result = generate_schedule_table(
                    system.cpg(),
                    system.arch(),
                    &MergeConfig::new(Time::new(tau0)),
                );
                ledger.record(config, start.elapsed());
                result.delta_max().as_u64()
            },
        );
        let total: u64 = delays.iter().sum();
        let _ = writeln!(
            out,
            "  tau0 = {tau0:>2}: average dmax = {:.1}",
            total as f64 / graphs as f64
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_outcomes_aggregate_into_rows() {
        let outcomes = run_suite(2);
        assert_eq!(outcomes.len(), 6);
        for outcome in &outcomes {
            assert!(outcome.delta_max >= Time::ZERO);
            assert!(outcome.overhead_percent >= 0.0);
            assert!(outcome.merge_seconds >= 0.0);
        }
        let rows = summary_rows(&outcomes);
        assert!(!rows.is_empty());
        let total: usize = rows.iter().map(|r| r.graphs).sum();
        assert_eq!(total, outcomes.len());
        let fig5 = fig5_rows(&outcomes);
        assert!(fig5.contains("zero increase"));
        let fig6 = fig6_rows(&outcomes);
        assert!(fig6.contains("merge time"));
    }

    #[test]
    fn fig1_reports_render() {
        let fig2 = fig2_report();
        assert!(fig2.contains("delta_M"));
        assert!(fig2.contains("Decision tree"));
        let table1 = table1_report();
        assert!(table1.contains("P10"));
        assert!(table1.contains("0 violations"));
        let fig4 = fig4_report();
        assert!(fig4.contains("Optimal schedule of the longest path"));
        assert!(fig4.contains("adjusted schedule"));
    }

    #[test]
    fn cost_ledger_prefers_measurements_over_the_proxy() {
        use std::time::Duration;
        let ledger = CostLedger::new();
        let deep = GeneratorConfig::new(48, 16)
            .with_processors(2)
            .with_buses(1);
        let wide = GeneratorConfig::new(120, 10)
            .with_processors(4)
            .with_buses(2);
        // Empty ledger: the static proxy ranks the wide graph as more
        // expensive (120 * 10 > 48 * 16).
        assert!(ledger.estimate(&wide) > ledger.estimate(&deep));
        // Measurements say the opposite — the deep nest dominates — and a
        // second seed of the same shape reuses them.
        ledger.record(&deep, Duration::from_millis(900));
        ledger.record(&wide, Duration::from_millis(30));
        assert!(ledger.estimate(&deep) > ledger.estimate(&wide));
        let deep_reseeded = deep.clone().with_seed(99);
        assert_eq!(ledger.estimate(&deep_reseeded), ledger.estimate(&deep));
        // An unseen shape gets the proxy rescaled into measured units, not
        // the raw product (which would dwarf every measurement).
        let unseen = GeneratorConfig::new(60, 12)
            .with_processors(3)
            .with_buses(1);
        let estimate = ledger.estimate(&unseen);
        assert!(estimate >= 1);
        assert!(
            estimate < 900_000,
            "estimate {estimate} not in measured units"
        );
    }

    #[test]
    fn table2_reference_has_ten_columns_per_mode() {
        for (_, row) in paper_table2_reference() {
            assert_eq!(row.len(), 10);
        }
    }
}
