//! Criterion benchmark behind the paper's Fig. 6: execution time of the
//! schedule-merging (table generation) algorithm as a function of the number
//! of merged schedules and of the graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpg_gen::{generate, GeneratorConfig};
use cpg_merge::{generate_schedule_table, MergeConfig};

fn merge_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_merging");
    group.sample_size(10);
    for &nodes in &[60usize, 80, 120] {
        for &paths in &[10usize, 18, 32] {
            let config = GeneratorConfig::new(nodes, paths)
                .with_processors(4)
                .with_buses(2)
                .with_seed((nodes * 1000 + paths) as u64);
            let system = generate(&config);
            let merge_config = MergeConfig::new(system.broadcast_time());
            group.bench_with_input(
                BenchmarkId::new(format!("{nodes}_nodes"), paths),
                &system,
                |b, system| {
                    b.iter(|| generate_schedule_table(system.cpg(), system.arch(), &merge_config))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, merge_time);
criterion_main!(benches);
