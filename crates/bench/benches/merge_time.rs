//! Criterion benchmark behind the paper's Fig. 6: execution time of the
//! schedule-merging (table generation) algorithm as a function of the number
//! of merged schedules and of the graph size.
//!
//! Two variants of every configuration:
//!
//! * `schedule_merging/*` — the merge at its default thread count (available
//!   parallelism), i.e. what a caller gets out of the box; reported by
//!   `bench_guard` for information (its median scales with the runner's
//!   core count, which the single-threaded calibration probes cannot
//!   normalize, so gating it would be machine-dependent);
//! * `schedule_merging_serial/*` — pinned to one thread, so the serial
//!   trajectory (scratch-arena reuse without fork-join) stays comparable
//!   against pre-parallelism baselines such as `BENCH_2.json` and catches a
//!   scratch-reuse regression that extra cores would mask. This group is
//!   gated by `bench_guard`.
//!
//! The deep-condition-nest walk trajectory is measured twice as well:
//! `merge_walk/*` pinned to one thread (gated) and `merge_walk_par/*` at
//! four threads — the speculative transactional walk, reported for
//! information only (its median depends on the runner's core count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpg_gen::{generate, GeneratorConfig};
use cpg_merge::{generate_schedule_table, MergeConfig};

const NODES: [usize; 3] = [60, 80, 120];
const PATHS: [usize; 3] = [10, 18, 32];

fn bench_group(c: &mut Criterion, group_name: &str, threads: usize) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &nodes in &NODES {
        for &paths in &PATHS {
            let config = GeneratorConfig::new(nodes, paths)
                .with_processors(4)
                .with_buses(2)
                .with_seed((nodes * 1000 + paths) as u64);
            let system = generate(&config);
            let merge_config = MergeConfig::new(system.broadcast_time()).with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("{nodes}_nodes"), paths),
                &system,
                |b, system| {
                    b.iter(|| generate_schedule_table(system.cpg(), system.arch(), &merge_config))
                },
            );
        }
    }
    group.finish();
}

/// Deep-condition-nest configurations: many alternative paths over few
/// processes on a narrow architecture, so the decision tree is deep while
/// the per-track schedules stay small — the *sequential walk* (placements,
/// adjustments, repairs along the tree), not the per-track runs, is what
/// dominates. This is the trajectory that gates the undo-log walk: a
/// regression in its trail/pool management shows up here long before the
/// wide `schedule_merging/*` configurations notice.
const WALK_DEPTHS: [usize; 3] = [16, 24, 32];

fn merge_walk_group(c: &mut Criterion, group_name: &str, threads: usize) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &paths in &WALK_DEPTHS {
        let config = GeneratorConfig::new(3 * paths, paths)
            .with_processors(2)
            .with_buses(1)
            .with_seed(0xDEE9 + paths as u64);
        let system = generate(&config);
        // At one thread the walk is fully serial and the median is
        // core-count-independent, so that group can be gated like
        // schedule_merging_serial/*; larger counts run the speculative
        // transactional walk on the same systems (info-only).
        let merge_config = MergeConfig::new(system.broadcast_time()).with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(paths), &system, |b, system| {
            b.iter(|| generate_schedule_table(system.cpg(), system.arch(), &merge_config))
        });
    }
    group.finish();
}

fn merge_time(c: &mut Criterion) {
    // 0 = the automatic choice (available parallelism).
    bench_group(c, "schedule_merging", 0);
    bench_group(c, "schedule_merging_serial", 1);
    merge_walk_group(c, "merge_walk", 1);
    merge_walk_group(c, "merge_walk_par", 4);
}

criterion_group!(benches, merge_time);
criterion_main!(benches);
