//! Criterion benchmark behind the paper's Fig. 6: execution time of the
//! schedule-merging (table generation) algorithm as a function of the number
//! of merged schedules and of the graph size.
//!
//! Two variants of every configuration:
//!
//! * `schedule_merging/*` — the merge at its default thread count (available
//!   parallelism), i.e. what a caller gets out of the box; reported by
//!   `bench_guard` for information (its median scales with the runner's
//!   core count, which the single-threaded calibration probes cannot
//!   normalize, so gating it would be machine-dependent);
//! * `schedule_merging_serial/*` — pinned to one thread, so the serial
//!   trajectory (scratch-arena reuse without fork-join) stays comparable
//!   against pre-parallelism baselines such as `BENCH_2.json` and catches a
//!   scratch-reuse regression that extra cores would mask. This group is
//!   gated by `bench_guard`.
//!
//! The deep-condition-nest walk trajectory is measured twice as well:
//! `merge_walk/*` pinned to one thread (gated) and `merge_walk_par/*` at
//! four threads — the speculative transactional walk, reported for
//! information only (its median depends on the runner's core count).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpg::{enumerate_tracks, SystemEdit};
use cpg_arch::Time;
use cpg_gen::{generate, GeneratorConfig};
use cpg_merge::{generate_schedule_table, MergeConfig, MergeSession};

const NODES: [usize; 3] = [60, 80, 120];
const PATHS: [usize; 3] = [10, 18, 32];

fn bench_group(c: &mut Criterion, group_name: &str, threads: usize) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &nodes in &NODES {
        for &paths in &PATHS {
            let config = GeneratorConfig::new(nodes, paths)
                .with_processors(4)
                .with_buses(2)
                .with_seed((nodes * 1000 + paths) as u64);
            let system = generate(&config);
            let merge_config = MergeConfig::new(system.broadcast_time()).with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("{nodes}_nodes"), paths),
                &system,
                |b, system| {
                    b.iter(|| generate_schedule_table(system.cpg(), system.arch(), &merge_config));
                },
            );
        }
    }
    group.finish();
}

/// Deep-condition-nest configurations: many alternative paths over few
/// processes on a narrow architecture, so the decision tree is deep while
/// the per-track schedules stay small — the *sequential walk* (placements,
/// adjustments, repairs along the tree), not the per-track runs, is what
/// dominates. This is the trajectory that gates the undo-log walk: a
/// regression in its trail/pool management shows up here long before the
/// wide `schedule_merging/*` configurations notice.
// Depth 40 joined when the condition-partition row index landed: the deeper
// the nest, the larger the rows and the more a per-row linear rescan costs,
// so it is the configuration most sensitive to a regression in the index's
// group/bucket maintenance.
const WALK_DEPTHS: [usize; 4] = [16, 24, 32, 40];

fn merge_walk_group(c: &mut Criterion, group_name: &str, threads: usize) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &paths in &WALK_DEPTHS {
        let config = GeneratorConfig::new(3 * paths, paths)
            .with_processors(2)
            .with_buses(1)
            .with_seed(0xDEE9 + paths as u64);
        let system = generate(&config);
        // At one thread the walk is fully serial and the median is
        // core-count-independent, so that group can be gated like
        // schedule_merging_serial/*; larger counts run the speculative
        // transactional walk on the same systems (info-only).
        let merge_config = MergeConfig::new(system.broadcast_time()).with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(paths), &system, |b, system| {
            b.iter(|| generate_schedule_table(system.cpg(), system.arch(), &merge_config));
        });
    }
    group.finish();
}

/// Per-depth generator seeds for `merge_rewalk/*`, chosen (by an offline
/// seed sweep) so the system has a process on a *single* alternative path or
/// two: its WCET edit dirties the smallest possible subtree, making the
/// warm/cold gap a property of the replay machinery rather than of the
/// random tree shape. Plain sequential seeds mostly produce trees whose
/// rarest process still sits on a third of the paths, which caps the
/// replayable fraction structurally.
const REWALK_SEEDS: [(usize, u64); 3] = [(16, 0x66EE8), (24, 0x66EE8), (32, 0x66EF8)];

/// Incremental re-merge on the deep-condition-nest systems: `cold/*` pays a
/// full merge of the edited system per iteration (what a session-less caller
/// does after every WCET tweak), `warm/*` keeps a [`MergeSession`] across
/// iterations so every decision subtree outside the edit's scope replays
/// from its cached logs. Both pinned to one thread — the warm/cold ratio
/// must come from work avoidance, not from cores — and both producing
/// bit-identical tables (pinned by the differential tests). Gated by
/// `bench_guard`.
fn merge_rewalk_group(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_rewalk");
    group.sample_size(10);
    for &(paths, seed) in &REWALK_SEEDS {
        let config = GeneratorConfig::new(3 * paths, paths)
            .with_processors(2)
            .with_buses(1)
            .with_seed(seed);
        let system = generate(&config);
        let merge_config = MergeConfig::new(system.broadcast_time()).with_threads(1);

        // The edited process: an ordinary process on the fewest alternative
        // paths — deep in the decision tree, so a WCET tweak invalidates a
        // small subtree while the bulk of the tree replays. Among those
        // candidates, a deterministic pilot (reuse counters of a real warm
        // merge, no timing involved) picks the one whose edits keep the most
        // chains replayable: membership only bounds the *dirty* chain count,
        // while the serial position of the dirty chains decides how many
        // clean chains behind them survive read validation. The edit
        // alternates between two close execution times to keep every
        // iteration's work comparable.
        let tracks = enumerate_tracks(system.cpg());
        let min_membership = system
            .cpg()
            .ordinary_processes()
            .map(|p| tracks.iter().filter(|t| t.contains(p)).count())
            .min()
            .expect("generated systems have ordinary processes");
        let process = system
            .cpg()
            .ordinary_processes()
            .filter(|&p| tracks.iter().filter(|t| t.contains(p)).count() == min_membership)
            .max_by_key(|&p| {
                let mut pilot = MergeSession::new(system.cpg(), system.arch(), &merge_config);
                pilot.merge();
                let base = system.cpg().exec_time(p);
                let mut worst = usize::MAX;
                for time in [base + Time::new(1), base] {
                    pilot
                        .apply_edit(&SystemEdit::ExecTime { process: p, time })
                        .expect("ordinary processes are editable");
                    pilot.merge();
                    worst = worst.min(pilot.reuse_stats().chains_replayed);
                }
                worst
            })
            .expect("generated systems have ordinary processes");
        let base_time = system.cpg().exec_time(process);

        group.bench_with_input(BenchmarkId::new("cold", paths), &system, |b, system| {
            let mut cpg = system.cpg().clone();
            let mut bump = false;
            b.iter(|| {
                bump = !bump;
                let time = if bump {
                    base_time + Time::new(1)
                } else {
                    base_time
                };
                cpg.set_exec_time(process, time)
                    .expect("ordinary processes are editable");
                generate_schedule_table(&cpg, system.arch(), &merge_config)
            });
        });
        group.bench_with_input(BenchmarkId::new("warm", paths), &system, |b, system| {
            let mut session = MergeSession::new(system.cpg(), system.arch(), &merge_config);
            session.merge();
            let mut bump = false;
            b.iter(|| {
                bump = !bump;
                let time = if bump {
                    base_time + Time::new(1)
                } else {
                    base_time
                };
                session
                    .apply_edit(&SystemEdit::ExecTime { process, time })
                    .expect("ordinary processes are editable");
                session.merge()
            });
        });
    }
    group.finish();
}

fn merge_time(c: &mut Criterion) {
    // 0 = the automatic choice (available parallelism).
    bench_group(c, "schedule_merging", 0);
    bench_group(c, "schedule_merging_serial", 1);
    merge_walk_group(c, "merge_walk", 1);
    merge_walk_group(c, "merge_walk_par", 4);
    merge_rewalk_group(c);
}

criterion_group!(benches, merge_time);
criterion_main!(benches);
