//! Microbenchmarks of the condition algebra (cube conjunction, implication
//! and mutual-exclusion tests), the hot operations of the table-generation
//! algorithm.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cpg::{CondId, Cube};

fn build_cube(bits: u32, width: usize) -> Cube {
    (0..width)
        .map(|i| CondId::new(i).literal(bits & (1 << i) != 0))
        .collect()
}

fn condition_algebra(c: &mut Criterion) {
    let a = build_cube(0b1010_1010, 8);
    let b = build_cube(0b1010_1011, 8);
    let wide_a = build_cube(0x00FF_FF00, 32);
    let wide_b = build_cube(0x00FF_FF01, 32);

    c.bench_function("cube_and_cube", |bench| {
        bench.iter(|| black_box(a).and_cube(&black_box(b)));
    });
    c.bench_function("cube_implies", |bench| {
        bench.iter(|| black_box(wide_a).implies(&black_box(wide_b)));
    });
    c.bench_function("cube_excludes", |bench| {
        bench.iter(|| black_box(a).excludes(&black_box(b)));
    });
    c.bench_function("cube_literals_iteration", |bench| {
        bench.iter(|| black_box(wide_a).literals().count());
    });
}

criterion_group!(benches, condition_algebra);
criterion_main!(benches);
