//! Criterion benchmark behind the paper's claim that list scheduling of an
//! individual path needs "less than 0.003 seconds for graphs having 120
//! nodes": scheduling a single alternative path of 60-, 80- and 120-node
//! graphs.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpg::enumerate_tracks;
use cpg_gen::{generate, GeneratorConfig};
use cpg_path_sched::ListScheduler;

fn path_schedule_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_list_scheduling");
    for &nodes in &[60usize, 80, 120] {
        let config = GeneratorConfig::new(nodes, 12)
            .with_processors(4)
            .with_buses(2)
            .with_seed(nodes as u64);
        let system = generate(&config);
        let tracks = enumerate_tracks(system.cpg());
        // The longest path exercises the largest number of processes.
        let track = tracks
            .iter()
            .max_by_key(|t| t.len())
            .expect("generated graphs have at least one path")
            .clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(system, track),
            |b, (system, track)| {
                let scheduler =
                    ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
                b.iter(|| scheduler.schedule_track(track));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, path_schedule_time);
criterion_main!(benches);
