//! Code-stable calibration benchmark for the hardware-independent regression
//! gate.
//!
//! `bench_guard` compares `schedule_merging/*` medians against a committed
//! baseline, but absolute nanoseconds depend on the machine: a CI runner
//! slower than the recording machine fails the gate spuriously. This
//! benchmark is a fixed integer workload that never changes with the
//! scheduler code, so the ratio `current calibration / baseline calibration`
//! measures the speed of the machine (and its current load), and the guard
//! divides every gated measurement by it before comparing.
//!
//! Keep this routine untouched across PRs — editing it silently rescales the
//! gate for every committed baseline that contains its median.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Deterministic splitmix-style integer churn: branch-free, allocation-free,
/// independent of every workspace crate.
fn spin(rounds: u64) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..rounds {
        acc = acc.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(i | 1);
        acc ^= acc >> 29;
    }
    acc
}

fn calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.sample_size(15);
    group.bench_function("spin", |b| b.iter(|| spin(black_box(20_000))));
    group.finish();
}

criterion_group!(benches, calibration);
criterion_main!(benches);
