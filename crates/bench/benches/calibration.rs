//! Code-stable calibration benchmarks for the hardware-independent
//! regression gate.
//!
//! `bench_guard` compares gated medians against a committed baseline, but
//! absolute nanoseconds depend on the machine: a CI runner slower than the
//! recording machine fails the gate spuriously. These benchmarks are fixed
//! workloads that never change with the scheduler code, so the ratio
//! `current calibration / baseline calibration` measures the speed of the
//! machine (and its current load), and the guard divides every gated
//! measurement by it before comparing.
//!
//! Two probes, because "machine speed" is not one scalar:
//!
//! * `calibration/spin` — pure integer ALU churn; cancels out clock-speed
//!   and IPC differences. Used for compute-bound benches.
//! * `calibration/chase` — dependent pointer chasing through a
//!   cache-busting 16 MiB permutation cycle; cancels out memory-latency and
//!   cache-hierarchy differences, which `spin` is blind to. Used for the
//!   memory-sensitive benches (see `MEM_SENSITIVE_PREFIXES` in
//!   `bench_guard`).
//!
//! Keep these routines untouched across PRs — editing one silently rescales
//! the gate for every committed baseline that contains its median.

#![forbid(unsafe_code)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Deterministic splitmix-style integer churn: branch-free, allocation-free,
/// independent of every workspace crate.
fn spin(rounds: u64) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..rounds {
        acc = acc.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(i | 1);
        acc ^= acc >> 29;
    }
    acc
}

/// Entries of a 16 MiB pointer-chase buffer: 4 Mi `u32` indices.
const CHASE_LEN: usize = 1 << 22;
/// Dependent loads per measured iteration.
const CHASE_STEPS: usize = 1 << 16;

/// One deterministic single-cycle permutation over `0..CHASE_LEN` (Sattolo's
/// algorithm driven by the same splitmix-style mixer as `spin`), so every
/// load depends on the previous one and the hardware prefetcher has nothing
/// to latch onto.
fn chase_cycle() -> Vec<u32> {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
        let mut x = state;
        x ^= x >> 29;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 32;
        x
    };
    let mut cycle: Vec<u32> = (0..CHASE_LEN as u32).collect();
    for i in (1..CHASE_LEN).rev() {
        let j = (next() % i as u64) as usize;
        cycle.swap(i, j);
    }
    cycle
}

/// Follows the permutation cycle for `steps` dependent loads.
fn chase(cycle: &[u32], steps: usize) -> u32 {
    let mut at: u32 = 0;
    for _ in 0..steps {
        at = cycle[at as usize];
    }
    at
}

fn calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.sample_size(15);
    group.bench_function("spin", |b| b.iter(|| spin(black_box(20_000))));
    let cycle = chase_cycle();
    group.bench_function("chase", |b| {
        b.iter(|| chase(black_box(&cycle), black_box(CHASE_STEPS)));
    });
    group.finish();
}

criterion_group!(benches, calibration);
criterion_main!(benches);
