//! A crate root that forgot `#![forbid(unsafe_code)]` — the attribute only
//! appears inside this doc comment and a string, neither of which counts.

pub fn attribute_in_a_string_does_not_count() -> &'static str {
    "#![forbid(unsafe_code)]"
}
