// Hot-path-marked functions that allocate. The unmarked neighbour may
// allocate freely; `Vec::new` inside the string and this comment's
// .clone() mention must not be flagged.

fn unmarked_may_allocate() -> Vec<String> {
    vec![format!("{}", 1)]
}

// lint: hot-path
fn hot_inner_loop(jobs: &[Job], out: &mut Vec<Entry>) {
    let scratch = Vec::new();
    let copied = jobs.to_vec();
    for job in &copied {
        out.push(Entry {
            job: job.clone(),
            label: format!("job {job:?}"),
            note: "Vec::new in a string is fine",
        });
    }
    drop(scratch);
}

// lint: hot-path (allocation-free — must produce no findings)
fn hot_but_clean(acc: &mut u64, values: &[u64]) {
    for value in values {
        *acc = acc.wrapping_add(*value);
    }
}
