// An ambient environment read outside crates/core/src/config.rs. The
// mentions in this comment (std::env::var) and the string below must not
// be flagged; set_var is a write and is likewise not flagged.

fn threads() -> usize {
    let documented = "std::env::var(\"CPG_MERGE_THREADS\")";
    std::env::set_var("CPG_LINT_FIXTURE", documented);
    std::env::var("CPG_MERGE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn platform() -> Option<std::ffi::OsString> {
    std::env::var_os("CPG_PLATFORM")
}
