// A bench_guard whose gate names groups that do not exist (or are shaped
// wrong). The lint resolves these against the group-name string literals
// found in crates/bench/benches/*.rs.

const GATED_PREFIXES: &[&str] = &[
    "schedule_merging_serial/",
    "renamed_group_that_is_gone/",
    "missing_trailing_slash",
];

const MEM_SENSITIVE_PREFIXES: &[&str] = &["path_list_scheduling/"];

fn main() {
    let _ = (GATED_PREFIXES, MEM_SENSITIVE_PREFIXES);
}
