// A TableView impl where one method lost its #[inline] attribute. The
// shapes mirror crates/table/src/txn.rs: inherent impls and non-TableView
// trait impls must not be flagged.

impl ScheduleTable {
    // Inherent impl: no inline requirement.
    fn not_checked(&self) -> usize {
        0
    }
}

impl TableView for ScheduleTable {
    #[inline]
    fn get(&self, job: &Job, column: &Cube) -> Option<Time> {
        self.lookup(job, column)
    }

    fn set_on(&mut self, job: Job, column: Cube, time: Time) {
        self.place(job, column, time);
    }

    #[inline]
    #[allow(clippy::needless_lifetimes)]
    pub(crate) fn resource(&self, job: &Job) -> PeId {
        self.pe_of(job)
    }
}

impl Display for ScheduleTable {
    // Different trait: no inline requirement.
    fn fmt(&self, f: &mut Formatter<'_>) -> Result {
        Ok(())
    }
}

impl TableView for TableTxn<'_> {
    #[inline]
    fn get(&self, job: &Job, column: &Cube) -> Option<Time> {
        self.overlay_get(job, column)
    }

    fn row_version(&self, job: &Job) -> u64 {
        self.base_row_version(job)
    }
}
