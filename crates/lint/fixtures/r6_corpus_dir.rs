// A replay suite whose corpus references are stale: one directory was
// never committed and one exists but holds no entries. The lint resolves
// the literals against a fixture root the test builds at runtime (an empty
// directory cannot be committed to git). Only the first reference is fine.

fn corpus_paths() -> Vec<&'static str> {
    vec![
        "tests/corpus/populated",
        "tests/corpus/never_committed",
        "tests/corpus/empty_bank",
    ]
}

fn main() {
    let _ = corpus_paths();
}
