//! The lint crate's own checks: each rule must fire on its checked-in
//! fixture (crates/lint/fixtures/) and the whole tree must scan clean.

use std::path::{Path, PathBuf};

use cpg_lint::{
    check_bench_prefixes, check_corpus_dirs, check_env_var, check_forbid_unsafe, check_hot_path,
    check_table_view_inline, run, scan, Scanned, RULE_BENCH_PREFIX, RULE_CORPUS_DIR, RULE_ENV_VAR,
    RULE_FORBID_UNSAFE, RULE_HOT_PATH, RULE_TABLE_VIEW_INLINE,
};

fn fixture(name: &str) -> Scanned {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    scan(&std::fs::read_to_string(path).expect("fixture readable"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn scanner_masks_comments_and_strings_but_keeps_offsets() {
    let source = "let a = \"Vec::new()\"; // .clone() in a comment\nlet b = 2;\n";
    let scanned = scan(source);
    assert_eq!(scanned.code.len(), source.len());
    assert!(!scanned.code.contains("Vec::new"));
    assert!(!scanned.code.contains(".clone()"));
    assert!(scanned.code.contains("let b = 2;"));
    assert_eq!(scanned.strings.len(), 1);
    assert_eq!(scanned.strings[0].text, "Vec::new()");
    assert_eq!(scanned.comments.len(), 1);
    assert_eq!(scanned.line_of(source.find("let b").unwrap()), 2);
}

#[test]
fn missing_forbid_unsafe_is_flagged() {
    let findings = check_forbid_unsafe("fixture.rs", &fixture("r1_missing_forbid.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, RULE_FORBID_UNSAFE);

    let present = scan("#![forbid(unsafe_code)]\npub fn ok() {}\n");
    assert!(check_forbid_unsafe("ok.rs", &present).is_empty());
}

#[test]
fn table_view_methods_without_inline_are_flagged() {
    let findings = check_table_view_inline(
        "fixture.rs",
        &fixture("r2_missing_inline.rs"),
        &["ScheduleTable", "TableTxn"],
    );
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == RULE_TABLE_VIEW_INLINE));
    assert!(
        findings[0].message.contains("`set_on`"),
        "{}",
        findings[0].message
    );
    assert!(
        findings[1].message.contains("`row_version`"),
        "{}",
        findings[1].message
    );
}

#[test]
fn env_reads_are_flagged_but_writes_and_strings_are_not() {
    let findings = check_env_var("fixture.rs", &fixture("r3_env_var.rs"));
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == RULE_ENV_VAR));
    // One plain read, one `_os` read — set_var and the string/comment
    // mentions stay silent.
    assert_ne!(findings[0].line, findings[1].line);
}

#[test]
fn hot_path_allocations_are_flagged_token_by_token() {
    let findings = check_hot_path("fixture.rs", &fixture("r4_hot_path_alloc.rs"));
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == RULE_HOT_PATH));
    assert!(findings
        .iter()
        .all(|f| f.message.contains("`hot_inner_loop`")));
    for token in ["Vec::new", ".to_vec()", ".clone()", "format!"] {
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.message.contains(&format!("`{token}`")))
                .count(),
            1,
            "expected exactly one finding for {token}: {findings:?}"
        );
    }
}

#[test]
fn stale_or_misshapen_bench_prefixes_are_flagged() {
    let groups = vec![
        "schedule_merging_serial".to_string(),
        "path_list_scheduling".to_string(),
    ];
    let findings = check_bench_prefixes("fixture.rs", &fixture("r5_bench_guard.rs"), &groups);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == RULE_BENCH_PREFIX));
    assert!(
        findings[0].message.contains("renamed_group_that_is_gone/"),
        "{}",
        findings[0].message
    );
    assert!(
        findings[1].message.contains("missing_trailing_slash"),
        "{}",
        findings[1].message
    );
}

#[test]
fn missing_and_empty_corpus_dirs_are_flagged() {
    // An empty directory cannot be committed to git, so the fixture root is
    // built at runtime. The path segments are joined piecewise because this
    // file is itself scanned by `run`, and a literal starting with the
    // corpus prefix would have to exist under the real workspace root.
    let root = std::env::temp_dir().join("cpg_lint_r6_fixture_root");
    let _ = std::fs::remove_dir_all(&root);
    let corpus = root.join("tests").join("corpus");
    std::fs::create_dir_all(corpus.join("empty_bank")).expect("fixture root writable");
    std::fs::create_dir_all(corpus.join("populated")).expect("fixture root writable");
    std::fs::write(corpus.join("populated").join("w00.txt"), "seed: 1\n")
        .expect("fixture entry writable");

    let findings = check_corpus_dirs("fixture.rs", &fixture("r6_corpus_dir.rs"), &root);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == RULE_CORPUS_DIR));
    assert!(
        findings[0].message.contains("never_committed"),
        "{}",
        findings[0].message
    );
    assert!(
        findings[1].message.contains("empty_bank"),
        "{}",
        findings[1].message
    );
}

#[test]
fn the_workspace_scans_clean() {
    let (findings, scanned) = run(&repo_root()).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "the tree must satisfy its own invariants:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        scanned > 50,
        "suspiciously small scan ({scanned} files) — walk is broken"
    );
}
