//! Workspace invariant lints — a token-level scanner for conventions that
//! `rustc` and `clippy` cannot express because they are *about this repo*,
//! not about Rust:
//!
//! - **forbid-unsafe** — every library, binary and bench crate root carries
//!   `#![forbid(unsafe_code)]` (integration tests are exempt).
//! - **table-view-inline** — every method of the `TableView` impls for
//!   `ScheduleTable` and `TableTxn` in `crates/table/src/txn.rs` is
//!   `#[inline]`: the speculative walk dispatches through these on its
//!   hottest edge and must not pay a call across the crate boundary.
//! - **env-var-outside-config** — `std::env::var` reads appear only in
//!   `crates/core/src/config.rs` (`threads_from_env` and its test helper);
//!   everything else takes configuration as arguments so behaviour never
//!   depends on ambient process state.
//! - **hot-path-alloc** — a function annotated with a marker comment (a
//!   line comment whose text starts with `lint: hot-path`) must not call
//!   `Vec::new`, `.to_vec()`, `.clone()` or `format!`: these are the
//!   allocation-free inner loops of the decision-tree walk.
//! - **bench-prefix** — every gated or memory-sensitive bench prefix named
//!   in `bench_guard` matches a benchmark group that actually exists in
//!   `crates/bench/benches/`, so the regression gate can never silently
//!   gate nothing.
//! - **corpus-dir** — every string literal naming a path under
//!   `tests/corpus/` resolves to something that exists, and a referenced
//!   directory is non-empty, so a replay suite whose corpus was renamed or
//!   never committed cannot pass vacuously.
//!
//! The scanner is deliberately not a parser: [`scan`] strips comments and
//! string literals (preserving byte offsets), and the rules work on the
//! masked code with brace matching. That is exact enough for the six
//! invariants above and keeps the crate dependency-free.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule identifier for the `#![forbid(unsafe_code)]` crate-root check.
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
/// Rule identifier for the `TableView` `#[inline]` check.
pub const RULE_TABLE_VIEW_INLINE: &str = "table-view-inline";
/// Rule identifier for the environment-read containment check.
pub const RULE_ENV_VAR: &str = "env-var-outside-config";
/// Rule identifier for the hot-path allocation check.
pub const RULE_HOT_PATH: &str = "hot-path-alloc";
/// Rule identifier for the bench-guard prefix existence check.
pub const RULE_BENCH_PREFIX: &str = "bench-prefix";
/// Rule identifier for the corpus-path existence check.
pub const RULE_CORPUS_DIR: &str = "corpus-dir";

/// The comment marker that puts the next function under [`RULE_HOT_PATH`].
/// A line comment whose (trimmed) text starts with this string marks the
/// next `fn` in the file.
pub const HOT_PATH_MARKER: &str = "lint: hot-path";

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token (or 1 for whole-file rules).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A line comment (`//`) or block comment (`/* */`) found by [`scan`].
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Byte offset just past the end of the comment.
    pub end: usize,
    /// Comment text without the delimiters.
    pub text: String,
}

/// A string literal found by [`scan`].
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line the literal starts on.
    pub line: usize,
    /// Byte offset of the opening quote (or `r` for raw strings).
    pub start: usize,
    /// Literal content without the delimiters (escapes left as written).
    pub text: String,
}

/// The result of lexically splitting a source file: `code` is the original
/// text with every comment and string/char literal blanked to spaces
/// (newlines preserved), so token searches over it cannot be fooled by
/// text inside literals or comments.
#[derive(Debug)]
pub struct Scanned {
    /// Source with comments and literals masked; same byte length as the
    /// input, newlines preserved.
    pub code: String,
    /// All comments, in file order.
    pub comments: Vec<Comment>,
    /// All string literals, in file order.
    pub strings: Vec<StrLit>,
}

impl Scanned {
    /// 1-based line number of a byte offset into the (masked) source.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> usize {
        1 + self.code.as_bytes()[..offset.min(self.code.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn blank(code: &mut [u8], range: std::ops::Range<usize>) {
    for b in &mut code[range] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Lexically split `source` into masked code, comments and string literals.
///
/// Handles line comments, nested block comments, plain and raw strings
/// (any number of `#`s), escaped quotes, and character literals (with a
/// lifetime heuristic: `'a` without a closing quote is left as code).
#[must_use]
pub fn scan(source: &str) -> Scanned {
    let bytes = source.as_bytes();
    let len = bytes.len();
    let mut code = bytes.to_vec();
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < len {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                i += 2;
                while i < len && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    end: i,
                    text: source[start + 2..i].to_string(),
                });
                blank(&mut code, start..i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < len && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.saturating_sub(2).max(start + 2);
                comments.push(Comment {
                    line: start_line,
                    end: i,
                    text: source[start + 2..text_end].to_string(),
                });
                blank(&mut code, start..i);
            }
            b'"' => {
                let start = i;
                let start_line = line;
                i += 1;
                while i < len {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                let text_end = i.saturating_sub(1).max(start + 1);
                strings.push(StrLit {
                    line: start_line,
                    start,
                    text: source[start + 1..text_end].to_string(),
                });
                blank(&mut code, start..i);
            }
            b'r' if (i == 0 || !is_ident(bytes[i - 1])) && {
                let mut j = i + 1;
                while bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                bytes.get(j) == Some(&b'"')
            } =>
            {
                let start = i;
                let start_line = line;
                let mut j = i + 1;
                while bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                let hashes = j - i - 1;
                let body_start = j + 1;
                i = body_start;
                while i < len {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'"'
                        && bytes[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&b| b == b'#')
                            .count()
                            == hashes
                    {
                        break;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.min(len);
                strings.push(StrLit {
                    line: start_line,
                    start,
                    text: source[body_start.min(len)..text_end].to_string(),
                });
                i = (i + 1 + hashes).min(len);
                blank(&mut code, start..i);
            }
            b'\'' => {
                // Char literal vs lifetime: `'\x'`, `'x'` are literals;
                // `'a` followed by anything but `'` is a lifetime.
                if bytes.get(i + 1) == Some(&b'\\') {
                    let start = i;
                    i += 2;
                    while i < len && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(len);
                    blank(&mut code, start..i);
                } else if bytes.get(i + 2) == Some(&b'\'') && bytes.get(i + 1) != Some(&b'\'') {
                    blank(&mut code, i..i + 3);
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    Scanned {
        code: String::from_utf8_lossy(&code).into_owned(),
        comments,
        strings,
    }
}

/// Finds the next occurrence of `needle` in `haystack` at or after `from`
/// with identifier-boundary checks on both sides.
fn find_word(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut search = from;
    while let Some(rel) = haystack.get(search..)?.find(needle) {
        let pos = search + rel;
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
        let after = pos + needle.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        search = pos + 1;
    }
    None
}

/// Byte offset just past the brace that closes the one at `open`.
fn matching_brace(code: &[u8], open: usize, open_byte: u8, close_byte: u8) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < code.len() {
        if code[i] == open_byte {
            depth += 1;
        } else if code[i] == close_byte {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len()
}

fn ident_after(code: &str, from: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = from;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && is_ident(bytes[i]) {
        i += 1;
    }
    code[start..i].to_string()
}

/// Rule `forbid-unsafe`: the file must contain `#![forbid(unsafe_code)]`.
#[must_use]
pub fn check_forbid_unsafe(file: &str, scanned: &Scanned) -> Vec<Finding> {
    let squashed: String = scanned
        .code
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    if squashed.contains("#![forbid(unsafe_code)]") {
        return Vec::new();
    }
    vec![Finding {
        rule: RULE_FORBID_UNSAFE,
        file: file.to_string(),
        line: 1,
        message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
    }]
}

/// Rule `env-var-outside-config`: no `env::var` reads in this file.
#[must_use]
pub fn check_env_var(file: &str, scanned: &Scanned) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut from = 0;
    while let Some(pos) = {
        // `env::var` and `env::var_os` both read ambient process state;
        // boundary-check only the front so the `_os` suffix matches too.
        let bytes = scanned.code.as_bytes();
        let mut found = None;
        let mut search = from;
        while let Some(rel) = scanned.code.get(search..).and_then(|s| s.find("env::var")) {
            let p = search + rel;
            if p == 0 || !is_ident(bytes[p - 1]) {
                found = Some(p);
                break;
            }
            search = p + 1;
        }
        found
    } {
        findings.push(Finding {
            rule: RULE_ENV_VAR,
            file: file.to_string(),
            line: scanned.line_of(pos),
            message: "environment read outside crates/core/src/config.rs \
                      (route it through MergeConfig / threads_from_env)"
                .to_string(),
        });
        from = pos + 1;
    }
    findings
}

/// Walks backwards from a `fn` keyword over visibility qualifiers and
/// attributes; true if one of the attributes mentions `inline`.
fn has_inline_attr(code: &str, lower: usize, fn_pos: usize) -> bool {
    let bytes = code.as_bytes();
    let mut k = fn_pos;
    loop {
        while k > lower && bytes[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k <= lower {
            return false;
        }
        match bytes[k - 1] {
            b')' => {
                // Visibility scope such as `pub(crate)`.
                let mut depth = 0usize;
                let mut j = k;
                while j > lower {
                    j -= 1;
                    if bytes[j] == b')' {
                        depth += 1;
                    } else if bytes[j] == b'(' {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
                k = j;
            }
            b']' => {
                let mut depth = 0usize;
                let mut j = k;
                while j > lower {
                    j -= 1;
                    if bytes[j] == b']' {
                        depth += 1;
                    } else if bytes[j] == b'[' {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
                if code[j + 1..k - 1].contains("inline") {
                    return true;
                }
                // Step over the `#` (and `#!`, though inner attributes
                // cannot precede a method) introducing the attribute.
                k = j;
                while k > lower && (bytes[k - 1] == b'#' || bytes[k - 1] == b'!') {
                    k -= 1;
                }
            }
            b if is_ident(b) => {
                let mut s = k;
                while s > lower && is_ident(bytes[s - 1]) {
                    s -= 1;
                }
                match &code[s..k] {
                    "pub" | "const" | "unsafe" | "async" | "extern" | "default" => k = s,
                    _ => return false,
                }
            }
            _ => return false,
        }
    }
}

/// Rule `table-view-inline`: every method of an `impl TableView for …`
/// block whose target starts with one of `targets` carries `#[inline]`.
#[must_use]
pub fn check_table_view_inline(file: &str, scanned: &Scanned, targets: &[&str]) -> Vec<Finding> {
    let code = &scanned.code;
    let bytes = code.as_bytes();
    let mut findings = Vec::new();
    let mut search = 0;
    while let Some(pos) = find_word(code, "impl", search) {
        search = pos + 1;
        let Some(open_rel) = code[pos..].find('{') else {
            break;
        };
        let open = pos + open_rel;
        let header = &code[pos..open];
        if !header.contains("TableView for") {
            continue;
        }
        let target = header
            .split("for")
            .nth(1)
            .map(str::trim)
            .unwrap_or_default();
        if !targets.iter().any(|t| target.starts_with(t)) {
            continue;
        }
        let close = matching_brace(bytes, open, b'{', b'}');
        let mut depth = 0usize;
        let mut j = open + 1;
        while j < close {
            match bytes[j] {
                b'{' => {
                    depth += 1;
                    j += 1;
                }
                b'}' => {
                    depth -= 1;
                    j += 1;
                }
                b'f' if depth == 0
                    && code[j..].starts_with("fn")
                    && !is_ident(bytes[j - 1])
                    && bytes.get(j + 2).is_some_and(|&b| !is_ident(b)) =>
                {
                    let name = ident_after(code, j + 2);
                    if !has_inline_attr(code, open + 1, j) {
                        findings.push(Finding {
                            rule: RULE_TABLE_VIEW_INLINE,
                            file: file.to_string(),
                            line: scanned.line_of(j),
                            message: format!(
                                "TableView method `{name}` for `{target}` is missing #[inline] \
                                 (the walk dispatches through it on the hot path)"
                            ),
                        });
                    }
                    // Jump past the method body so nested items are skipped.
                    if let Some(body_rel) = code[j..close].find('{') {
                        j = matching_brace(bytes, j + body_rel, b'{', b'}') + 1;
                    } else {
                        j += 2;
                    }
                }
                _ => j += 1,
            }
        }
        search = close;
    }
    findings
}

const HOT_PATH_FORBIDDEN: &[(&str, &str)] = &[
    ("Vec::new", "allocates a fresh Vec"),
    (".to_vec()", "copies a slice into a fresh Vec"),
    (".clone()", "deep-clones"),
    ("format!", "allocates a String"),
];

/// Rule `hot-path-alloc`: a function annotated with [`HOT_PATH_MARKER`]
/// must not contain any of the forbidden allocation tokens.
#[must_use]
pub fn check_hot_path(file: &str, scanned: &Scanned) -> Vec<Finding> {
    let code = &scanned.code;
    let bytes = code.as_bytes();
    let mut findings = Vec::new();
    for comment in &scanned.comments {
        if !comment.text.trim_start().starts_with(HOT_PATH_MARKER) {
            continue;
        }
        let Some(fn_pos) = find_word(code, "fn", comment.end) else {
            continue;
        };
        let name = ident_after(code, fn_pos + 2);
        let Some(open_rel) = code[fn_pos..].find('{') else {
            continue;
        };
        let open = fn_pos + open_rel;
        let close = matching_brace(bytes, open, b'{', b'}');
        for &(token, why) in HOT_PATH_FORBIDDEN {
            let mut from = open;
            while let Some(rel) = code[from..close].find(token) {
                let pos = from + rel;
                let front_ok = !token.as_bytes()[0].is_ascii_alphanumeric()
                    || pos == 0
                    || !is_ident(bytes[pos - 1]);
                if front_ok {
                    findings.push(Finding {
                        rule: RULE_HOT_PATH,
                        file: file.to_string(),
                        line: scanned.line_of(pos),
                        message: format!(
                            "`{name}` is marked `{HOT_PATH_MARKER}` but `{token}` {why}"
                        ),
                    });
                }
                from = pos + 1;
            }
        }
    }
    findings
}

/// Extracts the string literals of the `&[&str]` array initializing the
/// given `const` in an already-scanned file.
#[must_use]
pub fn const_str_array(scanned: &Scanned, const_name: &str) -> Vec<StrLit> {
    let Some(decl) = find_word(&scanned.code, const_name, 0) else {
        return Vec::new();
    };
    let Some(eq_rel) = scanned.code[decl..].find('=') else {
        return Vec::new();
    };
    let eq = decl + eq_rel;
    let Some(open_rel) = scanned.code[eq..].find('[') else {
        return Vec::new();
    };
    let open = eq + open_rel;
    let close = matching_brace(scanned.code.as_bytes(), open, b'[', b']');
    scanned
        .strings
        .iter()
        .filter(|lit| lit.start > open && lit.start < close)
        .cloned()
        .collect()
}

/// Rule `bench-prefix`: every prefix in the guard's gated / mem-sensitive
/// arrays must end with `/` and name a benchmark group that exists (i.e.
/// appears as a string literal in some bench target).
#[must_use]
pub fn check_bench_prefixes(
    guard_file: &str,
    guard: &Scanned,
    bench_group_literals: &[String],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for const_name in ["GATED_PREFIXES", "MEM_SENSITIVE_PREFIXES"] {
        for lit in const_str_array(guard, const_name) {
            let Some(stem) = lit.text.strip_suffix('/') else {
                findings.push(Finding {
                    rule: RULE_BENCH_PREFIX,
                    file: guard_file.to_string(),
                    line: lit.line,
                    message: format!(
                        "{const_name} entry {:?} must end with '/' to match whole groups",
                        lit.text
                    ),
                });
                continue;
            };
            if !bench_group_literals.iter().any(|name| name == stem) {
                findings.push(Finding {
                    rule: RULE_BENCH_PREFIX,
                    file: guard_file.to_string(),
                    line: lit.line,
                    message: format!(
                        "{const_name} entry {:?} matches no benchmark group in \
                         crates/bench/benches/ (group {stem:?} not found)",
                        lit.text
                    ),
                });
            }
        }
    }
    findings
}

/// Rule `corpus-dir`: every string literal naming a path under
/// `tests/corpus/` must resolve, relative to the workspace root, to
/// something that exists — and a referenced directory must be non-empty.
/// Replay suites enumerate their corpus directory at runtime; without this
/// check, a renamed or never-committed corpus makes them pass vacuously
/// (or fail far from the cause) instead of failing the lint pass.
#[must_use]
pub fn check_corpus_dirs(file: &str, scanned: &Scanned, root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for lit in &scanned.strings {
        if !lit.text.starts_with("tests/corpus/") {
            continue;
        }
        let target = root.join(&lit.text);
        if !target.exists() {
            findings.push(Finding {
                rule: RULE_CORPUS_DIR,
                file: file.to_string(),
                line: lit.line,
                message: format!(
                    "corpus path {:?} does not exist under the workspace root",
                    lit.text
                ),
            });
        } else if target.is_dir() {
            let populated = fs::read_dir(&target).is_ok_and(|mut entries| entries.next().is_some());
            if !populated {
                findings.push(Finding {
                    rule: RULE_CORPUS_DIR,
                    file: file.to_string(),
                    line: lit.line,
                    message: format!(
                        "corpus directory {:?} is empty — bank entries into it \
                         or drop the reference",
                        lit.text
                    ),
                });
            }
        }
    }
    findings
}

fn rs_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|entry| entry.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // `fixtures` holds deliberately-violating inputs for the lint
            // crate's own tests; `corpus` holds schedule traces.
            if matches!(name, "target" | "fixtures" | "corpus") {
                continue;
            }
            rs_files_under(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned()
}

fn read_scanned(path: &Path) -> io::Result<Scanned> {
    Ok(scan(&fs::read_to_string(path)?))
}

/// Runs every rule over the workspace rooted at `root`, returning all
/// findings sorted by file and line. Also returns the number of files
/// scanned so an accidentally-empty walk is visible.
pub fn run(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let mut findings = Vec::new();
    let mut scanned_files = 0usize;

    // forbid-unsafe: lib/bin/bench crate roots, vendored shims included.
    let mut crate_dirs = vec![root.to_path_buf()];
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        if dir.is_dir() {
            let mut subdirs: Vec<_> = fs::read_dir(&dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|entry| entry.path())
                .filter(|path| path.is_dir())
                .collect();
            subdirs.sort();
            crate_dirs.extend(subdirs);
        }
    }
    for crate_dir in &crate_dirs {
        let mut roots = vec![crate_dir.join("src/lib.rs"), crate_dir.join("src/main.rs")];
        for sub in ["src/bin", "benches"] {
            let dir = crate_dir.join(sub);
            if dir.is_dir() {
                let mut extra = Vec::new();
                rs_files_under(&dir, &mut extra)?;
                roots.extend(extra);
            }
        }
        for path in roots {
            if !path.is_file() {
                continue;
            }
            scanned_files += 1;
            findings.extend(check_forbid_unsafe(
                &rel(root, &path),
                &read_scanned(&path)?,
            ));
        }
    }

    // table-view-inline: the one file holding both impls.
    let txn = root.join("crates/table/src/txn.rs");
    if txn.is_file() {
        scanned_files += 1;
        findings.extend(check_table_view_inline(
            &rel(root, &txn),
            &read_scanned(&txn)?,
            &["ScheduleTable", "TableTxn"],
        ));
    }

    // env-var-outside-config + hot-path-alloc: all first-party sources.
    let mut first_party = Vec::new();
    rs_files_under(&root.join("crates"), &mut first_party)?;
    rs_files_under(&root.join("src"), &mut first_party)?;
    rs_files_under(&root.join("tests"), &mut first_party)?;
    let config_rs = root.join("crates/core/src/config.rs");
    for path in &first_party {
        scanned_files += 1;
        let scanned = read_scanned(path)?;
        let file = rel(root, path);
        if *path != config_rs {
            findings.extend(check_env_var(&file, &scanned));
        }
        findings.extend(check_hot_path(&file, &scanned));
        findings.extend(check_corpus_dirs(&file, &scanned, root));
    }

    // bench-prefix: guard constants against the bench targets' group names.
    let guard = root.join("crates/bench/src/bin/bench_guard.rs");
    if guard.is_file() {
        let mut bench_files = Vec::new();
        rs_files_under(&root.join("crates/bench/benches"), &mut bench_files)?;
        let mut group_literals = Vec::new();
        for path in &bench_files {
            group_literals.extend(read_scanned(path)?.strings.into_iter().map(|lit| lit.text));
        }
        scanned_files += 1;
        findings.extend(check_bench_prefixes(
            &rel(root, &guard),
            &read_scanned(&guard)?,
            &group_literals,
        ));
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok((findings, scanned_files))
}
