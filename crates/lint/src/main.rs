//! CLI entry point for the workspace lint pass.
//!
//! ```text
//! cargo run -p cpg-lint [--release] [ROOT]
//! ```
//!
//! `ROOT` defaults to the current directory (the workspace root when run
//! via cargo). Exits non-zero if any rule fires; see the library docs for
//! the rule catalogue.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    match cpg_lint::run(&root) {
        Ok((findings, scanned)) => {
            if scanned == 0 {
                eprintln!(
                    "cpg-lint: scanned no files under {} — wrong root?",
                    root.display()
                );
                ExitCode::FAILURE
            } else if findings.is_empty() {
                println!("cpg-lint: clean ({scanned} files scanned)");
                ExitCode::SUCCESS
            } else {
                for finding in &findings {
                    eprintln!("{finding}");
                }
                eprintln!("cpg-lint: {} violation(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(error) => {
            eprintln!("cpg-lint: cannot scan {}: {error}", root.display());
            ExitCode::FAILURE
        }
    }
}
