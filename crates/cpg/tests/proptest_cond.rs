//! Property-based tests of the condition algebra (cubes, guards,
//! assignments): the bitset implementation must agree with the semantic
//! (truth-table) definitions of conjunction, implication and exclusion.

use proptest::prelude::*;

use cpg::{all_assignments, Assignment, CondId, Cube, Guard, Literal};

const WIDTH: usize = 6;

fn literal_strategy() -> impl Strategy<Value = Literal> {
    (0..WIDTH, any::<bool>()).prop_map(|(index, value)| CondId::new(index).literal(value))
}

/// An arbitrary consistent cube over the first `WIDTH` conditions.
fn cube_strategy() -> impl Strategy<Value = Cube> {
    proptest::collection::vec((0..WIDTH, any::<Option<bool>>()), WIDTH).prop_map(|choices| {
        let mut cube = Cube::top();
        for (index, polarity) in choices {
            if let Some(value) = polarity {
                if let Some(next) = cube.and(CondId::new(index).literal(value)) {
                    cube = next;
                }
            }
        }
        cube
    })
}

/// All complete assignments over the conditions used by the strategies.
fn universe() -> Vec<Assignment> {
    let conditions: Vec<CondId> = (0..WIDTH).map(CondId::new).collect();
    all_assignments(&conditions)
}

proptest! {
    // Pinned case count and shrink budget: CI runs must be deterministic and
    // fast regardless of PROPTEST_CASES / PROPTEST_MAX_SHRINK_ITERS in the
    // environment.
    #![proptest_config(ProptestConfig {
        cases: 128,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]
    #[test]
    fn conjunction_matches_truth_table_semantics(a in cube_strategy(), b in cube_strategy()) {
        match a.and_cube(&b) {
            Some(joined) => {
                for assignment in universe() {
                    prop_assert_eq!(
                        joined.satisfied_by(&assignment),
                        a.satisfied_by(&assignment) && b.satisfied_by(&assignment)
                    );
                }
            }
            None => {
                // Contradiction: no assignment satisfies both.
                for assignment in universe() {
                    prop_assert!(!(a.satisfied_by(&assignment) && b.satisfied_by(&assignment)));
                }
            }
        }
    }

    #[test]
    fn implication_matches_semantic_entailment(a in cube_strategy(), b in cube_strategy()) {
        let syntactic = a.implies(&b);
        let semantic = universe()
            .iter()
            .all(|assignment| !a.satisfied_by(assignment) || b.satisfied_by(assignment));
        prop_assert_eq!(syntactic, semantic);
    }

    #[test]
    fn exclusion_matches_unsatisfiable_conjunction(a in cube_strategy(), b in cube_strategy()) {
        let syntactic = a.excludes(&b);
        let semantic = universe()
            .iter()
            .all(|assignment| !(a.satisfied_by(assignment) && b.satisfied_by(assignment)));
        prop_assert_eq!(syntactic, semantic);
        prop_assert_eq!(a.excludes(&b), b.excludes(&a));
        prop_assert_eq!(a.compatible(&b), !a.excludes(&b));
    }

    #[test]
    fn implication_is_reflexive_and_transitive(
        a in cube_strategy(),
        b in cube_strategy(),
        c in cube_strategy(),
    ) {
        prop_assert!(a.implies(&a));
        if a.implies(&b) && b.implies(&c) {
            prop_assert!(a.implies(&c));
        }
        // Everything implies true.
        prop_assert!(a.implies(&Cube::top()));
    }

    #[test]
    fn conjoining_a_literal_adds_exactly_that_literal(cube in cube_strategy(), lit in literal_strategy()) {
        match cube.and(lit) {
            Some(next) => {
                prop_assert!(next.contains(lit));
                prop_assert!(next.implies(&cube));
                prop_assert_eq!(next.polarity_of(lit.cond()), Some(lit.value()));
                prop_assert!(next.len() <= cube.len() + 1);
            }
            None => prop_assert!(cube.contains(lit.negated())),
        }
    }

    #[test]
    fn without_removes_only_the_requested_condition(cube in cube_strategy(), index in 0..WIDTH) {
        let cond = CondId::new(index);
        let removed = cube.without(cond);
        prop_assert!(!removed.mentions(cond));
        prop_assert!(cube.implies(&removed));
        for lit in cube.literals() {
            if lit.cond() != cond {
                prop_assert!(removed.contains(lit));
            }
        }
    }

    #[test]
    fn assignment_round_trips_through_cube(cube in cube_strategy()) {
        let assignment = Assignment::from_cube(&cube);
        prop_assert_eq!(assignment.to_cube(), cube);
        prop_assert!(cube.satisfied_by(&assignment));
        prop_assert!(cube.consistent_with(&assignment));
        prop_assert_eq!(assignment.len(), cube.len());
    }

    #[test]
    fn guard_normalisation_preserves_semantics(cubes in proptest::collection::vec(cube_strategy(), 0..5)) {
        let guard = Guard::from_cubes(cubes.clone());
        for assignment in universe() {
            let raw = cubes.iter().any(|cube| cube.satisfied_by(&assignment));
            prop_assert_eq!(guard.satisfied_by(&assignment), raw);
        }
    }

    #[test]
    fn guard_implication_matches_semantic_entailment(
        a in proptest::collection::vec(cube_strategy(), 0..4),
        b in proptest::collection::vec(cube_strategy(), 0..4),
    ) {
        let ga = Guard::from_cubes(a);
        let gb = Guard::from_cubes(b);
        let syntactic = ga.implies(&gb);
        let semantic = universe()
            .iter()
            .all(|assignment| !ga.satisfied_by(assignment) || gb.satisfied_by(assignment));
        prop_assert_eq!(syntactic, semantic);
    }

    #[test]
    fn guard_conjunction_and_disjunction_are_semantic(
        a in proptest::collection::vec(cube_strategy(), 0..4),
        cube in cube_strategy(),
    ) {
        let guard = Guard::from_cubes(a);
        let anded = guard.and_cube(&cube);
        let ored = guard.or(&Guard::from_cube(cube));
        for assignment in universe() {
            prop_assert_eq!(
                anded.satisfied_by(&assignment),
                guard.satisfied_by(&assignment) && cube.satisfied_by(&assignment)
            );
            prop_assert_eq!(
                ored.satisfied_by(&assignment),
                guard.satisfied_by(&assignment) || cube.satisfied_by(&assignment)
            );
        }
    }

    #[test]
    fn display_round_trips_the_number_of_literals(cube in cube_strategy()) {
        let text = cube.to_string();
        if cube.is_top() {
            prop_assert_eq!(text, "true");
        } else {
            prop_assert_eq!(text.split('&').count(), cube.len());
        }
    }
}
