//! Insertion of communication processes on inter-processor edges.
//!
//! In the paper's model every connection between processes mapped to
//! different processing elements is handled by a *communication process*
//! mapped to a bus (the black dots P18–P31 of Fig. 1). This module turns a
//! graph of ordinary processes into the full graph containing those
//! communication processes.

use cpg_arch::{Architecture, PeId};

use crate::error::ExpandError;
use crate::graph::{Cpg, CpgBuilder};
use crate::process::{ProcessId, ProcessKind};

/// Policy used to choose the bus that carries the communication process of an
/// inter-processor edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BusPolicy {
    /// Respect the `via` bus recorded on the edge when present, otherwise
    /// distribute communications over all buses round-robin.
    #[default]
    RoundRobin,
    /// Respect the `via` bus recorded on the edge when present, otherwise map
    /// every communication to the first bus of the architecture (the paper's
    /// Fig. 1 maps all communications to a unique bus).
    FirstBus,
}

/// Expands a conditional process graph by inserting a communication process on
/// every edge whose endpoints are mapped to different processing elements.
///
/// Edges between processes on the same processing element, and edges touching
/// the dummy source/sink, are kept as they are. For an edge `Pi → Pj` crossing
/// processing elements, a communication process named `"Pi->Pj"` with
/// execution time equal to the edge's communication time is inserted on a bus
/// chosen according to `policy`, the conditional literal (if any) moves to the
/// `Pi → comm` sub-edge, and `comm → Pj` becomes a simple edge.
///
/// # Errors
///
/// * [`ExpandError::AlreadyExpanded`] when the graph already contains
///   communication processes.
/// * [`ExpandError::NoBusAvailable`] when an inter-processor edge exists but
///   the architecture has no bus.
///
/// # Example
///
/// ```
/// use cpg_arch::{Architecture, Time};
/// use cpg::{expand_communications, BusPolicy, Cpg};
///
/// let arch = Architecture::builder()
///     .processor("pe1").processor("pe2").bus("bus").build()?;
/// let pe1 = arch.pe_by_name("pe1").unwrap();
/// let pe2 = arch.pe_by_name("pe2").unwrap();
/// let mut b = Cpg::builder();
/// let a = b.process("A", Time::new(2), pe1);
/// let z = b.process("Z", Time::new(2), pe2);
/// b.simple_edge(a, z, Time::new(3));
/// let cpg = b.build(&arch)?;
///
/// let full = expand_communications(&cpg, &arch, BusPolicy::FirstBus)?;
/// assert_eq!(full.communication_processes().count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expand_communications(
    cpg: &Cpg,
    arch: &Architecture,
    policy: BusPolicy,
) -> Result<Cpg, ExpandError> {
    if cpg.is_expanded() {
        return Err(ExpandError::AlreadyExpanded);
    }
    let buses: Vec<PeId> = arch.buses().collect();

    let mut builder = CpgBuilder::new();
    // Conditions are re-declared with the same identifiers (declaration order
    // is preserved).
    for cond in cpg.conditions() {
        builder.condition(cpg.condition_name(cond).to_owned());
    }
    // Ordinary processes are copied; identifiers keep their relative order, so
    // we remember the translation.
    let mut translated: Vec<Option<ProcessId>> = vec![None; cpg.len()];
    for id in cpg.process_ids() {
        let process = cpg.process(id);
        if process.kind() == ProcessKind::Ordinary {
            let new_id = builder.process(
                process.name().to_owned(),
                process.exec_time(),
                process.mapping().expect("ordinary processes are mapped"),
            );
            translated[id.index()] = Some(new_id);
        }
    }
    for id in cpg.process_ids() {
        if cpg.process(id).is_conjunction() && cpg.process(id).kind() == ProcessKind::Ordinary {
            builder.mark_conjunction(translated[id.index()].expect("translated above"));
        }
    }

    let mut next_bus = 0usize;
    for edge in cpg.edges() {
        let (Some(from), Some(to)) = (
            translated[edge.from().index()],
            translated[edge.to().index()],
        ) else {
            // Edge touches the dummy source or sink: the builder recreates
            // polar edges automatically.
            continue;
        };
        let from_pe = cpg
            .mapping(edge.from())
            .expect("ordinary processes are mapped");
        let to_pe = cpg
            .mapping(edge.to())
            .expect("ordinary processes are mapped");
        if from_pe == to_pe {
            match edge.condition() {
                Some(lit) => builder.conditional_edge(from, to, lit, edge.comm_time()),
                None => builder.simple_edge(from, to, edge.comm_time()),
            }
            continue;
        }
        // Inter-processor edge: insert a communication process.
        let bus = match edge.via() {
            Some(via) => via,
            None => {
                if buses.is_empty() {
                    return Err(ExpandError::NoBusAvailable {
                        from: cpg.process(edge.from()).name().to_owned(),
                        to: cpg.process(edge.to()).name().to_owned(),
                    });
                }
                match policy {
                    BusPolicy::FirstBus => buses[0],
                    BusPolicy::RoundRobin => {
                        let bus = buses[next_bus % buses.len()];
                        next_bus += 1;
                        bus
                    }
                }
            }
        };
        let name = format!(
            "{}->{}",
            cpg.process(edge.from()).name(),
            cpg.process(edge.to()).name()
        );
        let comm = builder.communication(name, edge.comm_time(), bus);
        match edge.condition() {
            Some(lit) => builder.conditional_edge(from, comm, lit, cpg_arch::Time::ZERO),
            None => builder.simple_edge(from, comm, cpg_arch::Time::ZERO),
        }
        builder.simple_edge(comm, to, cpg_arch::Time::ZERO);
    }

    builder.build(arch).map_err(ExpandError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cube;
    use crate::tracks::enumerate_tracks;
    use cpg_arch::Time;

    fn arch() -> Architecture {
        Architecture::builder()
            .processor("pe1")
            .processor("pe2")
            .bus("bus0")
            .bus("bus1")
            .build()
            .unwrap()
    }

    fn simple_cross(arch: &Architecture) -> Cpg {
        let pe1 = arch.pe_by_name("pe1").unwrap();
        let pe2 = arch.pe_by_name("pe2").unwrap();
        let mut b = CpgBuilder::new();
        let a = b.process("A", Time::new(2), pe1);
        let z = b.process("Z", Time::new(2), pe2);
        b.simple_edge(a, z, Time::new(3));
        b.build(arch).unwrap()
    }

    #[test]
    fn local_edges_get_no_communication_process() {
        let arch = arch();
        let pe1 = arch.pe_by_name("pe1").unwrap();
        let mut b = CpgBuilder::new();
        let a = b.process("A", Time::new(2), pe1);
        let z = b.process("Z", Time::new(2), pe1);
        b.simple_edge(a, z, Time::new(3));
        let cpg = b.build(&arch).unwrap();
        let full = expand_communications(&cpg, &arch, BusPolicy::FirstBus).unwrap();
        assert_eq!(full.communication_processes().count(), 0);
        assert_eq!(full.ordinary_processes().count(), 2);
    }

    #[test]
    fn cross_processor_edge_gets_a_communication_process() {
        let arch = arch();
        let cpg = simple_cross(&arch);
        let full = expand_communications(&cpg, &arch, BusPolicy::FirstBus).unwrap();
        assert_eq!(full.communication_processes().count(), 1);
        let comm = full.communication_processes().next().unwrap();
        assert_eq!(full.process(comm).name(), "A->Z");
        assert_eq!(full.exec_time(comm), Time::new(3));
        let bus = full.mapping(comm).unwrap();
        assert!(arch.kind_of(bus).is_bus());
        // A -> comm -> Z
        let a = full.process_by_name("A").unwrap();
        let z = full.process_by_name("Z").unwrap();
        assert!(full.successors(a).any(|s| s == comm));
        assert!(full.successors(comm).any(|s| s == z));
        assert!(full.is_expanded());
    }

    #[test]
    fn expanding_twice_is_an_error() {
        let arch = arch();
        let cpg = simple_cross(&arch);
        let full = expand_communications(&cpg, &arch, BusPolicy::FirstBus).unwrap();
        assert_eq!(
            expand_communications(&full, &arch, BusPolicy::FirstBus),
            Err(ExpandError::AlreadyExpanded)
        );
    }

    #[test]
    fn round_robin_alternates_buses() {
        let arch = arch();
        let pe1 = arch.pe_by_name("pe1").unwrap();
        let pe2 = arch.pe_by_name("pe2").unwrap();
        let mut b = CpgBuilder::new();
        let a = b.process("A", Time::new(1), pe1);
        let x = b.process("X", Time::new(1), pe2);
        let y = b.process("Y", Time::new(1), pe2);
        b.simple_edge(a, x, Time::new(1));
        b.simple_edge(a, y, Time::new(1));
        let cpg = b.build(&arch).unwrap();
        let full = expand_communications(&cpg, &arch, BusPolicy::RoundRobin).unwrap();
        let buses: std::collections::HashSet<_> = full
            .communication_processes()
            .map(|c| full.mapping(c).unwrap())
            .collect();
        assert_eq!(buses.len(), 2);
    }

    #[test]
    fn explicit_via_bus_is_respected() {
        let arch = arch();
        let pe1 = arch.pe_by_name("pe1").unwrap();
        let pe2 = arch.pe_by_name("pe2").unwrap();
        let bus1 = arch.pe_by_name("bus1").unwrap();
        let mut b = CpgBuilder::new();
        let a = b.process("A", Time::new(1), pe1);
        let z = b.process("Z", Time::new(1), pe2);
        b.simple_edge_via(a, z, Time::new(1), bus1);
        let cpg = b.build(&arch).unwrap();
        let full = expand_communications(&cpg, &arch, BusPolicy::FirstBus).unwrap();
        let comm = full.communication_processes().next().unwrap();
        assert_eq!(full.mapping(comm), Some(bus1));
    }

    #[test]
    fn conditional_cross_edge_keeps_guard_semantics() {
        let arch = arch();
        let pe1 = arch.pe_by_name("pe1").unwrap();
        let pe2 = arch.pe_by_name("pe2").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let root = b.process("root", Time::new(1), pe1);
        let t = b.process("t", Time::new(1), pe2);
        let e = b.process("e", Time::new(1), pe1);
        b.conditional_edge(root, t, c.is_true(), Time::new(2));
        b.conditional_edge(root, e, c.is_false(), Time::ZERO);
        let cpg = b.build(&arch).unwrap();
        let full = expand_communications(&cpg, &arch, BusPolicy::FirstBus).unwrap();

        // The communication inherits the guard C; the destination keeps it too.
        let comm = full.communication_processes().next().unwrap();
        assert_eq!(full.guard(comm).as_cube(), Some(Cube::from(c.is_true())));
        let t_new = full.process_by_name("t").unwrap();
        assert_eq!(full.guard(t_new).as_cube(), Some(Cube::from(c.is_true())));
        // The disjunction process is still `root`.
        let root_new = full.process_by_name("root").unwrap();
        assert_eq!(full.disjunction_of(c), root_new);
        // Track structure is unchanged: two alternative paths.
        assert_eq!(enumerate_tracks(&full).len(), 2);
    }

    #[test]
    fn expansion_preserves_structure_and_execution_time() {
        // Expansion only adds communication processes: the ordinary process
        // set, the guards, the conditions and the number of alternative paths
        // are unchanged, and the total execution time grows by exactly the
        // inserted communication times.
        let system = crate::examples::fig1();
        let before = system.unexpanded();
        let after = system.cpg();
        assert_eq!(
            before.ordinary_processes().count(),
            after.ordinary_processes().count()
        );
        assert_eq!(before.num_conditions(), after.num_conditions());
        assert_eq!(
            enumerate_tracks(before).len(),
            enumerate_tracks(after).len()
        );
        let comm_total: Time = after
            .communication_processes()
            .map(|c| after.exec_time(c))
            .sum();
        assert_eq!(
            after.total_execution_time(),
            before.total_execution_time() + comm_total
        );
        for pid in before.ordinary_processes() {
            let name = before.process(pid).name();
            let mapped = after.process_by_name(name).unwrap();
            assert_eq!(before.exec_time(pid), after.exec_time(mapped), "{name}");
            assert_eq!(
                before.guard(pid).is_true(),
                after.guard(mapped).is_true(),
                "{name}"
            );
        }
    }
}
