//! Enumeration of the alternative paths ("tracks") through a conditional
//! process graph.
//!
//! For a given execution of the system only a subset of the processes is
//! activated; that subset is determined by the values of the conditions
//! computed by the disjunction processes that actually run. Each such
//! combination is an *alternative path* `G_k ⊆ Γ` labelled by the conjunction
//! `L_k` of condition values that selects it (Section 4 of the paper). The
//! scheduling strategy first schedules every alternative path individually and
//! then merges the schedules into the global schedule table.

use std::fmt;

use crate::cond::{Assignment, CondId, Cube};
use crate::graph::Cpg;
use crate::process::ProcessId;

/// One alternative path `G_k` through a conditional process graph together
/// with its label `L_k`.
///
/// # Example
///
/// ```
/// use cpg::examples;
/// use cpg::enumerate_tracks;
///
/// let system = examples::fig1();
/// let tracks = enumerate_tracks(system.cpg());
/// // The paper's Fig. 2 lists six alternative paths for the Fig. 1 graph.
/// assert_eq!(tracks.len(), 6);
/// for track in tracks.iter() {
///     assert!(track.contains(system.cpg().source()));
///     assert!(track.contains(system.cpg().sink()));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    label: Cube,
    processes: Vec<ProcessId>,
    membership: Vec<bool>,
}

impl Track {
    /// The label `L_k`: the conjunction of condition values selecting this
    /// path.
    #[must_use]
    pub const fn label(&self) -> Cube {
        self.label
    }

    /// The processes activated on this path, in ascending identifier order
    /// (includes the dummy source and sink).
    #[must_use]
    pub fn processes(&self) -> &[ProcessId] {
        &self.processes
    }

    /// Number of processes activated on this path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// `true` when the path contains no process (never the case for tracks
    /// produced by [`enumerate_tracks`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// `true` when the given process is activated on this path.
    #[must_use]
    pub fn contains(&self, id: ProcessId) -> bool {
        self.membership.get(id.index()).copied().unwrap_or(false)
    }

    /// The conditions whose value is determined on this path (i.e. whose
    /// disjunction process executes).
    pub fn determined_conditions(&self) -> impl Iterator<Item = CondId> + '_ {
        self.label.conditions()
    }

    /// The predecessors of `id` that are active on this path (the inputs the
    /// process actually waits for during an execution along this path).
    pub fn active_predecessors<'a>(
        &'a self,
        cpg: &'a Cpg,
        id: ProcessId,
    ) -> impl Iterator<Item = ProcessId> + 'a {
        cpg.predecessors(id).filter(move |p| self.contains(*p))
    }

    /// The successors of `id` that are active on this path and whose
    /// connecting edge transmits on this path.
    pub fn active_successors<'a>(
        &'a self,
        cpg: &'a Cpg,
        id: ProcessId,
    ) -> impl Iterator<Item = ProcessId> + 'a {
        cpg.out_edges(id).filter_map(move |edge| {
            let transmits = edge.condition().is_none_or(|lit| self.label.contains(lit));
            (transmits && self.contains(edge.to())).then_some(edge.to())
        })
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "track {} ({} processes)", self.label, self.len())
    }
}

/// The complete set of alternative paths of a conditional process graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackSet {
    tracks: Vec<Track>,
}

impl TrackSet {
    /// Number of alternative paths (`N_alt` in the paper).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// `true` when there are no tracks (never the case for a valid graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// The tracks, in deterministic enumeration order (true branches first).
    #[must_use]
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Iterates over the tracks.
    pub fn iter(&self) -> impl Iterator<Item = &Track> + '_ {
        self.tracks.iter()
    }

    /// The track with exactly this label, if any.
    #[must_use]
    pub fn by_label(&self, label: &Cube) -> Option<&Track> {
        self.tracks.iter().find(|t| t.label() == *label)
    }

    /// The tracks on which a given process is activated.
    pub fn containing(&self, id: ProcessId) -> impl Iterator<Item = &Track> + '_ {
        self.tracks.iter().filter(move |t| t.contains(id))
    }
}

impl<'a> IntoIterator for &'a TrackSet {
    type Item = &'a Track;
    type IntoIter = std::slice::Iter<'a, Track>;

    fn into_iter(self) -> Self::IntoIter {
        self.tracks.iter()
    }
}

impl fmt::Display for TrackSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} alternative paths", self.len())
    }
}

/// Enumerates every alternative path of a conditional process graph.
///
/// The enumeration recursively assigns a value to every condition whose
/// disjunction process is activated under the current partial assignment;
/// conditions whose disjunction process lies on an inactive branch are never
/// assigned, exactly as at run time. True branches are explored before false
/// branches, so the order of the returned tracks is deterministic.
#[must_use]
pub fn enumerate_tracks(cpg: &Cpg) -> TrackSet {
    let mut tracks = Vec::new();
    let mut assignment = Assignment::new();
    explore(cpg, &mut assignment, &mut tracks);
    TrackSet { tracks }
}

fn explore(cpg: &Cpg, assignment: &mut Assignment, out: &mut Vec<Track>) {
    // A disjunction process is pending when it is active under the current
    // partial assignment but its condition has not been assigned yet.
    let pending = cpg.conditions().find(|&cond| {
        assignment.value(cond).is_none() && {
            let disjunction = cpg.disjunction_of(cond);
            cpg.guard(disjunction)
                .cubes()
                .iter()
                .any(|cube| cube.satisfied_by(assignment))
        }
    });

    match pending {
        Some(cond) => {
            assignment.assign(cond, true);
            explore(cpg, assignment, out);
            assignment.assign(cond, false);
            explore(cpg, assignment, out);
            assignment.unassign(cond);
        }
        None => {
            let label = assignment.to_cube();
            let mut membership = vec![false; cpg.len()];
            let mut processes = Vec::new();
            for id in cpg.process_ids() {
                if cpg.guard(id).implied_by(&label) {
                    membership[id.index()] = true;
                    processes.push(id);
                }
            }
            out.push(Track {
                label,
                processes,
                membership,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CpgBuilder;
    use cpg_arch::{Architecture, Time};

    fn arch() -> Architecture {
        Architecture::builder()
            .processor("pe1")
            .processor("pe2")
            .bus("bus")
            .build()
            .unwrap()
    }

    /// root -(C)-> a ; root -(!C)-> b ; a,b -> join (conjunction).
    fn diamond() -> (Cpg, CondId, [ProcessId; 4]) {
        let arch = arch();
        let pe1 = arch.pe_by_name("pe1").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let root = b.process("root", Time::new(1), pe1);
        let a = b.process("a", Time::new(2), pe1);
        let bb = b.process("b", Time::new(2), pe1);
        let join = b.process("join", Time::new(1), pe1);
        b.conditional_edge(root, a, c.is_true(), Time::ZERO);
        b.conditional_edge(root, bb, c.is_false(), Time::ZERO);
        b.simple_edge(a, join, Time::ZERO);
        b.simple_edge(bb, join, Time::ZERO);
        b.mark_conjunction(join);
        (b.build(&arch).unwrap(), c, [root, a, bb, join])
    }

    #[test]
    fn unconditional_graph_has_a_single_track() {
        let arch = arch();
        let pe1 = arch.pe_by_name("pe1").unwrap();
        let mut b = CpgBuilder::new();
        let a = b.process("A", Time::new(1), pe1);
        let z = b.process("Z", Time::new(1), pe1);
        b.simple_edge(a, z, Time::ZERO);
        let cpg = b.build(&arch).unwrap();
        let tracks = enumerate_tracks(&cpg);
        assert_eq!(tracks.len(), 1);
        let track = &tracks.tracks()[0];
        assert!(track.label().is_top());
        assert_eq!(track.len(), cpg.len());
    }

    #[test]
    fn diamond_has_two_mutually_exclusive_tracks() {
        let (cpg, c, [root, a, bb, join]) = diamond();
        let tracks = enumerate_tracks(&cpg);
        assert_eq!(tracks.len(), 2);
        let t_true = tracks.by_label(&Cube::from(c.is_true())).unwrap();
        let t_false = tracks.by_label(&Cube::from(c.is_false())).unwrap();
        assert!(t_true.contains(a) && !t_true.contains(bb));
        assert!(t_false.contains(bb) && !t_false.contains(a));
        for t in [t_true, t_false] {
            assert!(t.contains(root));
            assert!(t.contains(join));
            assert!(t.contains(cpg.source()));
            assert!(t.contains(cpg.sink()));
        }
        assert!(t_true.label().excludes(&t_false.label()));
    }

    #[test]
    fn containing_and_determined_conditions() {
        let (cpg, c, [_, a, _, join]) = diamond();
        let tracks = enumerate_tracks(&cpg);
        assert_eq!(tracks.containing(a).count(), 1);
        assert_eq!(tracks.containing(join).count(), 2);
        for t in tracks.iter() {
            assert_eq!(t.determined_conditions().collect::<Vec<_>>(), vec![c]);
        }
        assert_eq!(tracks.to_string(), "2 alternative paths");
    }

    #[test]
    fn active_predecessors_ignore_inactive_branches() {
        let (cpg, c, [_, a, bb, join]) = diamond();
        let tracks = enumerate_tracks(&cpg);
        let t_true = tracks.by_label(&Cube::from(c.is_true())).unwrap();
        let preds: Vec<_> = t_true.active_predecessors(&cpg, join).collect();
        assert_eq!(preds, vec![a]);
        assert!(!preds.contains(&bb));
    }

    #[test]
    fn active_successors_respect_edge_conditions() {
        let (cpg, c, [root, a, bb, _]) = diamond();
        let tracks = enumerate_tracks(&cpg);
        let t_true = tracks.by_label(&Cube::from(c.is_true())).unwrap();
        let succs: Vec<_> = t_true.active_successors(&cpg, root).collect();
        assert_eq!(succs, vec![a]);
        let t_false = tracks.by_label(&Cube::from(c.is_false())).unwrap();
        let succs: Vec<_> = t_false.active_successors(&cpg, root).collect();
        assert_eq!(succs, vec![bb]);
    }

    #[test]
    fn nested_conditions_yield_three_tracks() {
        // root -(C)-> mid; mid -(D)-> x, mid -(!D)-> y; root -(!C)-> z
        let arch = arch();
        let pe1 = arch.pe_by_name("pe1").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let d = b.condition("D");
        let root = b.process("root", Time::new(1), pe1);
        let mid = b.process("mid", Time::new(1), pe1);
        let x = b.process("x", Time::new(1), pe1);
        let y = b.process("y", Time::new(1), pe1);
        let z = b.process("z", Time::new(1), pe1);
        b.conditional_edge(root, mid, c.is_true(), Time::ZERO);
        b.conditional_edge(root, z, c.is_false(), Time::ZERO);
        b.conditional_edge(mid, x, d.is_true(), Time::ZERO);
        b.conditional_edge(mid, y, d.is_false(), Time::ZERO);
        let cpg = b.build(&arch).unwrap();
        let tracks = enumerate_tracks(&cpg);
        assert_eq!(tracks.len(), 3);
        // D is only determined when C is true.
        let not_c = tracks.by_label(&Cube::from(c.is_false())).unwrap();
        assert_eq!(not_c.determined_conditions().count(), 1);
        let c_and_d: Cube = [c.is_true(), d.is_true()].into_iter().collect();
        assert!(tracks.by_label(&c_and_d).is_some());
    }

    #[test]
    fn track_labels_are_pairwise_exclusive_and_processes_sorted() {
        let (cpg, _, _) = diamond();
        let tracks = enumerate_tracks(&cpg);
        for (i, a) in tracks.iter().enumerate() {
            for b in tracks.tracks().iter().skip(i + 1) {
                assert!(a.label().excludes(&b.label()));
            }
            let mut sorted = a.processes().to_vec();
            sorted.sort();
            assert_eq!(sorted, a.processes());
            assert!(!a.is_empty());
        }
        assert!(!tracks.is_empty());
        assert_eq!((&tracks).into_iter().count(), tracks.len());
    }
}
