//! Condition algebra: literals, cubes (conjunctions of literals), guards
//! (disjunctions of cubes) and complete assignments.
//!
//! Conditions are the boolean values computed by *disjunction processes*.
//! Column headers of the schedule table, guards of processes and labels of
//! alternative paths are all conjunctions of condition values — **cubes** —
//! and the hot operations of the table generator are conjunction, implication
//! and mutual-exclusion tests between cubes. Cubes are therefore stored as a
//! pair of bitsets which makes all three operations O(1).

use std::fmt;

/// Maximum number of distinct conditions supported by a [`Cube`].
pub const MAX_CONDITIONS: usize = 64;

/// Identifier of a boolean condition computed by a disjunction process.
///
/// # Example
///
/// ```
/// use cpg::CondId;
/// let c = CondId::new(0);
/// assert_eq!(c.index(), 0);
/// assert_eq!(c.is_true().to_string(), "c0");
/// assert_eq!(c.is_false().to_string(), "!c0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondId(u8);

impl CondId {
    /// Creates a condition identifier from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_CONDITIONS`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_CONDITIONS,
            "condition index {index} exceeds the supported maximum of {MAX_CONDITIONS}"
        );
        CondId(index as u8)
    }

    /// The index of this condition.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this condition.
    #[must_use]
    pub const fn is_true(self) -> Literal {
        Literal {
            cond: self,
            value: true,
        }
    }

    /// The negative literal of this condition.
    #[must_use]
    pub const fn is_false(self) -> Literal {
        Literal {
            cond: self,
            value: false,
        }
    }

    /// The literal of this condition with the given polarity.
    #[must_use]
    pub const fn literal(self, value: bool) -> Literal {
        Literal { cond: self, value }
    }
}

impl fmt::Display for CondId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A condition with a polarity: `C` or `¬C`.
///
/// # Example
///
/// ```
/// use cpg::{CondId, Cube};
/// let c = CondId::new(2);
/// let lit = c.is_false();
/// assert_eq!(lit.cond(), c);
/// assert!(!lit.value());
/// assert_eq!(lit.negated(), c.is_true());
/// let cube = Cube::from(lit);
/// assert!(cube.contains(lit));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    cond: CondId,
    value: bool,
}

impl Literal {
    /// The condition this literal refers to.
    #[must_use]
    pub const fn cond(self) -> CondId {
        self.cond
    }

    /// The polarity of this literal (`true` for the positive literal).
    #[must_use]
    pub const fn value(self) -> bool {
        self.value
    }

    /// The literal of the same condition with the opposite polarity.
    #[must_use]
    pub const fn negated(self) -> Literal {
        Literal {
            cond: self.cond,
            value: !self.value,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.value {
            write!(f, "{}", self.cond)
        } else {
            write!(f, "!{}", self.cond)
        }
    }
}

/// A conjunction of condition literals ("cube"), e.g. `D ∧ C ∧ ¬K`.
///
/// The empty conjunction is the constant `true` and is produced by
/// [`Cube::top`] / [`Cube::default`]. A cube never contains both polarities of
/// the same condition — conjoining complementary literals yields `None`.
///
/// # Example
///
/// ```
/// use cpg::{CondId, Cube};
///
/// let c = CondId::new(0);
/// let d = CondId::new(1);
///
/// let dc = Cube::top().and(d.is_true()).unwrap().and(c.is_true()).unwrap();
/// let d_only = Cube::from(d.is_true());
///
/// assert!(dc.implies(&d_only));          // D∧C ⇒ D
/// assert!(!d_only.implies(&dc));
/// assert!(dc.and(c.is_false()).is_none()); // D∧C∧¬C = false
/// let d_notc = d_only.and(c.is_false()).unwrap();
/// assert!(dc.excludes(&d_notc));          // (D∧C) ∧ (D∧¬C) = false
/// ```
/// Cubes are [`Ord`]: an arbitrary but deterministic total order (by the
/// positive then the negative bitset) that lets hot loops keep cube
/// collections sorted and membership-test them by binary search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cube {
    positive: u64,
    negative: u64,
}

impl Cube {
    /// The constant `true`: the empty conjunction.
    #[must_use]
    pub const fn top() -> Self {
        Cube {
            positive: 0,
            negative: 0,
        }
    }

    /// `true` when this cube is the constant `true`.
    #[must_use]
    pub const fn is_top(&self) -> bool {
        self.positive == 0 && self.negative == 0
    }

    /// Number of literals in the conjunction.
    #[must_use]
    pub const fn len(&self) -> usize {
        (self.positive.count_ones() + self.negative.count_ones()) as usize
    }

    /// `true` when the conjunction is empty (the constant `true`).
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.is_top()
    }

    /// `true` when the cube constrains `cond` (with either polarity).
    #[must_use]
    pub fn mentions(&self, cond: CondId) -> bool {
        (self.positive | self.negative) & (1u64 << cond.index()) != 0
    }

    /// The bitset of conditions required to be true (bit `i` set ⇔ the cube
    /// contains the positive literal of condition `i`).
    ///
    /// The raw masks are the currency of the schedule table's
    /// condition-partition index: compatibility, implication and
    /// mention-disjointness over whole *groups* of cubes reduce to bitwise
    /// tests on unions of these masks.
    #[must_use]
    pub const fn positive_mask(&self) -> u64 {
        self.positive
    }

    /// The bitset of conditions required to be false.
    #[must_use]
    pub const fn negative_mask(&self) -> u64 {
        self.negative
    }

    /// The bitset of conditions mentioned with either polarity — the cube's
    /// *mention mask*. Two cubes with disjoint mention masks are always
    /// compatible (they constrain disjoint conditions).
    #[must_use]
    pub const fn mention_mask(&self) -> u64 {
        self.positive | self.negative
    }

    /// `true` when the cube contains exactly this literal.
    #[must_use]
    pub fn contains(&self, literal: Literal) -> bool {
        let bit = 1u64 << literal.cond().index();
        if literal.value() {
            self.positive & bit != 0
        } else {
            self.negative & bit != 0
        }
    }

    /// The polarity this cube requires for `cond`, if any.
    #[must_use]
    pub fn polarity_of(&self, cond: CondId) -> Option<bool> {
        let bit = 1u64 << cond.index();
        if self.positive & bit != 0 {
            Some(true)
        } else if self.negative & bit != 0 {
            Some(false)
        } else {
            None
        }
    }

    /// Conjoins a literal, returning `None` when the result is unsatisfiable
    /// (the cube already contains the complementary literal).
    #[must_use]
    pub fn and(&self, literal: Literal) -> Option<Cube> {
        let bit = 1u64 << literal.cond().index();
        let mut next = *self;
        if literal.value() {
            if self.negative & bit != 0 {
                return None;
            }
            next.positive |= bit;
        } else {
            if self.positive & bit != 0 {
                return None;
            }
            next.negative |= bit;
        }
        Some(next)
    }

    /// Conjoins two cubes, returning `None` when they are contradictory.
    #[must_use]
    pub fn and_cube(&self, other: &Cube) -> Option<Cube> {
        if self.positive & other.negative != 0 || self.negative & other.positive != 0 {
            return None;
        }
        Some(Cube {
            positive: self.positive | other.positive,
            negative: self.negative | other.negative,
        })
    }

    /// Logical implication: `self ⇒ other` holds when every literal of `other`
    /// appears in `self`.
    #[must_use]
    pub const fn implies(&self, other: &Cube) -> bool {
        self.positive & other.positive == other.positive
            && self.negative & other.negative == other.negative
    }

    /// Mutual exclusion: `self ∧ other = false` (the cubes disagree on the
    /// polarity of at least one condition).
    #[must_use]
    pub const fn excludes(&self, other: &Cube) -> bool {
        self.positive & other.negative != 0 || self.negative & other.positive != 0
    }

    /// `true` when the cubes can be simultaneously satisfied.
    #[must_use]
    pub const fn compatible(&self, other: &Cube) -> bool {
        !self.excludes(other)
    }

    /// Removes any literal over `cond`, leaving the other literals intact.
    #[must_use]
    pub fn without(&self, cond: CondId) -> Cube {
        let bit = 1u64 << cond.index();
        Cube {
            positive: self.positive & !bit,
            negative: self.negative & !bit,
        }
    }

    /// Keeps only the literals whose condition satisfies the predicate.
    #[must_use]
    pub fn retain(&self, mut keep: impl FnMut(CondId) -> bool) -> Cube {
        let mut out = Cube::top();
        for lit in self.literals() {
            if keep(lit.cond()) {
                out = out
                    .and(lit)
                    .expect("subset of a consistent cube is consistent");
            }
        }
        out
    }

    /// Iterates over the literals of the conjunction in condition order.
    ///
    /// Walks the set bits of the combined mask with `trailing_zeros`, so a
    /// sparse cube visits only its own literals rather than all
    /// [`MAX_CONDITIONS`] bit positions.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        let positive = self.positive;
        let mut remaining = self.positive | self.negative;
        std::iter::from_fn(move || {
            if remaining == 0 {
                return None;
            }
            let i = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let cond = CondId::new(i);
            Some(if positive & (1u64 << i) != 0 {
                cond.is_true()
            } else {
                cond.is_false()
            })
        })
    }

    /// Iterates over the conditions mentioned by the conjunction.
    pub fn conditions(&self) -> impl Iterator<Item = CondId> + '_ {
        self.literals().map(Literal::cond)
    }

    /// `true` when a complete assignment satisfies this conjunction: every
    /// positive literal sits in the assignment's true set and every negative
    /// literal in its false set. Two mask subtractions — no literal walk.
    #[must_use]
    pub const fn satisfied_by(&self, assignment: &Assignment) -> bool {
        self.positive & !assignment.true_mask() == 0
            && self.negative & !assignment.false_mask() == 0
    }

    /// `true` when a (possibly partial) assignment is consistent with this
    /// conjunction, i.e. assigns no condition the opposite polarity.
    #[must_use]
    pub const fn consistent_with(&self, assignment: &Assignment) -> bool {
        self.positive & assignment.false_mask() == 0 && self.negative & assignment.true_mask() == 0
    }

    /// Renders the cube with the given condition names, using `true` for the
    /// empty conjunction — the notation of the paper's schedule tables.
    #[must_use]
    pub fn display_with(&self, names: &dyn Fn(CondId) -> String) -> String {
        if self.is_top() {
            return "true".to_owned();
        }
        self.literals()
            .map(|lit| {
                if lit.value() {
                    names(lit.cond())
                } else {
                    format!("!{}", names(lit.cond()))
                }
            })
            .collect::<Vec<_>>()
            .join("&")
    }
}

impl From<Literal> for Cube {
    fn from(literal: Literal) -> Self {
        Cube::top()
            .and(literal)
            .expect("a single literal is always consistent")
    }
}

impl FromIterator<Literal> for Cube {
    /// Collects literals into a cube.
    ///
    /// # Panics
    ///
    /// Panics if the literals are contradictory; use [`Cube::and`] for a
    /// fallible construction.
    fn from_iter<T: IntoIterator<Item = Literal>>(iter: T) -> Self {
        let mut cube = Cube::top();
        for lit in iter {
            cube = cube
                .and(lit)
                .expect("collected literals must not be contradictory");
        }
        cube
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            return f.write_str("true");
        }
        let mut first = true;
        for lit in self.literals() {
            if !first {
                f.write_str("&")?;
            }
            write!(f, "{lit}")?;
            first = false;
        }
        Ok(())
    }
}

/// A guard: the necessary condition for a process to be activated.
///
/// Guards are disjunctions of [`Cube`]s. For well-formed conditional process
/// graphs the guard of every process simplifies to a single cube (this is the
/// form the paper uses, e.g. `X_P14 = D ∧ K`); the disjunctive representation
/// is kept so that intermediate values during guard inference — in particular
/// at conjunction nodes, before complementary branches are merged — remain
/// representable.
///
/// # Example
///
/// ```
/// use cpg::{CondId, Cube, Guard};
///
/// let c = CondId::new(0);
/// let lhs = Cube::from(c.is_true());
/// let rhs = Cube::from(c.is_false());
/// // C ∨ ¬C simplifies to true.
/// let guard = Guard::from_cubes([lhs, rhs]);
/// assert!(guard.is_true());
/// assert_eq!(guard.as_cube(), Some(Cube::top()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Guard {
    cubes: Vec<Cube>,
}

impl Guard {
    /// The guard that is always satisfied.
    #[must_use]
    pub fn always() -> Self {
        Guard {
            cubes: vec![Cube::top()],
        }
    }

    /// The guard that can never be satisfied (empty disjunction).
    #[must_use]
    pub fn never() -> Self {
        Guard { cubes: Vec::new() }
    }

    /// Builds a guard from a single cube.
    #[must_use]
    pub fn from_cube(cube: Cube) -> Self {
        Guard { cubes: vec![cube] }
    }

    /// Builds a guard from a disjunction of cubes, normalizing the result.
    #[must_use]
    pub fn from_cubes(cubes: impl IntoIterator<Item = Cube>) -> Self {
        let mut guard = Guard {
            cubes: cubes.into_iter().collect(),
        };
        guard.normalize();
        guard
    }

    /// `true` when the guard is the constant `true`.
    #[must_use]
    pub fn is_true(&self) -> bool {
        self.cubes.iter().any(Cube::is_top)
    }

    /// `true` when the guard can never be satisfied.
    #[must_use]
    pub fn is_never(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The single cube equivalent to this guard, when it exists.
    #[must_use]
    pub fn as_cube(&self) -> Option<Cube> {
        match self.cubes.as_slice() {
            [single] => Some(*single),
            _ => None,
        }
    }

    /// The cubes of the disjunction.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// `true` when a complete assignment satisfies the guard.
    #[must_use]
    pub fn satisfied_by(&self, assignment: &Assignment) -> bool {
        self.cubes.iter().any(|cube| cube.satisfied_by(assignment))
    }

    /// `true` when `cube ⇒ self`, i.e. the guard is satisfied whenever the
    /// cube is.
    #[must_use]
    pub fn implied_by(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|own| cube.implies(own))
    }

    /// Logical implication between guards: `self ⇒ other`.
    ///
    /// The check is exact: when simple cube-wise subsumption is inconclusive
    /// (a cube of `self` can be covered by *several* cubes of `other`
    /// together), the conditions involved are enumerated. Guards of
    /// conditional process graphs mention only the handful of conditions on
    /// the paths to a process, so the enumeration stays tiny.
    #[must_use]
    pub fn implies(&self, other: &Guard) -> bool {
        self.cubes.iter().all(|cube| {
            if other.implied_by(cube) {
                return true;
            }
            // Exact check: `cube ∧ ¬other` must be unsatisfiable. Enumerate
            // the conditions mentioned by either side that are not already
            // fixed by `cube`.
            let mut free: Vec<CondId> = other
                .conditions()
                .into_iter()
                .filter(|&c| !cube.mentions(c))
                .collect();
            free.sort_unstable();
            free.dedup();
            if free.len() > 20 {
                // Guards this wide do not occur in practice; stay sound by
                // reporting "not implied" rather than enumerating 2^20+
                // assignments.
                return false;
            }
            all_assignments(&free).iter().all(|assignment| {
                let mut full = assignment.clone();
                for lit in cube.literals() {
                    full.assign(lit.cond(), lit.value());
                }
                other.satisfied_by(&full)
            })
        })
    }

    /// Conjoins the guard with a cube.
    #[must_use]
    pub fn and_cube(&self, cube: &Cube) -> Guard {
        Guard::from_cubes(self.cubes.iter().filter_map(|own| own.and_cube(cube)))
    }

    /// Disjoins two guards.
    #[must_use]
    pub fn or(&self, other: &Guard) -> Guard {
        Guard::from_cubes(self.cubes.iter().chain(other.cubes.iter()).copied())
    }

    /// The conditions mentioned anywhere in the guard.
    #[must_use]
    pub fn conditions(&self) -> Vec<CondId> {
        let mut conds: Vec<CondId> = self
            .cubes
            .iter()
            .flat_map(|cube| cube.conditions())
            .collect();
        conds.sort_unstable();
        conds.dedup();
        conds
    }

    /// Normalization: absorb subsumed cubes and merge cube pairs that differ
    /// only in the polarity of a single condition (`q∧C ∨ q∧¬C = q`).
    fn normalize(&mut self) {
        loop {
            // Absorption: drop any cube implied by (more specific than) another.
            let mut kept: Vec<Cube> = Vec::with_capacity(self.cubes.len());
            for cube in &self.cubes {
                if kept.iter().any(|k| cube.implies(k)) {
                    continue;
                }
                kept.retain(|k| !k.implies(cube));
                kept.push(*cube);
            }
            self.cubes = kept;

            // Merging: q∧C ∨ q∧¬C  →  q.
            let mut merged = false;
            'outer: for i in 0..self.cubes.len() {
                for j in (i + 1)..self.cubes.len() {
                    if let Some(joined) = merge_complementary(&self.cubes[i], &self.cubes[j]) {
                        self.cubes[i] = joined;
                        self.cubes.swap_remove(j);
                        merged = true;
                        break 'outer;
                    }
                }
            }
            if !merged {
                break;
            }
        }
        self.cubes
            .sort_by_key(|cube| (cube.len(), cube.positive, cube.negative));
    }
}

impl From<Cube> for Guard {
    fn from(cube: Cube) -> Self {
        Guard::from_cube(cube)
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            return f.write_str("false");
        }
        if self.is_true() {
            return f.write_str("true");
        }
        let mut first = true;
        for cube in &self.cubes {
            if !first {
                f.write_str(" | ")?;
            }
            write!(f, "{cube}")?;
            first = false;
        }
        Ok(())
    }
}

/// Returns the merge of two cubes that differ only in the polarity of exactly
/// one condition, or `None` when they do not.
fn merge_complementary(a: &Cube, b: &Cube) -> Option<Cube> {
    // They must mention exactly the same conditions.
    if (a.positive | a.negative) != (b.positive | b.negative) {
        return None;
    }
    let diff = a.positive ^ b.positive;
    if diff.count_ones() != 1 {
        return None;
    }
    let idx = diff.trailing_zeros() as usize;
    Some(a.without(CondId::new(idx)))
}

/// A (possibly partial) assignment of truth values to conditions.
///
/// Complete assignments select one alternative path through a conditional
/// process graph; partial assignments describe intermediate states of the
/// decision tree explored during schedule merging.
///
/// # Example
///
/// ```
/// use cpg::{Assignment, CondId, Cube};
///
/// let c = CondId::new(0);
/// let d = CondId::new(1);
/// let mut asg = Assignment::new();
/// asg.assign(c, true);
/// assert_eq!(asg.value(c), Some(true));
/// assert_eq!(asg.value(d), None);
/// assert!(Cube::from(c.is_true()).consistent_with(&asg));
/// assert_eq!(asg.to_cube(), Cube::from(c.is_true()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Assignment {
    assigned: u64,
    values: u64,
}

impl Assignment {
    /// Creates an empty assignment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the assignment containing exactly the literals of a cube.
    #[must_use]
    pub fn from_cube(cube: &Cube) -> Self {
        let mut asg = Assignment::new();
        for lit in cube.literals() {
            asg.assign(lit.cond(), lit.value());
        }
        asg
    }

    /// Assigns a value to a condition (overwriting any previous value).
    pub fn assign(&mut self, cond: CondId, value: bool) {
        let bit = 1u64 << cond.index();
        self.assigned |= bit;
        if value {
            self.values |= bit;
        } else {
            self.values &= !bit;
        }
    }

    /// Removes a condition from the assignment.
    pub fn unassign(&mut self, cond: CondId) {
        let bit = 1u64 << cond.index();
        self.assigned &= !bit;
        self.values &= !bit;
    }

    /// The value assigned to a condition, or `None` if it is unassigned.
    #[must_use]
    pub fn value(&self, cond: CondId) -> Option<bool> {
        let bit = 1u64 << cond.index();
        if self.assigned & bit == 0 {
            None
        } else {
            Some(self.values & bit != 0)
        }
    }

    /// Number of assigned conditions.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.assigned.count_ones() as usize
    }

    /// `true` when no condition is assigned.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.assigned == 0
    }

    /// The assignment as a cube (conjunction of all assigned literals).
    #[must_use]
    pub fn to_cube(&self) -> Cube {
        Cube {
            positive: self.values,
            negative: self.assigned & !self.values,
        }
    }

    /// The bitset of assigned conditions (bit `i` set ⇔ condition `i` has a
    /// value). Counterpart of [`Cube::mention_mask`] for group-level
    /// satisfiability pruning: a cube can only be satisfied when its mention
    /// mask is a subset of this.
    #[must_use]
    pub const fn assigned_mask(&self) -> u64 {
        self.assigned
    }

    /// The bitset of conditions assigned `true`.
    #[must_use]
    pub const fn true_mask(&self) -> u64 {
        self.assigned & self.values
    }

    /// The bitset of conditions assigned `false`.
    #[must_use]
    pub const fn false_mask(&self) -> u64 {
        self.assigned & !self.values
    }

    /// Iterates over the assigned literals in condition order, walking only
    /// the set bits of the assigned mask.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        let values = self.values;
        let mut remaining = self.assigned;
        std::iter::from_fn(move || {
            if remaining == 0 {
                return None;
            }
            let i = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let cond = CondId::new(i);
            Some(cond.literal(values & (1u64 << i) != 0))
        })
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_cube())
    }
}

/// Enumerates every complete assignment over the given conditions.
///
/// Used by the table-correctness checks (requirement 3 of the paper) to verify
/// that the columns holding activation times of a process cover exactly its
/// guard.
///
/// # Panics
///
/// Panics if more than 20 conditions are supplied (the enumeration would be
/// larger than 2^20).
#[must_use]
pub fn all_assignments(conditions: &[CondId]) -> Vec<Assignment> {
    assert!(
        conditions.len() <= 20,
        "refusing to enumerate more than 2^20 assignments"
    );
    let n = conditions.len();
    let mut out = Vec::with_capacity(1 << n);
    for bits in 0u32..(1u32 << n) {
        let mut asg = Assignment::new();
        for (i, cond) in conditions.iter().enumerate() {
            asg.assign(*cond, bits & (1 << i) != 0);
        }
        out.push(asg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CondId {
        CondId::new(i)
    }

    #[test]
    fn literal_negation_and_accessors() {
        let lit = c(3).is_true();
        assert_eq!(lit.cond(), c(3));
        assert!(lit.value());
        assert_eq!(lit.negated(), c(3).is_false());
        assert_eq!(lit.negated().negated(), lit);
    }

    #[test]
    fn top_cube_is_true_and_empty() {
        let top = Cube::top();
        assert!(top.is_top());
        assert!(top.is_empty());
        assert_eq!(top.len(), 0);
        assert_eq!(top.to_string(), "true");
        assert_eq!(top, Cube::default());
    }

    #[test]
    fn and_rejects_contradictions() {
        let cube = Cube::from(c(0).is_true());
        assert!(cube.and(c(0).is_false()).is_none());
        assert!(cube.and(c(0).is_true()).is_some());
        assert_eq!(cube.and(c(1).is_false()).unwrap().len(), 2);
    }

    #[test]
    fn and_cube_merges_or_detects_conflict() {
        let dc: Cube = [c(1).is_true(), c(0).is_true()].into_iter().collect();
        let k_not: Cube = Cube::from(c(2).is_false());
        let merged = dc.and_cube(&k_not).unwrap();
        assert_eq!(merged.len(), 3);
        assert!(merged.contains(c(2).is_false()));
        let conflicting = Cube::from(c(0).is_false());
        assert!(dc.and_cube(&conflicting).is_none());
    }

    #[test]
    fn implication_is_literal_subset() {
        let dck: Cube = [c(1).is_true(), c(0).is_true(), c(2).is_false()]
            .into_iter()
            .collect();
        let dc: Cube = [c(1).is_true(), c(0).is_true()].into_iter().collect();
        assert!(dck.implies(&dc));
        assert!(!dc.implies(&dck));
        assert!(dck.implies(&Cube::top()));
        assert!(Cube::top().implies(&Cube::top()));
        assert!(!Cube::top().implies(&dc));
    }

    #[test]
    fn exclusion_requires_opposite_polarity() {
        let dc: Cube = [c(1).is_true(), c(0).is_true()].into_iter().collect();
        let d_notc: Cube = [c(1).is_true(), c(0).is_false()].into_iter().collect();
        let k: Cube = Cube::from(c(2).is_true());
        assert!(dc.excludes(&d_notc));
        assert!(!dc.excludes(&k));
        assert!(dc.compatible(&k));
        assert!(!Cube::top().excludes(&dc));
    }

    #[test]
    fn polarity_and_mentions_queries() {
        let cube: Cube = [c(1).is_true(), c(2).is_false()].into_iter().collect();
        assert_eq!(cube.polarity_of(c(1)), Some(true));
        assert_eq!(cube.polarity_of(c(2)), Some(false));
        assert_eq!(cube.polarity_of(c(0)), None);
        assert!(cube.mentions(c(1)));
        assert!(!cube.mentions(c(0)));
    }

    #[test]
    fn without_and_retain_drop_literals() {
        let cube: Cube = [c(0).is_true(), c(1).is_false(), c(2).is_true()]
            .into_iter()
            .collect();
        assert_eq!(cube.without(c(1)).len(), 2);
        assert!(!cube.without(c(1)).mentions(c(1)));
        let kept = cube.retain(|cond| cond.index() != 2);
        assert_eq!(kept.len(), 2);
        assert!(!kept.mentions(c(2)));
    }

    #[test]
    fn literals_iterate_in_condition_order() {
        let cube: Cube = [c(5).is_false(), c(1).is_true()].into_iter().collect();
        let lits: Vec<_> = cube.literals().collect();
        assert_eq!(lits, vec![c(1).is_true(), c(5).is_false()]);
        assert_eq!(cube.conditions().collect::<Vec<_>>(), vec![c(1), c(5)]);
    }

    #[test]
    fn display_uses_paper_like_notation() {
        let cube: Cube = [c(0).is_true(), c(2).is_false()].into_iter().collect();
        assert_eq!(cube.to_string(), "c0&!c2");
        let named = cube.display_with(&|cond| ["C", "D", "K"][cond.index()].to_owned());
        assert_eq!(named, "C&!K");
        assert_eq!(Cube::top().display_with(&|_| unreachable!()), "true");
    }

    #[test]
    fn assignment_round_trip_with_cube() {
        let cube: Cube = [c(0).is_true(), c(3).is_false()].into_iter().collect();
        let asg = Assignment::from_cube(&cube);
        assert_eq!(asg.to_cube(), cube);
        assert!(cube.satisfied_by(&asg));
        assert_eq!(asg.len(), 2);
        assert!(!asg.is_empty());
    }

    #[test]
    fn assignment_assign_unassign() {
        let mut asg = Assignment::new();
        assert!(asg.is_empty());
        asg.assign(c(4), true);
        asg.assign(c(4), false);
        assert_eq!(asg.value(c(4)), Some(false));
        asg.unassign(c(4));
        assert_eq!(asg.value(c(4)), None);
        assert!(asg.is_empty());
    }

    #[test]
    fn consistency_with_partial_assignment() {
        let cube: Cube = [c(0).is_true(), c(1).is_false()].into_iter().collect();
        let mut partial = Assignment::new();
        partial.assign(c(0), true);
        assert!(cube.consistent_with(&partial));
        assert!(!cube.satisfied_by(&partial));
        partial.assign(c(1), true);
        assert!(!cube.consistent_with(&partial));
    }

    #[test]
    fn guard_normalization_absorbs_and_merges() {
        let dc: Cube = [c(1).is_true(), c(0).is_true()].into_iter().collect();
        let d_notc: Cube = [c(1).is_true(), c(0).is_false()].into_iter().collect();
        let guard = Guard::from_cubes([dc, d_notc]);
        assert_eq!(guard.as_cube(), Some(Cube::from(c(1).is_true())));

        let d = Cube::from(c(1).is_true());
        let absorbed = Guard::from_cubes([d, dc]);
        assert_eq!(absorbed.as_cube(), Some(d));
    }

    #[test]
    fn guard_full_split_simplifies_to_true() {
        let pos = Cube::from(c(0).is_true());
        let neg = Cube::from(c(0).is_false());
        let guard = Guard::from_cubes([pos, neg]);
        assert!(guard.is_true());
    }

    #[test]
    fn guard_implication_and_conjunction() {
        let d = Guard::from_cube(Cube::from(c(1).is_true()));
        let dc = d.and_cube(&Cube::from(c(0).is_true()));
        assert!(dc.implies(&d));
        assert!(!d.implies(&dc));
        assert!(Guard::never().implies(&d));
        assert!(d.implies(&Guard::always()));
        assert!(!Guard::always().implies(&Guard::never()));
    }

    #[test]
    fn guard_or_and_conditions() {
        let a = Guard::from_cube(Cube::from(c(0).is_true()));
        let b = Guard::from_cube(Cube::from(c(2).is_false()));
        let joined = a.or(&b);
        assert_eq!(joined.cubes().len(), 2);
        assert_eq!(joined.conditions(), vec![c(0), c(2)]);
        assert_eq!(a.or(&Guard::never()), a);
    }

    #[test]
    fn guard_display() {
        assert_eq!(Guard::always().to_string(), "true");
        assert_eq!(Guard::never().to_string(), "false");
        let g = Guard::from_cubes([
            Cube::from(c(0).is_true()),
            [c(1).is_true(), c(2).is_true()].into_iter().collect(),
        ]);
        assert_eq!(g.to_string(), "c0 | c1&c2");
    }

    #[test]
    fn all_assignments_enumerates_the_full_space() {
        let conds = [c(0), c(2)];
        let assignments = all_assignments(&conds);
        assert_eq!(assignments.len(), 4);
        let distinct: std::collections::HashSet<_> =
            assignments.iter().map(|a| a.to_cube()).collect();
        assert_eq!(distinct.len(), 4);
        for asg in &assignments {
            assert_eq!(asg.len(), 2);
            assert_eq!(asg.value(c(1)), None);
        }
    }

    #[test]
    #[should_panic(expected = "condition index")]
    fn cond_id_rejects_out_of_range_indices() {
        let _ = CondId::new(MAX_CONDITIONS);
    }

    #[test]
    fn guard_implied_by_cube() {
        let guard = Guard::from_cubes([
            [c(0).is_true(), c(1).is_true()]
                .into_iter()
                .collect::<Cube>(),
            [c(0).is_false(), c(2).is_true()]
                .into_iter()
                .collect::<Cube>(),
        ]);
        let track: Cube = [c(0).is_true(), c(1).is_true(), c(2).is_false()]
            .into_iter()
            .collect();
        assert!(guard.implied_by(&track));
        let other: Cube = [c(0).is_true(), c(1).is_false()].into_iter().collect();
        assert!(!guard.implied_by(&other));
    }
}
