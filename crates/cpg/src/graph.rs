//! The conditional process graph and its builder.

use std::collections::HashMap;
use std::fmt;

use cpg_arch::{Architecture, PeId, Time};

use crate::cond::{CondId, Cube, Guard, Literal};
use crate::error::BuildCpgError;
use crate::process::{Process, ProcessId, ProcessKind};

/// A directed edge of the conditional process graph.
///
/// Simple edges carry pure data-flow; conditional edges additionally carry a
/// [`Literal`] and transmit only when the associated condition value holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub(crate) from: ProcessId,
    pub(crate) to: ProcessId,
    pub(crate) condition: Option<Literal>,
    pub(crate) comm_time: Time,
    pub(crate) via: Option<PeId>,
}

impl Edge {
    /// The origin of the edge.
    #[must_use]
    pub const fn from(&self) -> ProcessId {
        self.from
    }

    /// The destination of the edge.
    #[must_use]
    pub const fn to(&self) -> ProcessId {
        self.to
    }

    /// The condition literal guarding the edge, if it is a conditional edge.
    #[must_use]
    pub const fn condition(&self) -> Option<Literal> {
        self.condition
    }

    /// `true` for conditional edges.
    #[must_use]
    pub const fn is_conditional(&self) -> bool {
        self.condition.is_some()
    }

    /// The communication time needed when the endpoints are mapped to
    /// different processing elements.
    #[must_use]
    pub const fn comm_time(&self) -> Time {
        self.comm_time
    }

    /// The preferred bus for the communication process inserted on this edge,
    /// if the designer specified one.
    #[must_use]
    pub const fn via(&self) -> Option<PeId> {
        self.via
    }
}

/// A conditional process graph (CPG): the abstract system representation
/// `Γ(V, E_S, E_C)` of the paper.
///
/// The graph is directed, acyclic and polar (a dummy source precedes and a
/// dummy sink follows every other process); nodes are processes mapped onto
/// an [`Architecture`]; edges are either simple (data-flow) or conditional
/// (control-flow, guarded by a condition computed by a disjunction process).
///
/// Build one with [`Cpg::builder`] / [`CpgBuilder`]; guards, disjunction and
/// conjunction classification and the topological order are computed during
/// [`CpgBuilder::build`].
///
/// # Example
///
/// ```
/// use cpg_arch::{Architecture, Time};
/// use cpg::{Cpg, CpgBuilder};
///
/// let arch = Architecture::builder()
///     .processor("pe1")
///     .processor("pe2")
///     .bus("bus")
///     .build()?;
/// let pe1 = arch.pe_by_name("pe1").unwrap();
/// let pe2 = arch.pe_by_name("pe2").unwrap();
///
/// let mut b = Cpg::builder();
/// let cond = b.condition("C");
/// let p1 = b.process("P1", Time::new(3), pe1);
/// let p2 = b.process("P2", Time::new(4), pe2);
/// let p3 = b.process("P3", Time::new(5), pe2);
/// b.conditional_edge(p1, p2, cond.is_true(), Time::new(2));
/// b.conditional_edge(p1, p3, cond.is_false(), Time::new(2));
/// let cpg = b.build(&arch)?;
///
/// assert_eq!(cpg.ordinary_processes().count(), 3);
/// assert!(cpg.process(p1).is_disjunction());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cpg {
    processes: Vec<Process>,
    edges: Vec<Edge>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    source: ProcessId,
    sink: ProcessId,
    condition_names: Vec<String>,
    disjunction_of: Vec<Option<ProcessId>>,
    topo: Vec<ProcessId>,
}

impl Cpg {
    /// Starts building a new conditional process graph.
    #[must_use]
    pub fn builder() -> CpgBuilder {
        CpgBuilder::new()
    }

    /// Total number of processes, including the dummy source and sink and any
    /// communication processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// `true` when the graph has no processes (never the case for a built
    /// graph; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// The process behind an identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.0]
    }

    /// The dummy source process.
    #[must_use]
    pub const fn source(&self) -> ProcessId {
        self.source
    }

    /// The dummy sink process.
    #[must_use]
    pub const fn sink(&self) -> ProcessId {
        self.sink
    }

    /// Iterates over all process identifiers in creation order.
    pub fn process_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.processes.len()).map(ProcessId)
    }

    /// Iterates over all processes with their identifiers.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &Process)> + '_ {
        self.processes
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcessId(i), p))
    }

    /// Iterates over the ordinary (designer-specified) processes.
    pub fn ordinary_processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.processes()
            .filter(|(_, p)| p.kind() == ProcessKind::Ordinary)
            .map(|(id, _)| id)
    }

    /// Iterates over the communication processes.
    pub fn communication_processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.processes()
            .filter(|(_, p)| p.kind() == ProcessKind::Communication)
            .map(|(id, _)| id)
    }

    /// Iterates over the processes that need to be scheduled on a resource
    /// (everything except the dummy source and sink).
    pub fn schedulable_processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.processes()
            .filter(|(_, p)| !p.kind().is_dummy())
            .map(|(id, _)| id)
    }

    /// Looks up a process by name.
    #[must_use]
    pub fn process_by_name(&self, name: &str) -> Option<ProcessId> {
        self.processes
            .iter()
            .position(|p| p.name() == name)
            .map(ProcessId)
    }

    /// All edges of the graph.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The outgoing edges of a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn out_edges(&self, id: ProcessId) -> impl Iterator<Item = &Edge> + '_ {
        self.succ[id.0].iter().map(move |&e| &self.edges[e])
    }

    /// The incoming edges of a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn in_edges(&self, id: ProcessId) -> impl Iterator<Item = &Edge> + '_ {
        self.pred[id.0].iter().map(move |&e| &self.edges[e])
    }

    /// The successor processes of a process.
    pub fn successors(&self, id: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        self.out_edges(id).map(Edge::to)
    }

    /// The predecessor processes of a process.
    pub fn predecessors(&self, id: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        self.in_edges(id).map(Edge::from)
    }

    /// A topological order of all processes (source first, sink last).
    #[must_use]
    pub fn topological_order(&self) -> &[ProcessId] {
        &self.topo
    }

    /// Number of conditions of the graph.
    #[must_use]
    pub fn num_conditions(&self) -> usize {
        self.condition_names.len()
    }

    /// Iterates over all condition identifiers.
    pub fn conditions(&self) -> impl Iterator<Item = CondId> + '_ {
        (0..self.condition_names.len()).map(CondId::new)
    }

    /// The designer-given name of a condition.
    ///
    /// # Panics
    ///
    /// Panics if `cond` does not belong to this graph.
    #[must_use]
    pub fn condition_name(&self, cond: CondId) -> &str {
        &self.condition_names[cond.index()]
    }

    /// The disjunction process that computes a condition.
    ///
    /// # Panics
    ///
    /// Panics if `cond` does not belong to this graph.
    #[must_use]
    pub fn disjunction_of(&self, cond: CondId) -> ProcessId {
        self.disjunction_of[cond.index()]
            .expect("every condition of a built graph has a disjunction process")
    }

    /// Renders a cube using the designer-given condition names (for reports
    /// mirroring the paper's `D∧C∧K` notation).
    #[must_use]
    pub fn display_cube(&self, cube: &Cube) -> String {
        cube.display_with(&|cond| self.condition_name(cond).to_owned())
    }

    /// The guard `X_Pi` of a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn guard(&self, id: ProcessId) -> &Guard {
        self.processes[id.0].guard()
    }

    /// The execution (or communication) time of a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn exec_time(&self, id: ProcessId) -> Time {
        self.processes[id.0].exec_time()
    }

    /// The processing element a process is mapped to (`None` for the dummy
    /// source and sink).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn mapping(&self, id: ProcessId) -> Option<PeId> {
        self.processes[id.0].mapping()
    }

    /// `true` when the graph contains communication processes (i.e. it has
    /// been produced by [`expand_communications`](crate::expand_communications)
    /// or built with explicit communication processes).
    #[must_use]
    pub fn is_expanded(&self) -> bool {
        self.communication_processes().next().is_some()
    }

    /// The sum of the execution times of all schedulable processes — an upper
    /// bound for any schedule makespan, useful as a scheduling horizon.
    #[must_use]
    pub fn total_execution_time(&self) -> Time {
        self.schedulable_processes()
            .map(|id| self.exec_time(id))
            .sum()
    }

    fn editable(&self, id: ProcessId) -> Result<(), crate::edit::EditError> {
        let Some(process) = self.processes.get(id.0) else {
            return Err(crate::edit::EditError::UnknownProcess(id));
        };
        if process.kind().is_dummy() {
            return Err(crate::edit::EditError::DummyProcess(id));
        }
        Ok(())
    }

    /// Changes the worst-case execution time of a process in place (the
    /// communication time for communication processes).
    ///
    /// # Errors
    ///
    /// Rejects unknown identifiers and the dummy source/sink.
    pub fn set_exec_time(
        &mut self,
        id: ProcessId,
        time: Time,
    ) -> Result<(), crate::edit::EditError> {
        self.editable(id)?;
        self.processes[id.0].exec_time = time;
        Ok(())
    }

    /// Moves a process to a different processing element in place.
    ///
    /// On an expanded graph the communication structure is kept as-is: the
    /// move re-targets the process itself, which is the designer-level "what
    /// if" question an interactive exploration asks before committing to a
    /// re-expansion.
    ///
    /// # Errors
    ///
    /// Rejects unknown identifiers, the dummy source/sink, and processes that
    /// are not currently mapped.
    pub fn set_mapping(&mut self, id: ProcessId, pe: PeId) -> Result<(), crate::edit::EditError> {
        self.editable(id)?;
        if self.processes[id.0].mapping.is_none() {
            return Err(crate::edit::EditError::UnmappedProcess(id));
        }
        self.processes[id.0].mapping = Some(pe);
        Ok(())
    }

    /// Replaces the guard `X_Pi` of a process in place.
    ///
    /// Guard edits are structural: callers holding cached per-track state
    /// must re-enumerate the alternative paths afterwards (see
    /// [`EditScope::Structural`](crate::EditScope)).
    ///
    /// # Errors
    ///
    /// Rejects unknown identifiers and the dummy source/sink.
    pub fn set_guard(&mut self, id: ProcessId, guard: Guard) -> Result<(), crate::edit::EditError> {
        self.editable(id)?;
        self.processes[id.0].guard = guard;
        Ok(())
    }
}

impl fmt::Display for Cpg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conditional process graph with {} processes, {} edges, {} conditions",
            self.len(),
            self.edges.len(),
            self.num_conditions()
        )
    }
}

/// Specification of a process as recorded by the builder.
#[derive(Debug, Clone)]
struct ProcessSpec {
    name: String,
    kind: ProcessKind,
    exec_time: Time,
    mapping: Option<PeId>,
    conjunction: bool,
}

/// Incremental builder for [`Cpg`].
///
/// The builder automatically adds the polar source and sink processes and
/// connects them to every process without predecessors / successors, computes
/// guards, and validates the structural rules of the paper (acyclicity, one
/// disjunction process per condition, both branch polarities present,
/// consistency of joins).
#[derive(Debug, Clone, Default)]
pub struct CpgBuilder {
    processes: Vec<ProcessSpec>,
    edges: Vec<Edge>,
    condition_names: Vec<String>,
}

impl CpgBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new condition and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CONDITIONS`](crate::MAX_CONDITIONS)
    /// conditions are declared.
    pub fn condition(&mut self, name: impl Into<String>) -> CondId {
        let id = CondId::new(self.condition_names.len());
        self.condition_names.push(name.into());
        id
    }

    /// Adds an ordinary process mapped to processing element `pe`.
    pub fn process(&mut self, name: impl Into<String>, exec_time: Time, pe: PeId) -> ProcessId {
        self.push_process(ProcessSpec {
            name: name.into(),
            kind: ProcessKind::Ordinary,
            exec_time,
            mapping: Some(pe),
            conjunction: false,
        })
    }

    /// Adds an explicit communication process mapped to bus `bus`.
    ///
    /// [`expand_communications`](crate::expand_communications) inserts these
    /// automatically; the method is public so that fully explicit graphs (like
    /// the paper's Fig. 1 with processes P18–P31) can also be described
    /// directly.
    pub fn communication(
        &mut self,
        name: impl Into<String>,
        comm_time: Time,
        bus: PeId,
    ) -> ProcessId {
        self.push_process(ProcessSpec {
            name: name.into(),
            kind: ProcessKind::Communication,
            exec_time: comm_time,
            mapping: Some(bus),
            conjunction: false,
        })
    }

    /// Marks a process as a conjunction process: alternative paths meet at it
    /// and it is activated as soon as the messages of one active path have
    /// arrived.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this builder.
    pub fn mark_conjunction(&mut self, id: ProcessId) {
        self.processes[id.0].conjunction = true;
    }

    /// Adds a simple (data-flow) edge.
    ///
    /// `comm_time` is the communication time charged when the endpoints are
    /// mapped to different processing elements; it is ignored for local edges.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint was not created by this builder.
    pub fn simple_edge(&mut self, from: ProcessId, to: ProcessId, comm_time: Time) {
        self.push_edge(from, to, None, comm_time, None);
    }

    /// Adds a simple edge whose communication (if any) must use bus `via`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint was not created by this builder.
    pub fn simple_edge_via(&mut self, from: ProcessId, to: ProcessId, comm_time: Time, via: PeId) {
        self.push_edge(from, to, None, comm_time, Some(via));
    }

    /// Adds a conditional (control-flow) edge guarded by `literal`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint was not created by this builder.
    pub fn conditional_edge(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        literal: Literal,
        comm_time: Time,
    ) {
        self.push_edge(from, to, Some(literal), comm_time, None);
    }

    /// Adds a conditional edge whose communication (if any) must use bus `via`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint was not created by this builder.
    pub fn conditional_edge_via(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        literal: Literal,
        comm_time: Time,
        via: PeId,
    ) {
        self.push_edge(from, to, Some(literal), comm_time, Some(via));
    }

    /// Number of processes added so far (excluding the automatic source and
    /// sink).
    #[must_use]
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// `true` when no process has been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    fn push_process(&mut self, spec: ProcessSpec) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(spec);
        id
    }

    fn push_edge(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        condition: Option<Literal>,
        comm_time: Time,
        via: Option<PeId>,
    ) {
        assert!(
            from.0 < self.processes.len() && to.0 < self.processes.len(),
            "edge endpoints must be created by this builder"
        );
        self.edges.push(Edge {
            from,
            to,
            condition,
            comm_time,
            via,
        });
    }

    /// Finishes construction, validating the graph against `arch`.
    ///
    /// The polar source and sink are added automatically, guards are inferred
    /// and the structural rules of the paper are checked.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildCpgError`] describing the first violated rule; see the
    /// error type for the full list of checks.
    pub fn build(self, arch: &Architecture) -> Result<Cpg, BuildCpgError> {
        if self.processes.is_empty() {
            return Err(BuildCpgError::EmptyGraph);
        }
        self.validate_mappings(arch)?;
        self.validate_edges()?;

        let CpgBuilder {
            mut processes,
            mut edges,
            condition_names,
        } = self;

        // Add the polar source and sink and connect them to orphan processes.
        let user_count = processes.len();
        let source = ProcessId(processes.len());
        processes.push(ProcessSpec {
            name: "source".to_owned(),
            kind: ProcessKind::Source,
            exec_time: Time::ZERO,
            mapping: None,
            conjunction: false,
        });
        let sink = ProcessId(processes.len());
        processes.push(ProcessSpec {
            name: "sink".to_owned(),
            kind: ProcessKind::Sink,
            exec_time: Time::ZERO,
            mapping: None,
            conjunction: true,
        });
        let mut has_pred = vec![false; user_count];
        let mut has_succ = vec![false; user_count];
        for edge in &edges {
            has_succ[edge.from.0] = true;
            has_pred[edge.to.0] = true;
        }
        for i in 0..user_count {
            if !has_pred[i] {
                edges.push(Edge {
                    from: source,
                    to: ProcessId(i),
                    condition: None,
                    comm_time: Time::ZERO,
                    via: None,
                });
            }
            if !has_succ[i] {
                edges.push(Edge {
                    from: ProcessId(i),
                    to: sink,
                    condition: None,
                    comm_time: Time::ZERO,
                    via: None,
                });
            }
        }

        // Adjacency.
        let n = processes.len();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (i, edge) in edges.iter().enumerate() {
            succ[edge.from.0].push(i);
            pred[edge.to.0].push(i);
        }

        // Topological order (Kahn), also detects cycles.
        let topo = topological_sort(n, &edges, &pred).ok_or(BuildCpgError::Cycle)?;

        // Determine disjunction processes.
        let mut disjunction_of: Vec<Option<ProcessId>> = vec![None; condition_names.len()];
        let mut computes: Vec<Option<CondId>> = vec![None; n];
        for pid in 0..n {
            let mut cond_seen: Option<CondId> = None;
            let mut pos = false;
            let mut neg = false;
            for &e in &succ[pid] {
                if let Some(lit) = edges[e].condition {
                    match cond_seen {
                        None => cond_seen = Some(lit.cond()),
                        Some(c) if c != lit.cond() => {
                            return Err(BuildCpgError::MixedConditions {
                                process: processes[pid].name.clone(),
                            })
                        }
                        _ => {}
                    }
                    if lit.value() {
                        pos = true;
                    } else {
                        neg = true;
                    }
                }
            }
            if let Some(cond) = cond_seen {
                if !(pos && neg) {
                    return Err(BuildCpgError::MissingPolarity {
                        process: processes[pid].name.clone(),
                        condition: condition_names[cond.index()].clone(),
                    });
                }
                if disjunction_of[cond.index()].is_some() {
                    return Err(BuildCpgError::ConditionComputedTwice {
                        condition: condition_names[cond.index()].clone(),
                    });
                }
                disjunction_of[cond.index()] = Some(ProcessId(pid));
                computes[pid] = Some(cond);
            }
        }
        for (c, owner) in disjunction_of.iter().enumerate() {
            if owner.is_none() {
                return Err(BuildCpgError::UnusedCondition {
                    condition: condition_names[c].clone(),
                });
            }
        }

        // Guard inference in topological order.
        let mut guards: Vec<Guard> = vec![Guard::never(); n];
        for &pid in &topo {
            let i = pid.0;
            if pid == source {
                guards[i] = Guard::always();
                continue;
            }
            let terms: Vec<Guard> = pred[i]
                .iter()
                .map(|&e| {
                    let edge = &edges[e];
                    let base = guards[edge.from.0].clone();
                    match edge.condition {
                        Some(lit) => base.and_cube(&Cube::from(lit)),
                        None => base,
                    }
                })
                .collect();
            let is_conjunction = processes[i].conjunction || pid == sink;
            let guard = if is_conjunction {
                if pid == sink {
                    Guard::always()
                } else {
                    terms.iter().fold(Guard::never(), |acc, term| acc.or(term))
                }
            } else {
                let mut acc = Guard::always();
                for term in &terms {
                    acc = guard_and(&acc, term);
                }
                if acc.is_never() {
                    return Err(BuildCpgError::InconsistentJoin {
                        process: processes[i].name.clone(),
                    });
                }
                acc
            };
            if guard.cubes().len() > 64 {
                return Err(BuildCpgError::UnsupportedGuard {
                    process: processes[i].name.clone(),
                });
            }
            guards[i] = guard;
        }

        let final_processes: Vec<Process> = processes
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Process {
                name: spec.name,
                kind: spec.kind,
                exec_time: spec.exec_time,
                mapping: spec.mapping,
                computes: computes[i],
                guard: guards[i].clone(),
                is_conjunction: spec.conjunction || ProcessId(i) == sink,
            })
            .collect();

        Ok(Cpg {
            processes: final_processes,
            edges,
            succ,
            pred,
            source,
            sink,
            condition_names,
            disjunction_of,
            topo,
        })
    }

    fn validate_mappings(&self, arch: &Architecture) -> Result<(), BuildCpgError> {
        for spec in &self.processes {
            let pe = spec
                .mapping
                .expect("builder processes always carry a mapping");
            if pe.index() >= arch.len() {
                return Err(BuildCpgError::UnknownProcessingElement {
                    process: spec.name.clone(),
                });
            }
            match spec.kind {
                ProcessKind::Ordinary => {
                    if arch.kind_of(pe).is_bus() {
                        return Err(BuildCpgError::ProcessMappedToBus {
                            process: spec.name.clone(),
                        });
                    }
                }
                ProcessKind::Communication => {
                    if !arch.kind_of(pe).is_bus() {
                        return Err(BuildCpgError::CommunicationNotOnBus {
                            process: spec.name.clone(),
                        });
                    }
                }
                ProcessKind::Source | ProcessKind::Sink => {}
            }
        }
        Ok(())
    }

    fn validate_edges(&self) -> Result<(), BuildCpgError> {
        let mut seen: HashMap<(usize, usize), ()> = HashMap::new();
        for edge in &self.edges {
            if edge.from == edge.to {
                return Err(BuildCpgError::SelfLoop {
                    process: self.processes[edge.from.0].name.clone(),
                });
            }
            if seen.insert((edge.from.0, edge.to.0), ()).is_some() {
                return Err(BuildCpgError::DuplicateEdge {
                    from: self.processes[edge.from.0].name.clone(),
                    to: self.processes[edge.to.0].name.clone(),
                });
            }
        }
        Ok(())
    }
}

/// Conjunction of two guards (DNF × DNF, filtered for contradictions).
fn guard_and(a: &Guard, b: &Guard) -> Guard {
    let mut cubes = Vec::new();
    for ca in a.cubes() {
        for cb in b.cubes() {
            if let Some(cube) = ca.and_cube(cb) {
                cubes.push(cube);
            }
        }
    }
    Guard::from_cubes(cubes)
}

/// Kahn's algorithm; returns `None` when the graph has a cycle.
fn topological_sort(n: usize, edges: &[Edge], pred: &[Vec<usize>]) -> Option<Vec<ProcessId>> {
    let mut in_degree: Vec<usize> = pred.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut succ_lists: Vec<Vec<usize>> = vec![Vec::new(); n];
    for edge in edges {
        succ_lists[edge.from.0].push(edge.to.0);
    }
    while let Some(node) = ready.pop() {
        order.push(ProcessId(node));
        for &next in &succ_lists[node] {
            in_degree[next] -= 1;
            if in_degree[next] == 0 {
                ready.push(next);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg_arch::Architecture;

    fn arch() -> Architecture {
        Architecture::builder()
            .processor("pe1")
            .processor("pe2")
            .hardware("hw")
            .bus("bus")
            .build()
            .unwrap()
    }

    fn pe(arch: &Architecture, name: &str) -> PeId {
        arch.pe_by_name(name).unwrap()
    }

    #[test]
    fn linear_graph_gets_source_sink_and_true_guards() {
        let arch = arch();
        let mut b = Cpg::builder();
        let a = b.process("A", Time::new(2), pe(&arch, "pe1"));
        let c = b.process("B", Time::new(3), pe(&arch, "pe2"));
        b.simple_edge(a, c, Time::new(1));
        let cpg = b.build(&arch).unwrap();

        assert_eq!(cpg.len(), 4);
        assert_eq!(cpg.ordinary_processes().count(), 2);
        assert_eq!(cpg.process(cpg.source()).kind(), ProcessKind::Source);
        assert_eq!(cpg.process(cpg.sink()).kind(), ProcessKind::Sink);
        assert!(cpg.guard(a).is_true());
        assert!(cpg.guard(c).is_true());
        assert!(cpg.guard(cpg.sink()).is_true());
        assert_eq!(cpg.predecessors(a).next(), Some(cpg.source()));
        assert_eq!(cpg.successors(c).next(), Some(cpg.sink()));
        assert_eq!(cpg.mapping(cpg.source()), None);
        assert_eq!(cpg.exec_time(a), Time::new(2));
        assert_eq!(cpg.total_execution_time(), Time::new(5));
    }

    #[test]
    fn conditional_branches_get_literal_guards() {
        let arch = arch();
        let mut b = Cpg::builder();
        let c = b.condition("C");
        let root = b.process("root", Time::new(1), pe(&arch, "pe1"));
        let then = b.process("then", Time::new(2), pe(&arch, "pe1"));
        let els = b.process("else", Time::new(2), pe(&arch, "pe1"));
        let join = b.process("join", Time::new(1), pe(&arch, "pe1"));
        b.conditional_edge(root, then, c.is_true(), Time::ZERO);
        b.conditional_edge(root, els, c.is_false(), Time::ZERO);
        b.simple_edge(then, join, Time::ZERO);
        b.simple_edge(els, join, Time::ZERO);
        b.mark_conjunction(join);
        let cpg = b.build(&arch).unwrap();

        assert!(cpg.process(root).is_disjunction());
        assert_eq!(cpg.process(root).computes(), Some(c));
        assert_eq!(cpg.disjunction_of(c), root);
        assert_eq!(cpg.guard(then).as_cube(), Some(Cube::from(c.is_true())));
        assert_eq!(cpg.guard(els).as_cube(), Some(Cube::from(c.is_false())));
        assert!(cpg.guard(join).is_true());
        assert!(cpg.process(join).is_conjunction());
        assert_eq!(cpg.num_conditions(), 1);
        assert_eq!(cpg.condition_name(c), "C");
    }

    #[test]
    fn nested_conditions_compose_guards() {
        let arch = arch();
        let mut b = Cpg::builder();
        let d = b.condition("D");
        let k = b.condition("K");
        let p11 = b.process("P11", Time::new(6), pe(&arch, "pe2"));
        let p12 = b.process("P12", Time::new(6), pe(&arch, "hw"));
        let p13 = b.process("P13", Time::new(8), pe(&arch, "pe1"));
        let p14 = b.process("P14", Time::new(2), pe(&arch, "pe2"));
        let p15 = b.process("P15", Time::new(6), pe(&arch, "pe2"));
        let p17 = b.process("P17", Time::new(2), pe(&arch, "pe2"));
        b.conditional_edge(p11, p12, d.is_true(), Time::new(1));
        b.conditional_edge(p11, p13, d.is_false(), Time::new(2));
        b.conditional_edge(p12, p14, k.is_true(), Time::new(1));
        b.conditional_edge(p12, p15, k.is_false(), Time::new(3));
        b.simple_edge(p13, p17, Time::new(2));
        b.simple_edge(p14, p17, Time::ZERO);
        b.simple_edge(p15, p17, Time::ZERO);
        b.mark_conjunction(p17);
        let cpg = b.build(&arch).unwrap();

        let dk: Cube = [d.is_true(), k.is_true()].into_iter().collect();
        assert_eq!(cpg.guard(p14).as_cube(), Some(dk));
        assert_eq!(cpg.guard(p12).as_cube(), Some(Cube::from(d.is_true())));
        assert!(cpg.guard(p17).is_true());
        assert!(cpg.process(p17).is_conjunction());
    }

    #[test]
    fn and_join_of_compatible_terms_takes_their_conjunction() {
        let arch = arch();
        let mut b = Cpg::builder();
        let c = b.condition("C");
        let root = b.process("root", Time::new(1), pe(&arch, "pe1"));
        let other = b.process("other", Time::new(1), pe(&arch, "pe2"));
        let then = b.process("then", Time::new(2), pe(&arch, "pe1"));
        let els = b.process("else", Time::new(2), pe(&arch, "pe1"));
        b.conditional_edge(root, then, c.is_true(), Time::ZERO);
        b.conditional_edge(root, els, c.is_false(), Time::ZERO);
        // `then` also receives unconditional data from `other`.
        b.simple_edge(other, then, Time::new(1));
        let cpg = b.build(&arch).unwrap();
        assert_eq!(cpg.guard(then).as_cube(), Some(Cube::from(c.is_true())));
    }

    #[test]
    fn inconsistent_and_join_is_rejected() {
        let arch = arch();
        let mut b = Cpg::builder();
        let c = b.condition("C");
        let root = b.process("root", Time::new(1), pe(&arch, "pe1"));
        let then = b.process("then", Time::new(2), pe(&arch, "pe1"));
        let els = b.process("else", Time::new(2), pe(&arch, "pe1"));
        let join = b.process("join", Time::new(1), pe(&arch, "pe1"));
        b.conditional_edge(root, then, c.is_true(), Time::ZERO);
        b.conditional_edge(root, els, c.is_false(), Time::ZERO);
        b.simple_edge(then, join, Time::ZERO);
        b.simple_edge(els, join, Time::ZERO);
        // join NOT marked as conjunction -> its AND-guard is unsatisfiable.
        assert_eq!(
            b.build(&arch),
            Err(BuildCpgError::InconsistentJoin {
                process: "join".into()
            })
        );
    }

    #[test]
    fn missing_polarity_is_rejected() {
        let arch = arch();
        let mut b = Cpg::builder();
        let c = b.condition("C");
        let root = b.process("root", Time::new(1), pe(&arch, "pe1"));
        let then = b.process("then", Time::new(2), pe(&arch, "pe1"));
        b.conditional_edge(root, then, c.is_true(), Time::ZERO);
        assert!(matches!(
            b.build(&arch),
            Err(BuildCpgError::MissingPolarity { .. })
        ));
    }

    #[test]
    fn unused_condition_is_rejected() {
        let arch = arch();
        let mut b = Cpg::builder();
        let _c = b.condition("C");
        let a = b.process("A", Time::new(1), pe(&arch, "pe1"));
        let z = b.process("Z", Time::new(1), pe(&arch, "pe1"));
        b.simple_edge(a, z, Time::ZERO);
        assert!(matches!(
            b.build(&arch),
            Err(BuildCpgError::UnusedCondition { .. })
        ));
    }

    #[test]
    fn mixed_conditions_on_one_node_are_rejected() {
        let arch = arch();
        let mut b = Cpg::builder();
        let c = b.condition("C");
        let d = b.condition("D");
        let root = b.process("root", Time::new(1), pe(&arch, "pe1"));
        let w = b.process("w", Time::new(1), pe(&arch, "pe1"));
        let x = b.process("x", Time::new(1), pe(&arch, "pe1"));
        let y = b.process("y", Time::new(1), pe(&arch, "pe1"));
        let z = b.process("z", Time::new(1), pe(&arch, "pe1"));
        b.conditional_edge(root, w, c.is_true(), Time::ZERO);
        b.conditional_edge(root, x, c.is_false(), Time::ZERO);
        b.conditional_edge(root, y, d.is_true(), Time::ZERO);
        b.conditional_edge(root, z, d.is_false(), Time::ZERO);
        assert!(matches!(
            b.build(&arch),
            Err(BuildCpgError::MixedConditions { .. })
        ));
    }

    #[test]
    fn condition_computed_twice_is_rejected() {
        let arch = arch();
        let mut b = Cpg::builder();
        let c = b.condition("C");
        let r1 = b.process("r1", Time::new(1), pe(&arch, "pe1"));
        let r2 = b.process("r2", Time::new(1), pe(&arch, "pe1"));
        let a = b.process("a", Time::new(1), pe(&arch, "pe1"));
        let bb = b.process("b", Time::new(1), pe(&arch, "pe1"));
        let x = b.process("x", Time::new(1), pe(&arch, "pe2"));
        let y = b.process("y", Time::new(1), pe(&arch, "pe2"));
        b.conditional_edge(r1, a, c.is_true(), Time::ZERO);
        b.conditional_edge(r1, bb, c.is_false(), Time::ZERO);
        b.conditional_edge(r2, x, c.is_true(), Time::ZERO);
        b.conditional_edge(r2, y, c.is_false(), Time::ZERO);
        assert!(matches!(
            b.build(&arch),
            Err(BuildCpgError::ConditionComputedTwice { .. })
        ));
    }

    #[test]
    fn cycles_self_loops_and_duplicates_are_rejected() {
        let arch = arch();

        let mut b = Cpg::builder();
        let a = b.process("A", Time::new(1), pe(&arch, "pe1"));
        let c = b.process("B", Time::new(1), pe(&arch, "pe1"));
        b.simple_edge(a, c, Time::ZERO);
        b.simple_edge(c, a, Time::ZERO);
        assert_eq!(b.build(&arch), Err(BuildCpgError::Cycle));

        let mut b = Cpg::builder();
        let a = b.process("A", Time::new(1), pe(&arch, "pe1"));
        b.simple_edge(a, a, Time::ZERO);
        assert!(matches!(
            b.build(&arch),
            Err(BuildCpgError::SelfLoop { .. })
        ));

        let mut b = Cpg::builder();
        let a = b.process("A", Time::new(1), pe(&arch, "pe1"));
        let c = b.process("B", Time::new(1), pe(&arch, "pe1"));
        b.simple_edge(a, c, Time::ZERO);
        b.simple_edge(a, c, Time::ZERO);
        assert!(matches!(
            b.build(&arch),
            Err(BuildCpgError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn mapping_errors_are_detected() {
        let arch = arch();
        let small = Architecture::builder().processor("only").build().unwrap();

        let mut b = Cpg::builder();
        b.process("A", Time::new(1), pe(&arch, "pe2"));
        assert!(matches!(
            b.build(&small),
            Err(BuildCpgError::UnknownProcessingElement { .. })
        ));

        let mut b = Cpg::builder();
        b.process("A", Time::new(1), pe(&arch, "bus"));
        assert!(matches!(
            b.build(&arch),
            Err(BuildCpgError::ProcessMappedToBus { .. })
        ));

        let mut b = Cpg::builder();
        b.communication("c", Time::new(1), pe(&arch, "pe1"));
        b.process("A", Time::new(1), pe(&arch, "pe1"));
        assert!(matches!(
            b.build(&arch),
            Err(BuildCpgError::CommunicationNotOnBus { .. })
        ));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let arch = arch();
        assert_eq!(Cpg::builder().build(&arch), Err(BuildCpgError::EmptyGraph));
    }

    #[test]
    fn topological_order_respects_edges() {
        let arch = arch();
        let mut b = Cpg::builder();
        let a = b.process("A", Time::new(1), pe(&arch, "pe1"));
        let c = b.process("B", Time::new(1), pe(&arch, "pe1"));
        let d = b.process("C", Time::new(1), pe(&arch, "pe2"));
        b.simple_edge(a, c, Time::ZERO);
        b.simple_edge(c, d, Time::new(1));
        b.simple_edge(a, d, Time::new(1));
        let cpg = b.build(&arch).unwrap();
        let topo = cpg.topological_order();
        let pos = |p: ProcessId| topo.iter().position(|&x| x == p).unwrap();
        for edge in cpg.edges() {
            assert!(
                pos(edge.from()) < pos(edge.to()),
                "edge violates topo order"
            );
        }
        assert_eq!(topo.len(), cpg.len());
        assert_eq!(topo[0], cpg.source());
    }

    #[test]
    fn lookup_by_name_and_display() {
        let arch = arch();
        let mut b = Cpg::builder();
        let a = b.process("alpha", Time::new(1), pe(&arch, "pe1"));
        let z = b.process("omega", Time::new(1), pe(&arch, "pe1"));
        b.simple_edge(a, z, Time::ZERO);
        let cpg = b.build(&arch).unwrap();
        assert_eq!(cpg.process_by_name("alpha"), Some(a));
        assert_eq!(cpg.process_by_name("nope"), None);
        assert!(cpg.to_string().contains("4 processes"));
        assert!(!cpg.is_expanded());
    }
}
