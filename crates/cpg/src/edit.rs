//! System edits and edit→affected-track scoping for incremental re-merges.
//!
//! Interactive design-space exploration re-estimates the worst-case delay
//! after every small change to the system: a WCET tweak, a mapping move, a
//! guard edit. [`SystemEdit`] models exactly those changes as first-class
//! values so a scheduler session can (1) apply them to a [`Cpg`] in place and
//! (2) compute *which alternative paths the edit can possibly affect* before
//! re-merging.
//!
//! The scoping pass follows the `ValidityScope` idiom: the required-presence
//! set of the edited process is its guard `X_Pi`, flattened to a disjunction
//! of literal cubes. An alternative path whose label is incompatible with
//! every guard cube can never activate the process, so nothing the edit
//! changes is observable on that path — its schedule, and every decision
//! subtree that only consults such paths, is provably unchanged. Guard edits
//! change the flattening itself (and potentially the set of alternative
//! paths), so they scope to [`EditScope::Structural`].
//!
//! The module also provides [`FrontierHasher`], the deterministic FNV-1a
//! hasher used to fingerprint decision-subtree frontiers (scheduled jobs,
//! column cubes, lock sets) and table rows across the merge stack. Frontier
//! hashes must be stable across processes and platforms — `std`'s default
//! hasher is randomly seeded and therefore unusable for caches that compare
//! fingerprints taken in different merges.

use std::fmt;
use std::hash::Hasher;

use cpg_arch::{PeId, Time};

use crate::cond::Guard;
use crate::graph::Cpg;
use crate::process::ProcessId;
use crate::tracks::TrackSet;

/// A single designer edit to a conditional process graph.
///
/// Edits are the unit of invalidation for incremental re-merges: apply one
/// with [`SystemEdit::apply`], then ask [`SystemEdit::scope`] which
/// alternative paths it can affect.
///
/// # Example
///
/// ```
/// use cpg_arch::Time;
/// use cpg::{enumerate_tracks, examples, EditScope, SystemEdit};
///
/// let mut cpg = examples::fig1().cpg().clone();
/// let tracks = enumerate_tracks(&cpg);
/// let p = cpg.ordinary_processes().next().unwrap();
/// let edit = SystemEdit::ExecTime { process: p, time: Time::new(9) };
/// match edit.scope(&cpg, &tracks) {
///     EditScope::Tracks(affected) => assert!(!affected.is_empty()),
///     EditScope::Structural => unreachable!("WCET edits scope to tracks"),
/// }
/// edit.apply(&mut cpg).unwrap();
/// assert_eq!(cpg.exec_time(p), Time::new(9));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemEdit {
    /// Change the worst-case execution time of a process (communication time
    /// for communication processes).
    ExecTime {
        /// The edited process.
        process: ProcessId,
        /// The new worst-case execution time.
        time: Time,
    },
    /// Move a process to a different processing element.
    Mapping {
        /// The edited process.
        process: ProcessId,
        /// The processing element the process is moved to.
        pe: PeId,
    },
    /// Replace the guard `X_Pi` of a process (e.g. tightening the condition
    /// under which it is activated).
    Guard {
        /// The edited process.
        process: ProcessId,
        /// The new guard.
        guard: Guard,
    },
}

impl SystemEdit {
    /// The process the edit targets.
    #[must_use]
    pub fn process(&self) -> ProcessId {
        match self {
            SystemEdit::ExecTime { process, .. }
            | SystemEdit::Mapping { process, .. }
            | SystemEdit::Guard { process, .. } => *process,
        }
    }

    /// Applies the edit to a graph in place.
    ///
    /// # Errors
    ///
    /// Returns an error when the process does not exist, is a dummy
    /// source/sink, or (for mapping moves) is currently unmapped.
    pub fn apply(&self, cpg: &mut Cpg) -> Result<(), EditError> {
        match self {
            SystemEdit::ExecTime { process, time } => cpg.set_exec_time(*process, *time),
            SystemEdit::Mapping { process, pe } => cpg.set_mapping(*process, *pe),
            SystemEdit::Guard { process, guard } => cpg.set_guard(*process, guard.clone()),
        }
    }

    /// Computes which alternative paths the edit can affect, *before* it is
    /// applied.
    ///
    /// WCET and mapping edits are observable exactly on the paths that
    /// activate the edited process. The guard literals give a cheap
    /// over-approximation (a path whose label contradicts every guard cube is
    /// excluded outright); track membership then confirms the exact set.
    /// Guard edits change the required-presence structure itself — and may
    /// change the set of alternative paths — so they scope to
    /// [`EditScope::Structural`].
    #[must_use]
    pub fn scope(&self, cpg: &Cpg, tracks: &TrackSet) -> EditScope {
        match self {
            SystemEdit::Guard { .. } => EditScope::Structural,
            SystemEdit::ExecTime { process, .. } | SystemEdit::Mapping { process, .. } => {
                let guard = cpg.guard(*process);
                let affected = tracks
                    .iter()
                    .enumerate()
                    .filter(|(_, track)| {
                        let label = track.label();
                        guard.cubes().iter().any(|cube| !cube.excludes(&label))
                            && track.contains(*process)
                    })
                    .map(|(idx, _)| idx)
                    .collect();
                EditScope::Tracks(affected)
            }
        }
    }
}

impl fmt::Display for SystemEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemEdit::ExecTime { process, time } => write!(f, "wcet {process} := {time}"),
            SystemEdit::Mapping { process, pe } => write!(f, "map {process} -> {pe}"),
            SystemEdit::Guard { process, guard } => write!(f, "guard {process} := {guard}"),
        }
    }
}

/// The set of alternative paths a [`SystemEdit`] can affect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditScope {
    /// The edit is observable only on the listed tracks (indices into the
    /// [`TrackSet`] it was computed against). Everything else is provably
    /// unchanged.
    Tracks(Vec<usize>),
    /// The edit changes the guard structure: the set of alternative paths
    /// itself may differ, so no cached scheduling state survives.
    Structural,
}

/// Why a [`SystemEdit`] could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditError {
    /// The process identifier does not belong to the graph.
    UnknownProcess(ProcessId),
    /// The dummy source/sink cannot be edited.
    DummyProcess(ProcessId),
    /// A mapping move targeted a process that is not mapped (only the dummy
    /// source/sink, which [`EditError::DummyProcess`] already rejects, but
    /// kept distinct for forward compatibility).
    UnmappedProcess(ProcessId),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownProcess(p) => write!(f, "process {p} does not belong to the graph"),
            EditError::DummyProcess(p) => write!(f, "process {p} is a dummy source/sink"),
            EditError::UnmappedProcess(p) => write!(f, "process {p} is not mapped"),
        }
    }
}

impl std::error::Error for EditError {}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic FNV-1a 64-bit hasher for frontier fingerprints.
///
/// Drives any `#[derive(Hash)]` type through [`std::hash::Hasher`], but with
/// a fixed seed and byte-order-independent mixing, so two fingerprints taken
/// in different merges (or processes) of identical data always compare equal.
///
/// # Example
///
/// ```
/// use std::hash::{Hash, Hasher};
/// use cpg::FrontierHasher;
///
/// let mut a = FrontierHasher::new();
/// let mut b = FrontierHasher::new();
/// ("jobs", 42u64).hash(&mut a);
/// ("jobs", 42u64).hash(&mut b);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct FrontierHasher(u64);

impl FrontierHasher {
    /// Creates a hasher in the canonical FNV-1a start state.
    #[must_use]
    pub const fn new() -> Self {
        FrontierHasher(FNV_OFFSET)
    }
}

impl Default for FrontierHasher {
    fn default() -> Self {
        FrontierHasher::new()
    }
}

impl Hasher for FrontierHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

#[cfg(test)]
mod tests {
    use std::hash::Hash;

    use super::*;
    use crate::cond::Cube;
    use crate::examples;
    use crate::tracks::enumerate_tracks;

    #[test]
    fn exec_time_edit_applies_and_scopes_to_containing_tracks() {
        let mut cpg = examples::fig1().cpg().clone();
        let tracks = enumerate_tracks(&cpg);
        let p = cpg
            .ordinary_processes()
            .find(|&p| !cpg.guard(p).is_true())
            .expect("fig1 has guarded processes");
        let edit = SystemEdit::ExecTime {
            process: p,
            time: Time::new(17),
        };
        let EditScope::Tracks(affected) = edit.scope(&cpg, &tracks) else {
            panic!("WCET edits must scope to tracks");
        };
        for (idx, track) in tracks.iter().enumerate() {
            assert_eq!(affected.contains(&idx), track.contains(p));
        }
        assert!(
            affected.len() < tracks.len(),
            "a guarded process misses some track"
        );
        edit.apply(&mut cpg).unwrap();
        assert_eq!(cpg.exec_time(p), Time::new(17));
    }

    #[test]
    fn mapping_edit_moves_the_process() {
        let system = examples::fig1();
        let mut cpg = system.cpg().clone();
        let p = cpg.ordinary_processes().next().unwrap();
        let old = cpg.mapping(p).unwrap();
        let target = system
            .arch()
            .processors()
            .find(|&pe| pe != old)
            .expect("fig1 has several processors");
        SystemEdit::Mapping {
            process: p,
            pe: target,
        }
        .apply(&mut cpg)
        .unwrap();
        assert_eq!(cpg.mapping(p), Some(target));
    }

    #[test]
    fn guard_edits_are_structural_and_dummies_are_rejected() {
        let mut cpg = examples::fig1().cpg().clone();
        let tracks = enumerate_tracks(&cpg);
        let p = cpg.ordinary_processes().next().unwrap();
        let cond = cpg.conditions().next().unwrap();
        let cube = Cube::top().and(cond.is_true()).unwrap();
        let edit = SystemEdit::Guard {
            process: p,
            guard: Guard::from_cube(cube),
        };
        assert_eq!(edit.scope(&cpg, &tracks), EditScope::Structural);
        edit.apply(&mut cpg).unwrap();
        assert_eq!(cpg.guard(p).cubes().len(), 1);

        let source = cpg.source();
        let err = SystemEdit::ExecTime {
            process: source,
            time: Time::new(1),
        }
        .apply(&mut cpg)
        .unwrap_err();
        assert_eq!(err, EditError::DummyProcess(source));
    }

    #[test]
    fn frontier_hasher_is_deterministic_and_order_sensitive() {
        let fingerprint = |items: &[(u64, bool)]| {
            let mut h = FrontierHasher::new();
            items.hash(&mut h);
            h.finish()
        };
        let a = fingerprint(&[(1, true), (2, false)]);
        assert_eq!(a, fingerprint(&[(1, true), (2, false)]));
        assert_ne!(a, fingerprint(&[(2, false), (1, true)]));
        assert_ne!(a, fingerprint(&[(1, true)]));
    }
}
