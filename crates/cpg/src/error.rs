//! Error types for conditional-process-graph construction and expansion.

use std::error::Error;
use std::fmt;

/// Error returned by [`CpgBuilder::build`](crate::CpgBuilder::build).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildCpgError {
    /// The graph contains no ordinary process.
    EmptyGraph,
    /// A process is mapped to a processing element that does not exist in the
    /// target architecture.
    UnknownProcessingElement {
        /// Name of the offending process.
        process: String,
    },
    /// An ordinary process is mapped to a bus instead of a computation
    /// resource.
    ProcessMappedToBus {
        /// Name of the offending process.
        process: String,
    },
    /// A communication process is mapped to a processor instead of a bus.
    CommunicationNotOnBus {
        /// Name of the offending process.
        process: String,
    },
    /// The graph contains a cycle; conditional process graphs are acyclic.
    Cycle,
    /// An edge connects a process to itself.
    SelfLoop {
        /// Name of the offending process.
        process: String,
    },
    /// Two parallel edges connect the same pair of processes.
    DuplicateEdge {
        /// Name of the edge's origin.
        from: String,
        /// Name of the edge's destination.
        to: String,
    },
    /// A process has conditional output edges over two different conditions;
    /// a disjunction process computes exactly one condition.
    MixedConditions {
        /// Name of the offending process.
        process: String,
    },
    /// Two processes both have conditional output edges over the same
    /// condition; each condition is computed by exactly one disjunction
    /// process.
    ConditionComputedTwice {
        /// Name of the condition.
        condition: String,
    },
    /// A declared condition never appears on any conditional edge.
    UnusedCondition {
        /// Name of the condition.
        condition: String,
    },
    /// A disjunction process only has conditional output edges for one value
    /// of its condition; both the true and the false branch must exist.
    MissingPolarity {
        /// Name of the disjunction process.
        process: String,
        /// Name of the condition.
        condition: String,
    },
    /// The guard of a non-conjunction process is unsatisfiable: its inputs
    /// come from mutually exclusive alternative paths. Mark the process as a
    /// conjunction process if the alternatives are supposed to meet there.
    InconsistentJoin {
        /// Name of the offending process.
        process: String,
    },
    /// A process guard could not be reduced to the disjunctive form supported
    /// by the scheduler (this indicates a malformed control structure).
    UnsupportedGuard {
        /// Name of the offending process.
        process: String,
    },
}

impl fmt::Display for BuildCpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCpgError::EmptyGraph => write!(f, "graph contains no process"),
            BuildCpgError::UnknownProcessingElement { process } => {
                write!(f, "process `{process}` is mapped to a processing element outside the architecture")
            }
            BuildCpgError::ProcessMappedToBus { process } => {
                write!(f, "process `{process}` is mapped to a bus; ordinary processes need a processor or hardware element")
            }
            BuildCpgError::CommunicationNotOnBus { process } => {
                write!(
                    f,
                    "communication process `{process}` must be mapped to a bus"
                )
            }
            BuildCpgError::Cycle => write!(f, "conditional process graphs must be acyclic"),
            BuildCpgError::SelfLoop { process } => {
                write!(f, "process `{process}` has an edge to itself")
            }
            BuildCpgError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge from `{from}` to `{to}`")
            }
            BuildCpgError::MixedConditions { process } => {
                write!(
                    f,
                    "process `{process}` has conditional output edges over more than one condition"
                )
            }
            BuildCpgError::ConditionComputedTwice { condition } => {
                write!(
                    f,
                    "condition `{condition}` is computed by more than one disjunction process"
                )
            }
            BuildCpgError::UnusedCondition { condition } => {
                write!(
                    f,
                    "condition `{condition}` never appears on a conditional edge"
                )
            }
            BuildCpgError::MissingPolarity { process, condition } => {
                write!(f, "disjunction process `{process}` lacks a branch for one value of condition `{condition}`")
            }
            BuildCpgError::InconsistentJoin { process } => {
                write!(f, "process `{process}` joins mutually exclusive paths; mark it as a conjunction process")
            }
            BuildCpgError::UnsupportedGuard { process } => {
                write!(f, "guard of process `{process}` has an unsupported shape")
            }
        }
    }
}

impl Error for BuildCpgError {}

/// Error returned by [`expand_communications`](crate::expand_communications).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExpandError {
    /// The graph already contains communication processes.
    AlreadyExpanded,
    /// An inter-processor edge exists but the architecture has no bus.
    NoBusAvailable {
        /// Name of the edge's origin.
        from: String,
        /// Name of the edge's destination.
        to: String,
    },
    /// Re-validation of the expanded graph failed (should not happen for
    /// graphs produced by [`CpgBuilder`](crate::CpgBuilder)).
    Rebuild(BuildCpgError),
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::AlreadyExpanded => {
                write!(f, "graph already contains communication processes")
            }
            ExpandError::NoBusAvailable { from, to } => {
                write!(f, "edge `{from}` -> `{to}` crosses processors but the architecture has no usable bus")
            }
            ExpandError::Rebuild(err) => write!(f, "expanded graph is invalid: {err}"),
        }
    }
}

impl Error for ExpandError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExpandError::Rebuild(err) => Some(err),
            _ => None,
        }
    }
}

impl From<BuildCpgError> for ExpandError {
    fn from(err: BuildCpgError) -> Self {
        ExpandError::Rebuild(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_std_errors_and_display_cleanly() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<BuildCpgError>();
        assert_error::<ExpandError>();
        let msg = BuildCpgError::MixedConditions {
            process: "P2".into(),
        }
        .to_string();
        assert!(msg.contains("P2"));
        let msg = ExpandError::Rebuild(BuildCpgError::Cycle).to_string();
        assert!(msg.contains("acyclic"));
    }

    #[test]
    fn expand_error_source_chains_to_build_error() {
        let err = ExpandError::from(BuildCpgError::EmptyGraph);
        assert!(err.source().is_some());
        assert!(ExpandError::AlreadyExpanded.source().is_none());
    }
}
