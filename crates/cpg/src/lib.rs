//! Conditional process graphs: the system representation of Eles et al.,
//! *"Scheduling of Conditional Process Graphs for the Synthesis of Embedded
//! Systems"* (DATE 1998).
//!
//! A conditional process graph (CPG) is a directed, acyclic, polar graph whose
//! nodes are processes mapped onto a heterogeneous architecture and whose
//! edges capture both data-flow (simple edges) and control-flow (conditional
//! edges guarded by conditions computed by *disjunction processes*). For a
//! given execution only one *alternative path* through the graph is active.
//!
//! This crate provides:
//!
//! * the condition algebra ([`CondId`], [`Literal`], [`Cube`], [`Guard`],
//!   [`Assignment`]) used for guards, path labels and schedule-table columns;
//! * the graph model itself ([`Cpg`], [`CpgBuilder`], [`Process`], [`Edge`])
//!   with guard inference and structural validation;
//! * communication expansion ([`expand_communications`]), which inserts a
//!   bus-mapped communication process on every inter-processor edge;
//! * alternative-path enumeration ([`enumerate_tracks`], [`Track`],
//!   [`TrackSet`]);
//! * ready-made example systems ([`examples`]), including a reconstruction of
//!   the paper's Fig. 1.
//!
//! # Example
//!
//! ```
//! use cpg_arch::{Architecture, Time};
//! use cpg::{enumerate_tracks, expand_communications, BusPolicy, Cpg};
//!
//! // Two processors and a bus.
//! let arch = Architecture::builder()
//!     .processor("cpu0")
//!     .processor("cpu1")
//!     .bus("bus")
//!     .build()?;
//! let cpu0 = arch.pe_by_name("cpu0").unwrap();
//! let cpu1 = arch.pe_by_name("cpu1").unwrap();
//!
//! // A process that branches on a condition computed at run time.
//! let mut b = Cpg::builder();
//! let c = b.condition("C");
//! let decide = b.process("decide", Time::new(2), cpu0);
//! let hot = b.process("hot", Time::new(4), cpu1);
//! let cold = b.process("cold", Time::new(3), cpu0);
//! b.conditional_edge(decide, hot, c.is_true(), Time::new(1));
//! b.conditional_edge(decide, cold, c.is_false(), Time::ZERO);
//! let cpg = b.build(&arch)?;
//!
//! // Insert communication processes and enumerate the alternative paths.
//! let full = expand_communications(&cpg, &arch, BusPolicy::FirstBus)?;
//! let tracks = enumerate_tracks(&full);
//! assert_eq!(tracks.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod cond;
mod dot;
mod edit;
mod error;
mod expand;
mod graph;
mod process;
mod tracks;

pub mod examples;

pub use cond::{all_assignments, Assignment, CondId, Cube, Guard, Literal, MAX_CONDITIONS};
pub use dot::to_dot;
pub use edit::{EditError, EditScope, FrontierHasher, SystemEdit};
pub use error::{BuildCpgError, ExpandError};
pub use expand::{expand_communications, BusPolicy};
pub use graph::{Cpg, CpgBuilder, Edge};
pub use process::{Process, ProcessId, ProcessKind};
pub use tracks::{enumerate_tracks, Track, TrackSet};
