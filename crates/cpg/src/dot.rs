//! Graphviz (DOT) export of conditional process graphs.
//!
//! The paper presents its example system as a drawing (Fig. 1); this module
//! produces an equivalent drawing for any graph built with this library so
//! that reconstructed or generated systems can be inspected visually:
//! disjunction processes are drawn as diamonds, conjunction processes with a
//! double border, communication processes as small dots, and conditional
//! edges are labelled with their condition literal (dashed for the false
//! branch).

use std::fmt::Write as _;

use cpg_arch::Architecture;

use crate::graph::Cpg;
use crate::process::ProcessKind;

/// Renders the graph in Graphviz DOT syntax.
///
/// When `arch` is provided, processes are clustered by the processing element
/// they are mapped to, mirroring the mapping table of the paper's Fig. 1.
///
/// # Example
///
/// ```
/// use cpg::{examples, to_dot};
///
/// let system = examples::diamond();
/// let dot = to_dot(system.cpg(), Some(system.arch()));
/// assert!(dot.starts_with("digraph cpg {"));
/// assert!(dot.contains("decide"));
/// assert!(dot.contains("->"));
/// ```
#[must_use]
pub fn to_dot(cpg: &Cpg, arch: Option<&Architecture>) -> String {
    let mut out = String::from("digraph cpg {\n");
    out.push_str("  rankdir=TB;\n  node [fontsize=10];\n");

    let node_attrs = |id: crate::ProcessId| -> String {
        let process = cpg.process(id);
        let shape = if process.is_disjunction() {
            "diamond"
        } else if process.kind() == ProcessKind::Communication {
            "point"
        } else if process.kind().is_dummy() {
            "plaintext"
        } else {
            "ellipse"
        };
        let peripheries = if process.is_conjunction() { 2 } else { 1 };
        let label = if process.kind() == ProcessKind::Communication {
            String::new()
        } else {
            format!("{}\\nt={}", process.name(), process.exec_time())
        };
        format!("shape={shape}, peripheries={peripheries}, label=\"{label}\"")
    };

    match arch {
        Some(arch) => {
            // One cluster per processing element, dummies outside.
            for pe in arch.ids() {
                let members: Vec<_> = cpg
                    .process_ids()
                    .filter(|&id| cpg.mapping(id) == Some(pe))
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let _ = writeln!(out, "  subgraph cluster_pe{} {{", pe.index());
                let _ = writeln!(out, "    label=\"{}\";", arch.pe(pe).name());
                for id in members {
                    let _ = writeln!(out, "    n{} [{}];", id.index(), node_attrs(id));
                }
                out.push_str("  }\n");
            }
            for id in cpg.process_ids() {
                if cpg.mapping(id).is_none() {
                    let _ = writeln!(out, "  n{} [{}];", id.index(), node_attrs(id));
                }
            }
        }
        None => {
            for id in cpg.process_ids() {
                let _ = writeln!(out, "  n{} [{}];", id.index(), node_attrs(id));
            }
        }
    }

    for edge in cpg.edges() {
        let mut attrs: Vec<String> = Vec::new();
        if let Some(lit) = edge.condition() {
            let name = cpg.condition_name(lit.cond());
            if lit.value() {
                attrs.push(format!("label=\"{name}\""));
            } else {
                attrs.push(format!("label=\"!{name}\""));
                attrs.push("style=dashed".to_owned());
            }
            attrs.push("penwidth=2".to_owned());
        }
        if !edge.comm_time().is_zero() {
            attrs.push(format!("taillabel=\"{}\"", edge.comm_time()));
        }
        let attr_text = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(", "))
        };
        let _ = writeln!(
            out,
            "  n{} -> n{}{attr_text};",
            edge.from().index(),
            edge.to().index()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn dot_output_contains_every_process_and_edge() {
        let system = examples::fig1();
        let dot = to_dot(system.cpg(), Some(system.arch()));
        assert!(dot.starts_with("digraph cpg {"));
        assert!(dot.trim_end().ends_with('}'));
        for id in system.cpg().process_ids() {
            assert!(
                dot.contains(&format!("n{} ", id.index()))
                    || dot.contains(&format!("n{} [", id.index()))
            );
        }
        let arrow_count = dot.matches("->").count();
        assert_eq!(arrow_count, system.cpg().edges().len());
        // Clusters per processing element.
        assert!(dot.contains("cluster_pe0"));
        assert!(dot.contains("label=\"pe4\""));
    }

    #[test]
    fn conditional_edges_are_labelled_with_their_condition() {
        let system = examples::diamond();
        let dot = to_dot(system.cpg(), None);
        assert!(dot.contains("label=\"C\""));
        assert!(dot.contains("label=\"!C\""));
        assert!(dot.contains("style=dashed"));
        assert!(!dot.contains("cluster_pe"));
    }

    #[test]
    fn disjunction_and_conjunction_shapes_are_distinct() {
        let system = examples::diamond();
        let dot = to_dot(system.cpg(), Some(system.arch()));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("shape=point"));
    }
}
