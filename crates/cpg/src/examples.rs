//! Ready-made example systems, including a reconstruction of the paper's
//! Fig. 1 graph.

use cpg_arch::{Architecture, Time};

use crate::cond::CondId;
use crate::expand::{expand_communications, BusPolicy};
use crate::graph::{Cpg, CpgBuilder};

/// A complete example system: target architecture, the designer-level graph
/// and its expansion with communication processes.
///
/// # Example
///
/// ```
/// use cpg::examples;
///
/// let system = examples::fig1();
/// assert_eq!(system.cpg().ordinary_processes().count(), 17);
/// assert_eq!(system.cpg().communication_processes().count(), 14);
/// assert_eq!(system.cpg().num_conditions(), 3);
/// assert!(system.condition("C").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ExampleSystem {
    arch: Architecture,
    unexpanded: Cpg,
    cpg: Cpg,
    broadcast_time: Time,
}

impl ExampleSystem {
    fn new(arch: Architecture, unexpanded: Cpg, broadcast_time: Time) -> Self {
        let cpg = expand_communications(&unexpanded, &arch, BusPolicy::FirstBus)
            .expect("example graphs expand cleanly");
        ExampleSystem {
            arch,
            unexpanded,
            cpg,
            broadcast_time,
        }
    }

    /// The target architecture.
    #[must_use]
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The full conditional process graph including communication processes.
    #[must_use]
    pub fn cpg(&self) -> &Cpg {
        &self.cpg
    }

    /// The designer-level graph before communication expansion.
    #[must_use]
    pub fn unexpanded(&self) -> &Cpg {
        &self.unexpanded
    }

    /// The time `τ0` needed to broadcast a condition value on a bus.
    #[must_use]
    pub fn broadcast_time(&self) -> Time {
        self.broadcast_time
    }

    /// Looks up a condition by its designer-given name.
    #[must_use]
    pub fn condition(&self, name: &str) -> Option<CondId> {
        self.cpg
            .conditions()
            .find(|&c| self.cpg.condition_name(c) == name)
    }
}

/// Reconstruction of the conditional process graph of the paper's Fig. 1.
///
/// Seventeen ordinary processes P1–P17 are mapped onto two programmable
/// processors, one hardware processor and a single shared bus; expansion adds
/// the fourteen communication processes of the figure. Execution times,
/// communication times, the process mapping, the three conditions (`C`
/// computed by P2, `D` by P11, `K` by P12 — active only when `D` holds) and
/// the guards quoted in the paper (`X_P3 = true`, `X_P5 = C`,
/// `X_P14 = D ∧ K`, `X_P17 = true`) are all reproduced. The exact placement of
/// the figure's unlabelled intra-processor edges is not machine-readable from
/// the paper, so this graph is a faithful reconstruction rather than a copy;
/// it has the same six alternative paths as the paper's Fig. 2.
///
/// The paper uses a condition-broadcast time `τ0 = 1` for this example.
#[must_use]
pub fn fig1() -> ExampleSystem {
    let arch = Architecture::builder()
        .processor("pe1")
        .processor("pe2")
        .hardware("pe3")
        .bus("pe4")
        .build()
        .expect("fig1 architecture is valid");
    let pe1 = arch.pe_by_name("pe1").expect("pe1 exists");
    let pe2 = arch.pe_by_name("pe2").expect("pe2 exists");
    let pe3 = arch.pe_by_name("pe3").expect("pe3 exists");

    let mut b = CpgBuilder::new();
    let c = b.condition("C");
    let d = b.condition("D");
    let k = b.condition("K");

    let t = Time::new;
    let p1 = b.process("P1", t(3), pe1);
    let p2 = b.process("P2", t(4), pe1);
    let p3 = b.process("P3", t(12), pe2);
    let p4 = b.process("P4", t(5), pe1);
    let p5 = b.process("P5", t(3), pe2);
    let p6 = b.process("P6", t(5), pe1);
    let p7 = b.process("P7", t(3), pe2);
    let p8 = b.process("P8", t(4), pe3);
    let p9 = b.process("P9", t(5), pe1);
    let p10 = b.process("P10", t(5), pe1);
    let p11 = b.process("P11", t(6), pe2);
    let p12 = b.process("P12", t(6), pe3);
    let p13 = b.process("P13", t(8), pe1);
    let p14 = b.process("P14", t(2), pe2);
    let p15 = b.process("P15", t(6), pe2);
    let p16 = b.process("P16", t(4), pe3);
    let p17 = b.process("P17", t(2), pe2);

    // Left half: condition C computed by P2.
    b.simple_edge(p1, p2, Time::ZERO);
    b.simple_edge(p1, p3, t(1)); // t1,3 = 1
    b.conditional_edge(p2, p5, c.is_true(), t(3)); // t2,5 = 3
    b.conditional_edge(p2, p4, c.is_false(), Time::ZERO);
    b.conditional_edge(p2, p6, c.is_true(), Time::ZERO);
    b.simple_edge(p2, p9, Time::ZERO);
    b.simple_edge(p3, p6, t(2)); // t3,6 = 2
    b.simple_edge(p3, p10, t(2)); // t3,10 = 2
    b.simple_edge(p4, p7, t(3)); // t4,7 = 3
    b.simple_edge(p6, p8, t(3)); // t6,8 = 3
    b.simple_edge(p7, p10, t(2)); // t7,10 = 2
    b.simple_edge(p8, p10, t(2)); // t8,10 = 2
    b.mark_conjunction(p10);

    // Right half: condition D computed by P11, K by P12 (only when D holds).
    b.conditional_edge(p11, p12, d.is_true(), t(1)); // t11,12 = 1
    b.conditional_edge(p11, p13, d.is_false(), t(2)); // t11,13 = 2
    b.conditional_edge(p12, p14, k.is_true(), t(1)); // t12,14 = 1
    b.conditional_edge(p12, p15, k.is_false(), t(3)); // t12,15 = 3
    b.simple_edge(p12, p16, Time::ZERO);
    b.simple_edge(p13, p17, t(2)); // t13,17 = 2
    b.simple_edge(p16, p17, t(2)); // t16,17 = 2
    b.simple_edge(p14, p17, Time::ZERO);
    b.simple_edge(p15, p17, Time::ZERO);
    b.mark_conjunction(p17);

    let cpg = b.build(&arch).expect("fig1 graph is valid");
    ExampleSystem::new(arch, cpg, Time::new(1))
}

/// A small two-condition system used throughout the documentation and tests:
/// a sensor process branches on condition `C`, the `C` branch itself branches
/// on condition `D`, and all branches meet again before an actuator process.
///
/// Four alternative paths; two programmable processors and one bus.
#[must_use]
pub fn sensor_actuator() -> ExampleSystem {
    let arch = Architecture::builder()
        .processor("cpu0")
        .processor("cpu1")
        .bus("bus")
        .build()
        .expect("architecture is valid");
    let cpu0 = arch.pe_by_name("cpu0").expect("cpu0 exists");
    let cpu1 = arch.pe_by_name("cpu1").expect("cpu1 exists");

    let mut b = CpgBuilder::new();
    let c = b.condition("C");
    let d = b.condition("D");
    let t = Time::new;

    let sense = b.process("sense", t(2), cpu0);
    let classify = b.process("classify", t(3), cpu0);
    let fast = b.process("fast_path", t(2), cpu1);
    let slow = b.process("slow_path", t(6), cpu1);
    let refine = b.process("refine", t(4), cpu0);
    let fallback = b.process("fallback", t(3), cpu1);
    let fuse = b.process("fuse", t(2), cpu0);
    let act = b.process("actuate", t(1), cpu0);

    b.simple_edge(sense, classify, Time::ZERO);
    b.conditional_edge(classify, fast, c.is_true(), t(1));
    b.conditional_edge(classify, slow, c.is_false(), t(1));
    b.conditional_edge(fast, refine, d.is_true(), t(1));
    b.conditional_edge(fast, fallback, d.is_false(), t(1));
    b.simple_edge(refine, fuse, Time::ZERO);
    b.simple_edge(fallback, fuse, t(1));
    b.simple_edge(slow, fuse, t(1));
    b.mark_conjunction(fuse);
    b.simple_edge(fuse, act, Time::ZERO);

    let cpg = b.build(&arch).expect("sensor/actuator graph is valid");
    ExampleSystem::new(arch, cpg, Time::new(1))
}

/// The smallest interesting conditional system: one disjunction, two
/// alternative branches on different processors, one conjunction.
///
/// Useful as a quick-start example and in unit tests of downstream crates.
#[must_use]
pub fn diamond() -> ExampleSystem {
    let arch = Architecture::builder()
        .processor("cpu0")
        .processor("cpu1")
        .bus("bus")
        .build()
        .expect("architecture is valid");
    let cpu0 = arch.pe_by_name("cpu0").expect("cpu0 exists");
    let cpu1 = arch.pe_by_name("cpu1").expect("cpu1 exists");

    let mut b = CpgBuilder::new();
    let c = b.condition("C");
    let t = Time::new;
    let root = b.process("decide", t(2), cpu0);
    let hot = b.process("hot", t(4), cpu1);
    let cold = b.process("cold", t(3), cpu0);
    let join = b.process("join", t(1), cpu0);
    b.conditional_edge(root, hot, c.is_true(), t(1));
    b.conditional_edge(root, cold, c.is_false(), Time::ZERO);
    b.simple_edge(hot, join, t(1));
    b.simple_edge(cold, join, Time::ZERO);
    b.mark_conjunction(join);

    let cpg = b.build(&arch).expect("diamond graph is valid");
    ExampleSystem::new(arch, cpg, Time::new(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cube;
    use crate::tracks::enumerate_tracks;

    #[test]
    fn fig1_has_the_published_process_counts() {
        let system = fig1();
        assert_eq!(system.unexpanded().ordinary_processes().count(), 17);
        assert_eq!(system.cpg().ordinary_processes().count(), 17);
        // The paper inserts communication processes P18..P31: fourteen of them.
        assert_eq!(system.cpg().communication_processes().count(), 14);
        assert_eq!(system.cpg().num_conditions(), 3);
        assert_eq!(system.broadcast_time(), Time::new(1));
    }

    #[test]
    fn fig1_has_six_alternative_paths_like_fig2() {
        let system = fig1();
        let tracks = enumerate_tracks(system.cpg());
        assert_eq!(tracks.len(), 6);
        // K is determined only when D holds: 4 three-condition labels and 2
        // two-condition labels.
        let three = tracks.iter().filter(|t| t.label().len() == 3).count();
        let two = tracks.iter().filter(|t| t.label().len() == 2).count();
        assert_eq!(three, 4);
        assert_eq!(two, 2);
    }

    #[test]
    fn fig1_guards_match_the_paper() {
        let system = fig1();
        let cpg = system.cpg();
        let c = system.condition("C").unwrap();
        let d = system.condition("D").unwrap();
        let k = system.condition("K").unwrap();

        let by_name = |n: &str| cpg.process_by_name(n).unwrap();
        assert!(cpg.guard(by_name("P3")).is_true());
        assert!(cpg.guard(by_name("P17")).is_true());
        assert_eq!(
            cpg.guard(by_name("P5")).as_cube(),
            Some(Cube::from(c.is_true()))
        );
        let dk: Cube = [d.is_true(), k.is_true()].into_iter().collect();
        assert_eq!(cpg.guard(by_name("P14")).as_cube(), Some(dk));
        // Disjunction processes.
        assert_eq!(cpg.disjunction_of(c), by_name("P2"));
        assert_eq!(cpg.disjunction_of(d), by_name("P11"));
        assert_eq!(cpg.disjunction_of(k), by_name("P12"));
    }

    #[test]
    fn fig1_mapping_matches_the_paper() {
        let system = fig1();
        let cpg = system.cpg();
        let arch = system.arch();
        let pe_of = |n: &str| {
            let id = cpg.process_by_name(n).unwrap();
            arch.pe(cpg.mapping(id).unwrap()).name().to_owned()
        };
        for p in ["P1", "P2", "P4", "P6", "P9", "P10", "P13"] {
            assert_eq!(pe_of(p), "pe1", "{p} should be on pe1");
        }
        for p in ["P3", "P5", "P7", "P11", "P14", "P15", "P17"] {
            assert_eq!(pe_of(p), "pe2", "{p} should be on pe2");
        }
        for p in ["P8", "P12", "P16"] {
            assert_eq!(pe_of(p), "pe3", "{p} should be on pe3");
        }
        // All communications on the unique bus pe4.
        for comm in cpg.communication_processes() {
            assert_eq!(arch.pe(cpg.mapping(comm).unwrap()).name(), "pe4");
        }
    }

    #[test]
    fn fig1_execution_times_match_the_paper() {
        let system = fig1();
        let cpg = system.cpg();
        let expected = [
            ("P1", 3),
            ("P2", 4),
            ("P3", 12),
            ("P4", 5),
            ("P5", 3),
            ("P6", 5),
            ("P7", 3),
            ("P8", 4),
            ("P9", 5),
            ("P10", 5),
            ("P11", 6),
            ("P12", 6),
            ("P13", 8),
            ("P14", 2),
            ("P15", 6),
            ("P16", 4),
            ("P17", 2),
        ];
        for (name, time) in expected {
            let id = cpg.process_by_name(name).unwrap();
            assert_eq!(cpg.exec_time(id), Time::new(time), "{name}");
        }
        let comm_expected = [
            ("P1->P3", 1),
            ("P2->P5", 3),
            ("P3->P6", 2),
            ("P3->P10", 2),
            ("P4->P7", 3),
            ("P6->P8", 3),
            ("P7->P10", 2),
            ("P8->P10", 2),
            ("P11->P12", 1),
            ("P11->P13", 2),
            ("P12->P14", 1),
            ("P12->P15", 3),
            ("P13->P17", 2),
            ("P16->P17", 2),
        ];
        for (name, time) in comm_expected {
            let id = cpg.process_by_name(name).unwrap();
            assert_eq!(cpg.exec_time(id), Time::new(time), "{name}");
        }
    }

    #[test]
    fn sensor_actuator_has_three_tracks() {
        let system = sensor_actuator();
        let tracks = enumerate_tracks(system.cpg());
        // D is only determined on the C branch: C&D, C&!D, !C.
        assert_eq!(tracks.len(), 3);
        assert!(system.condition("C").is_some());
        assert!(system.condition("nope").is_none());
    }

    #[test]
    fn diamond_is_expanded_and_small() {
        let system = diamond();
        assert_eq!(system.cpg().ordinary_processes().count(), 4);
        assert!(system.cpg().communication_processes().count() >= 1);
        assert_eq!(enumerate_tracks(system.cpg()).len(), 2);
    }
}
