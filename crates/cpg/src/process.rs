//! Processes (nodes) of a conditional process graph.

use std::fmt;

use cpg_arch::{PeId, Time};

use crate::cond::{CondId, Guard};

/// Identifier of a process inside a [`Cpg`](crate::Cpg).
///
/// # Example
///
/// ```
/// use cpg::ProcessId;
/// let p = ProcessId::from_index(7);
/// assert_eq!(p.index(), 7);
/// assert_eq!(p.to_string(), "P7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// The position of this process inside its graph.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Creates an identifier from a raw index.
    ///
    /// Prefer obtaining identifiers from builder/graph queries; this exists for
    /// tests and serialization-style use cases.
    #[must_use]
    pub const fn from_index(index: usize) -> Self {
        ProcessId(index)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The role a process plays in the conditional process graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessKind {
    /// The dummy first process of the polar graph (zero execution time).
    Source,
    /// The dummy last process of the polar graph (zero execution time).
    Sink,
    /// An "ordinary" process specified by the designer, mapped to a processor
    /// or hardware element.
    Ordinary,
    /// A communication process inserted on an edge whose endpoints are mapped
    /// to different processing elements; mapped to a bus.
    Communication,
}

impl ProcessKind {
    /// `true` for the dummy source/sink nodes of the polar graph.
    #[must_use]
    pub const fn is_dummy(self) -> bool {
        matches!(self, ProcessKind::Source | ProcessKind::Sink)
    }

    /// `true` for communication processes.
    #[must_use]
    pub const fn is_communication(self) -> bool {
        matches!(self, ProcessKind::Communication)
    }
}

impl fmt::Display for ProcessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            ProcessKind::Source => "source",
            ProcessKind::Sink => "sink",
            ProcessKind::Ordinary => "process",
            ProcessKind::Communication => "communication",
        };
        f.write_str(label)
    }
}

/// A process of the conditional process graph.
///
/// Every process carries its worst-case execution time, its mapping to a
/// processing element (`None` only for the dummy source/sink), the condition
/// it computes when it is a disjunction process, and — after graph
/// construction — its guard `X_Pi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    pub(crate) name: String,
    pub(crate) kind: ProcessKind,
    pub(crate) exec_time: Time,
    pub(crate) mapping: Option<PeId>,
    pub(crate) computes: Option<CondId>,
    pub(crate) guard: Guard,
    pub(crate) is_conjunction: bool,
}

impl Process {
    /// The designer-given name of the process.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The role of the process (source, sink, ordinary, communication).
    #[must_use]
    pub const fn kind(&self) -> ProcessKind {
        self.kind
    }

    /// The worst-case execution time `t_Pi` (communication time for
    /// communication processes, zero for the dummy source/sink).
    #[must_use]
    pub const fn exec_time(&self) -> Time {
        self.exec_time
    }

    /// The processing element the process is mapped to (`None` for the dummy
    /// source and sink, which consume no resource).
    #[must_use]
    pub const fn mapping(&self) -> Option<PeId> {
        self.mapping
    }

    /// The condition computed by this process when it is a disjunction
    /// process.
    #[must_use]
    pub const fn computes(&self) -> Option<CondId> {
        self.computes
    }

    /// `true` when the process is a disjunction process (has conditional
    /// output edges and therefore computes a condition).
    #[must_use]
    pub const fn is_disjunction(&self) -> bool {
        self.computes.is_some()
    }

    /// `true` when the process is a conjunction process (alternative paths
    /// meet at it; it is activated as soon as the inputs of one alternative
    /// path have arrived).
    #[must_use]
    pub const fn is_conjunction(&self) -> bool {
        self.is_conjunction
    }

    /// The guard `X_Pi`: the necessary condition for the process to be
    /// activated during an execution of the system.
    #[must_use]
    pub fn guard(&self) -> &Guard {
        &self.guard
    }
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, t={})", self.name, self.kind, self.exec_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_round_trip() {
        let id = ProcessId::from_index(12);
        assert_eq!(id.index(), 12);
        assert_eq!(id.to_string(), "P12");
    }

    #[test]
    fn kind_classification() {
        assert!(ProcessKind::Source.is_dummy());
        assert!(ProcessKind::Sink.is_dummy());
        assert!(!ProcessKind::Ordinary.is_dummy());
        assert!(ProcessKind::Communication.is_communication());
        assert!(!ProcessKind::Ordinary.is_communication());
    }

    #[test]
    fn kind_display() {
        assert_eq!(ProcessKind::Ordinary.to_string(), "process");
        assert_eq!(ProcessKind::Communication.to_string(), "communication");
    }
}
