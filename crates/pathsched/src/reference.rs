//! Naive reference implementation of the list scheduler, kept as an oracle
//! for differential testing of the indexed core.
//!
//! This module preserves the original, straightforward serial
//! schedule-generation scheme: `HashMap`-keyed state and a full O(n²) rescan
//! of the remaining jobs at every commit. It is compiled only for tests
//! (`cfg(test)`) and for consumers that enable the `test-util` feature; it is
//! **not** part of the supported API surface.
//!
//! Semantically it implements exactly the same (fixed) lock handling as the
//! production [`TrackContext`](crate::TrackContext) core — locked broadcasts
//! keep the bus their lock pins (table provenance) or the bus assigned by the
//! original schedule, locked intervals are reserved on the correct resource,
//! and slipped locks are recorded — so any divergence between the two
//! implementations flags a defect in the indexed data structures, not an
//! intentional behaviour change. Unlike the production core it allocates its
//! state fresh per call (no [`RunScratch`](crate::RunScratch) arena), which
//! makes it a second, independent oracle for the scratch-reuse contract: a
//! reused arena must keep matching these from-scratch schedules.

use std::collections::HashMap;

use cpg::{CondId, Cpg, Cube, Track};
use cpg_arch::{Architecture, PeId, Time};

use crate::calendar::Calendar;
use crate::job::{Job, ScheduledJob};
use crate::schedule::{PathSchedule, SlippedLock};

/// A locked activation time and, when the lock carries table provenance, the
/// resource it pins the job to — the map-based mirror of
/// [`LockSet`](crate::LockSet) entries.
pub type LockedStart = (Time, Option<PeId>);

/// Schedules one alternative path with the partial-critical-path priority,
/// rescanning the remaining jobs at every commit.
#[must_use]
pub fn schedule_track(
    cpg: &Cpg,
    arch: &Architecture,
    broadcast_time: Time,
    track: &Track,
) -> PathSchedule {
    let priorities = critical_path_priorities(cpg, track);
    run(
        cpg,
        arch,
        broadcast_time,
        track,
        &priorities,
        &HashMap::new(),
        None,
    )
}

/// Re-schedules a path around the locked activation times, preserving the
/// relative order (and, for broadcasts, the pinned or original bus) of
/// `original`.
#[must_use]
pub fn reschedule(
    cpg: &Cpg,
    arch: &Architecture,
    broadcast_time: Time,
    track: &Track,
    original: &PathSchedule,
    locks: &HashMap<Job, LockedStart>,
) -> PathSchedule {
    // Priority: earlier original start  =>  scheduled earlier.
    let priorities: HashMap<Job, u64> = original
        .jobs()
        .iter()
        .map(|sj| (sj.job(), u64::MAX - sj.start().as_u64()))
        .collect();
    run(
        cpg,
        arch,
        broadcast_time,
        track,
        &priorities,
        locks,
        Some(original),
    )
}

/// Partial-critical-path priorities of the track's jobs.
fn critical_path_priorities(cpg: &Cpg, track: &Track) -> HashMap<Job, u64> {
    let mut lengths: HashMap<cpg::ProcessId, u64> = HashMap::new();
    for &pid in cpg.topological_order().iter().rev() {
        if !track.contains(pid) {
            continue;
        }
        let downstream = cpg
            .out_edges(pid)
            .filter(|edge| {
                track.contains(edge.to())
                    && edge
                        .condition()
                        .is_none_or(|lit| track.label().contains(lit))
            })
            .filter_map(|edge| lengths.get(&edge.to()).copied())
            .max()
            .unwrap_or(0);
        lengths.insert(pid, downstream + cpg.exec_time(pid).as_u64());
    }
    let mut priorities: HashMap<Job, u64> = lengths
        .into_iter()
        .map(|(pid, len)| (Job::Process(pid), len))
        .collect();
    for cond in track.determined_conditions() {
        priorities.insert(Job::Broadcast(cond), u64::MAX);
    }
    priorities
}

/// The resource a locked job occupies: the mapping for processes; for
/// broadcasts the bus the lock pins, then the bus assigned by the original
/// schedule, then the first broadcast bus.
fn locked_pe(
    cpg: &Cpg,
    broadcast_buses: &[PeId],
    original: Option<&PathSchedule>,
    job: Job,
    pinned: Option<PeId>,
) -> Option<PeId> {
    match job {
        Job::Process(pid) => cpg.mapping(pid),
        Job::Broadcast(_) => pinned
            .or_else(|| {
                original
                    .and_then(|o| o.entry(job))
                    .and_then(ScheduledJob::pe)
            })
            .or_else(|| broadcast_buses.first().copied()),
    }
}

/// Serial schedule-generation scheme: commits eligible jobs in priority order
/// to the earliest feasible slot of their resource.
#[allow(clippy::too_many_lines)]
fn run(
    cpg: &Cpg,
    arch: &Architecture,
    broadcast_time: Time,
    track: &Track,
    priorities: &HashMap<Job, u64>,
    locks: &HashMap<Job, LockedStart>,
    original: Option<&PathSchedule>,
) -> PathSchedule {
    let needs_broadcast =
        arch.computation_elements().count() > 1 && arch.broadcast_buses().count() > 0;
    let broadcast_buses: Vec<PeId> = arch.broadcast_buses().collect();
    let duration_of = |job: Job| match job {
        Job::Process(pid) => cpg.exec_time(pid),
        Job::Broadcast(_) => broadcast_time,
    };

    // The jobs of this path.
    let mut jobs: Vec<Job> = track.processes().iter().map(|&p| Job::Process(p)).collect();
    if needs_broadcast {
        jobs.extend(track.determined_conditions().map(Job::Broadcast));
    }

    // Dependencies: a process waits for every input it actually receives on
    // this path; a broadcast waits for its disjunction process.
    let mut preds: HashMap<Job, Vec<Job>> = HashMap::with_capacity(jobs.len());
    for &job in &jobs {
        let list = match job {
            Job::Process(pid) => cpg
                .in_edges(pid)
                .filter(|edge| {
                    track.contains(edge.from())
                        && edge
                            .condition()
                            .is_none_or(|lit| track.label().contains(lit))
                })
                .map(|edge| Job::Process(edge.from()))
                .collect(),
            Job::Broadcast(cond) => vec![Job::Process(cpg.disjunction_of(cond))],
        };
        preds.insert(job, list);
    }

    // Guard availability: cheapest guard cube satisfied on this path.
    let guard_requirements: HashMap<Job, Vec<CondId>> = jobs
        .iter()
        .map(|&job| {
            let guard = match job {
                Job::Process(pid) => cpg.guard(pid),
                Job::Broadcast(cond) => cpg.guard(cpg.disjunction_of(cond)),
            };
            let cube = guard
                .cubes()
                .iter()
                .filter(|cube| track.label().implies(cube))
                .min_by_key(|cube| cube.len())
                .copied()
                .unwrap_or(Cube::top());
            (job, cube.conditions().collect::<Vec<_>>())
        })
        .collect();

    // Exclusive-resource calendars, pre-reserving the locked jobs on the
    // resource they actually occupy. Locks for jobs that are not part of
    // this track are ignored: processes of other alternative paths never
    // execute on this one, so their tabled times must not occupy resources
    // here.
    let mut calendars: HashMap<PeId, Calendar> = HashMap::new();
    for (&job, &(start, pinned)) in locks {
        if !jobs.contains(&job) {
            continue;
        }
        if let Some(pe) = locked_pe(cpg, &broadcast_buses, original, job, pinned) {
            if arch.is_exclusive(pe) {
                calendars
                    .entry(pe)
                    .or_default()
                    .reserve(start, duration_of(job));
            }
        }
    }

    let mut scheduled: HashMap<Job, ScheduledJob> = HashMap::with_capacity(jobs.len());
    let mut slipped: Vec<SlippedLock> = Vec::new();
    let mut remaining: Vec<Job> = jobs.clone();

    while !remaining.is_empty() {
        // Eligible jobs: all predecessors committed.
        let mut best: Option<(u64, Job)> = None;
        for &job in &remaining {
            let eligible = preds[&job].iter().all(|p| scheduled.contains_key(p));
            if !eligible {
                continue;
            }
            let priority = priorities.get(&job).copied().unwrap_or(0);
            let better = match best {
                None => true,
                Some((bp, bj)) => priority > bp || (priority == bp && job < bj),
            };
            if better {
                best = Some((priority, job));
            }
        }
        let (_, job) = best.expect("acyclic graphs always have an eligible job");
        remaining.retain(|&j| j != job);

        let mut data_ready = preds[&job]
            .iter()
            .map(|p| scheduled[p].end())
            .max()
            .unwrap_or(Time::ZERO);
        // The guard of the job must be decidable on its processing element
        // before it can be activated.
        if needs_broadcast {
            let local_pe = match job {
                Job::Process(pid) => cpg.mapping(pid),
                Job::Broadcast(_) => None,
            };
            for &cond in &guard_requirements[&job] {
                data_ready = data_ready.max(condition_available(cpg, &scheduled, cond, local_pe));
            }
        }
        let duration = duration_of(job);
        let entry = if let Some(&(lock, pinned)) = locks.get(&job) {
            // Locked jobs keep the activation time fixed in the table; a
            // pushed lock slips, is recorded, and its real interval is
            // reserved.
            let start = lock.max(data_ready);
            let pe = locked_pe(cpg, &broadcast_buses, original, job, pinned);
            if start != lock {
                slipped.push(SlippedLock {
                    job,
                    intended: lock,
                    actual: start,
                });
                if let Some(pe) = pe {
                    if arch.is_exclusive(pe) {
                        calendars.entry(pe).or_default().reserve(start, duration);
                    }
                }
            }
            ScheduledJob {
                job,
                start,
                end: start + duration,
                pe,
            }
        } else {
            let fit = |pe: PeId| -> Time {
                if arch.is_exclusive(pe) {
                    calendars
                        .get(&pe)
                        .map_or(data_ready, |c| c.earliest_fit(data_ready, duration))
                } else {
                    data_ready
                }
            };
            let placement = match job {
                Job::Process(pid) => cpg.mapping(pid).map(|pe| (pe, fit(pe))),
                Job::Broadcast(_) => broadcast_buses
                    .iter()
                    .map(|&bus| (bus, fit(bus)))
                    .min_by_key(|&(bus, start)| (start, bus)),
            };
            match placement {
                Some((pe, start)) => {
                    if arch.is_exclusive(pe) {
                        calendars.entry(pe).or_default().reserve(start, duration);
                    }
                    ScheduledJob {
                        job,
                        start,
                        end: start + duration,
                        pe: Some(pe),
                    }
                }
                // Dummy source/sink: no resource.
                None => ScheduledJob {
                    job,
                    start: data_ready,
                    end: data_ready + duration,
                    pe: None,
                },
            }
        };
        scheduled.insert(job, entry);
    }

    let delay = scheduled
        .get(&Job::Process(cpg.sink()))
        .map_or(Time::ZERO, ScheduledJob::start);
    let mut resolutions: Vec<(CondId, Time)> = scheduled
        .values()
        .filter_map(|sj| {
            let pid = sj.job().as_process()?;
            let cond = cpg.process(pid).computes()?;
            Some((cond, sj.end()))
        })
        .collect();
    resolutions.sort_unstable_by_key(|&(cond, time)| (time, cond));
    PathSchedule::new_detailed(
        track.label(),
        scheduled.into_values().collect(),
        delay,
        resolutions,
        slipped,
        cpg.len(),
        cpg.num_conditions(),
    )
}

/// The moment the value of `cond` becomes available to the run-time scheduler
/// of `pe` under the partially built schedule.
fn condition_available(
    cpg: &Cpg,
    scheduled: &HashMap<Job, ScheduledJob>,
    cond: CondId,
    pe: Option<PeId>,
) -> Time {
    let disjunction = cpg.disjunction_of(cond);
    let computed = scheduled
        .get(&Job::Process(disjunction))
        .map_or(Time::ZERO, ScheduledJob::end);
    match pe {
        Some(pe) if cpg.mapping(disjunction) == Some(pe) => computed,
        _ => scheduled
            .get(&Job::Broadcast(cond))
            .map_or(computed, ScheduledJob::end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{enumerate_tracks, examples};

    #[test]
    fn reference_agrees_with_the_indexed_core_on_the_examples() {
        // One scratch arena reused across every system, track and run: the
        // from-scratch reference doubles as the oracle for arena reuse.
        let mut scratch = crate::RunScratch::new();
        for system in [
            examples::diamond(),
            examples::sensor_actuator(),
            examples::fig1(),
        ] {
            let cpg = system.cpg();
            let arch = system.arch();
            let tau0 = system.broadcast_time();
            let scheduler = crate::ListScheduler::new(cpg, arch, tau0);
            let tracks = enumerate_tracks(cpg);
            for track in tracks.iter() {
                let ctx = scheduler.context(track);
                let fast = ctx.schedule_with(&mut scratch);
                let slow = schedule_track(cpg, arch, tau0, track);
                assert_eq!(fast, slow, "divergence on {}", track.label());

                // Reschedule with every other job locked at its original
                // start.
                let locks: HashMap<Job, Time> = fast
                    .jobs()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 2 == 0)
                    .map(|(_, sj)| (sj.job(), sj.start()))
                    .collect();
                let pinned: HashMap<Job, LockedStart> = locks
                    .iter()
                    .map(|(&job, &time)| (job, (time, None)))
                    .collect();
                let mut lock_set = scheduler.empty_locks();
                lock_set.extend(locks.iter().map(|(&job, &time)| (job, time)));
                let fast_adj = ctx.reschedule_with(&mut scratch, &fast, &lock_set);
                let slow_adj = reschedule(cpg, arch, tau0, track, &slow, &pinned);
                assert_eq!(fast_adj, slow_adj, "reschedule divergence");
            }
        }
    }
}
