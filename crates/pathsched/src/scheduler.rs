//! Resource-constrained list scheduling of a single alternative path.
//!
//! The paper schedules each alternative path of the conditional process graph
//! with a list-scheduling algorithm (reference [5] of the paper) before
//! merging the per-path schedules into the global schedule table. This module
//! implements that scheduler:
//!
//! * processes become *eligible* when all the inputs they actually receive on
//!   the current path have arrived;
//! * eligible processes are committed in priority order (partial critical
//!   path by default) to the earliest gap on their mapped resource;
//! * programmable processors and buses execute one job at a time, hardware
//!   processors execute any number of jobs in parallel;
//! * after each disjunction process terminates, the value of its condition is
//!   broadcast on the first bus that becomes available, occupying it for `τ0`
//!   time units.
//!
//! The same engine re-schedules a path with some activation times *locked*
//! (the "adjustment" step of the merge algorithm), keeping the relative order
//! of the unlocked processes on every non-hardware processor.

use std::collections::HashMap;

use cpg::{CondId, Cpg, Cube, ProcessId, Track, TrackSet};
use cpg_arch::{Architecture, PeId, Time};

use crate::job::{Job, ScheduledJob};
use crate::schedule::PathSchedule;

/// Occupancy calendar of one exclusive resource (processor or bus).
#[derive(Debug, Clone, Default)]
struct Calendar {
    /// Reserved intervals, kept sorted by start time.
    intervals: Vec<(Time, Time)>,
}

impl Calendar {
    /// Earliest start `>= after` at which a job of length `duration` fits
    /// without overlapping a reserved interval.
    fn earliest_fit(&self, after: Time, duration: Time) -> Time {
        let mut candidate = after;
        for &(start, end) in &self.intervals {
            if candidate + duration <= start {
                break;
            }
            if end > candidate {
                candidate = end;
            }
        }
        candidate
    }

    /// Reserves `[start, start + duration)`.
    fn reserve(&mut self, start: Time, duration: Time) {
        if duration.is_zero() {
            return;
        }
        let end = start + duration;
        let pos = self
            .intervals
            .partition_point(|&(existing, _)| existing < start);
        self.intervals.insert(pos, (start, end));
    }
}

/// List scheduler for the alternative paths of a conditional process graph.
///
/// # Example
///
/// ```
/// use cpg::{enumerate_tracks, examples};
/// use cpg_path_sched::ListScheduler;
///
/// let system = examples::fig1();
/// let tracks = enumerate_tracks(system.cpg());
/// let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
///
/// let schedules = scheduler.schedule_all(&tracks);
/// assert_eq!(schedules.len(), 6);
/// // Every schedule respects dependencies and resource exclusiveness.
/// for (track, schedule) in tracks.iter().zip(&schedules) {
///     assert!(schedule.verify(system.cpg(), system.arch()).is_ok());
///     assert_eq!(schedule.label(), track.label());
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ListScheduler<'a> {
    cpg: &'a Cpg,
    arch: &'a Architecture,
    broadcast_time: Time,
}

impl<'a> ListScheduler<'a> {
    /// Creates a scheduler for the given graph, architecture and condition
    /// broadcast time `τ0`.
    #[must_use]
    pub fn new(cpg: &'a Cpg, arch: &'a Architecture, broadcast_time: Time) -> Self {
        ListScheduler {
            cpg,
            arch,
            broadcast_time,
        }
    }

    /// The graph being scheduled.
    #[must_use]
    pub fn cpg(&self) -> &'a Cpg {
        self.cpg
    }

    /// The target architecture.
    #[must_use]
    pub fn arch(&self) -> &'a Architecture {
        self.arch
    }

    /// The condition broadcast time `τ0`.
    #[must_use]
    pub fn broadcast_time(&self) -> Time {
        self.broadcast_time
    }

    /// Schedules one alternative path with the partial-critical-path priority
    /// (longest remaining path to the sink first).
    #[must_use]
    pub fn schedule_track(&self, track: &Track) -> PathSchedule {
        let priorities = self.critical_path_priorities(track);
        self.run(track, &priorities, &HashMap::new())
    }

    /// Schedules every alternative path of a track set, in track order.
    #[must_use]
    pub fn schedule_all(&self, tracks: &TrackSet) -> Vec<PathSchedule> {
        tracks.iter().map(|t| self.schedule_track(t)).collect()
    }

    /// Re-schedules a path after some activation times have been fixed in the
    /// schedule table (the *adjustment* step of the merge algorithm).
    ///
    /// Locked jobs keep exactly their fixed start time; every other job moves
    /// to the earliest moment allowed by data dependencies and resource
    /// availability, and the relative priority (original activation order) of
    /// unlocked jobs on each resource is preserved, as required by Section 5.1
    /// of the paper.
    #[must_use]
    pub fn reschedule(
        &self,
        track: &Track,
        original: &PathSchedule,
        locks: &HashMap<Job, Time>,
    ) -> PathSchedule {
        // Priority: earlier original start  =>  scheduled earlier.
        let priorities: HashMap<Job, u64> = original
            .jobs()
            .iter()
            .map(|sj| (sj.job(), u64::MAX - sj.start().as_u64()))
            .collect();
        self.run(track, &priorities, locks)
    }

    /// Partial-critical-path priorities: the length of the longest chain of
    /// execution times from each job to the sink, restricted to the processes
    /// active on `track`. Condition broadcasts get the highest priority so
    /// that they are issued as soon as their disjunction process terminates.
    #[must_use]
    pub fn critical_path_priorities(&self, track: &Track) -> HashMap<Job, u64> {
        let mut lengths: HashMap<ProcessId, u64> = HashMap::new();
        for &pid in self.cpg.topological_order().iter().rev() {
            if !track.contains(pid) {
                continue;
            }
            let downstream = self
                .cpg
                .out_edges(pid)
                .filter(|edge| {
                    track.contains(edge.to())
                        && edge
                            .condition()
                            .is_none_or(|lit| track.label().contains(lit))
                })
                .filter_map(|edge| lengths.get(&edge.to()).copied())
                .max()
                .unwrap_or(0);
            lengths.insert(pid, downstream + self.cpg.exec_time(pid).as_u64());
        }
        let mut priorities: HashMap<Job, u64> = lengths
            .into_iter()
            .map(|(pid, len)| (Job::Process(pid), len))
            .collect();
        for cond in track.determined_conditions() {
            priorities.insert(Job::Broadcast(cond), u64::MAX);
        }
        priorities
    }

    /// Serial schedule-generation scheme: commits eligible jobs in priority
    /// order to the earliest feasible slot of their resource.
    fn run(
        &self,
        track: &Track,
        priorities: &HashMap<Job, u64>,
        locks: &HashMap<Job, Time>,
    ) -> PathSchedule {
        let cpg = self.cpg;
        let needs_broadcast =
            self.arch.computation_elements().count() > 1 && self.arch.broadcast_buses().count() > 0;
        let broadcast_buses: Vec<PeId> = self.arch.broadcast_buses().collect();

        // The jobs of this path.
        let mut jobs: Vec<Job> = track.processes().iter().map(|&p| Job::Process(p)).collect();
        if needs_broadcast {
            jobs.extend(track.determined_conditions().map(Job::Broadcast));
        }

        // Dependencies: a process waits for every input it receives on this
        // path; a broadcast waits for its disjunction process.
        let mut preds: HashMap<Job, Vec<Job>> = HashMap::with_capacity(jobs.len());
        for &job in &jobs {
            let list = match job {
                Job::Process(pid) => cpg
                    .in_edges(pid)
                    .filter(|edge| {
                        track.contains(edge.from())
                            && edge
                                .condition()
                                .is_none_or(|lit| track.label().contains(lit))
                    })
                    .map(|edge| Job::Process(edge.from()))
                    .collect(),
                Job::Broadcast(cond) => vec![Job::Process(cpg.disjunction_of(cond))],
            };
            preds.insert(job, list);
        }

        // Guard availability: the run-time scheduler of a processing element
        // can only activate a job once it can evaluate the job's guard, i.e.
        // once every condition the guard depends on is known locally (either
        // computed on the same element or received through a broadcast). The
        // per-job requirement is the cheapest guard cube satisfied on this
        // path.
        let guard_requirements: HashMap<Job, Vec<CondId>> = jobs
            .iter()
            .map(|&job| {
                let guard = match job {
                    Job::Process(pid) => cpg.guard(pid),
                    Job::Broadcast(cond) => cpg.guard(cpg.disjunction_of(cond)),
                };
                let cube = guard
                    .cubes()
                    .iter()
                    .filter(|cube| track.label().implies(cube))
                    .min_by_key(|cube| cube.len())
                    .copied()
                    .unwrap_or(Cube::top());
                (job, cube.conditions().collect::<Vec<_>>())
            })
            .collect();

        // Exclusive-resource calendars, pre-reserving the locked jobs.
        let mut calendars: HashMap<PeId, Calendar> = HashMap::new();
        for (&job, &start) in locks {
            if let Some(pe) = self.pe_of(job, &broadcast_buses, None) {
                if self.arch.is_exclusive(pe) {
                    calendars
                        .entry(pe)
                        .or_default()
                        .reserve(start, self.duration_of(job));
                }
            }
        }

        let mut scheduled: HashMap<Job, ScheduledJob> = HashMap::with_capacity(jobs.len());
        let mut remaining: Vec<Job> = jobs.clone();

        while !remaining.is_empty() {
            // Eligible jobs: all predecessors committed.
            let mut best: Option<(u64, Job)> = None;
            for &job in &remaining {
                let eligible = preds[&job].iter().all(|p| scheduled.contains_key(p));
                if !eligible {
                    continue;
                }
                let priority = priorities.get(&job).copied().unwrap_or(0);
                let better = match best {
                    None => true,
                    Some((bp, bj)) => priority > bp || (priority == bp && job < bj),
                };
                if better {
                    best = Some((priority, job));
                }
            }
            let (_, job) = best.expect("acyclic graphs always have an eligible job");
            remaining.retain(|&j| j != job);

            let mut data_ready = preds[&job]
                .iter()
                .map(|p| scheduled[p].end())
                .max()
                .unwrap_or(Time::ZERO);
            // The guard of the job must be decidable on its processing
            // element before it can be activated (requirement 4 of the
            // paper's Section 3, applied while building the path schedule).
            if needs_broadcast {
                let local_pe = match job {
                    Job::Process(pid) => cpg.mapping(pid),
                    Job::Broadcast(_) => None,
                };
                for &cond in &guard_requirements[&job] {
                    data_ready =
                        data_ready.max(condition_available(cpg, &scheduled, cond, local_pe));
                }
            }
            let duration = self.duration_of(job);
            let entry = if let Some(&lock) = locks.get(&job) {
                // Locked jobs keep the activation time fixed in the table.
                let start = lock.max(data_ready);
                let pe = self.pe_of(job, &broadcast_buses, Some(start));
                ScheduledJob {
                    job,
                    start,
                    end: start + duration,
                    pe,
                }
            } else {
                match self.placement(job, &broadcast_buses, data_ready, duration, &calendars) {
                    Some((pe, start)) => {
                        if self.arch.is_exclusive(pe) {
                            calendars.entry(pe).or_default().reserve(start, duration);
                        }
                        ScheduledJob {
                            job,
                            start,
                            end: start + duration,
                            pe: Some(pe),
                        }
                    }
                    // Dummy source/sink: no resource.
                    None => ScheduledJob {
                        job,
                        start: data_ready,
                        end: data_ready + duration,
                        pe: None,
                    },
                }
            };
            scheduled.insert(job, entry);
        }

        let delay = scheduled
            .get(&Job::Process(cpg.sink()))
            .map_or(Time::ZERO, ScheduledJob::start);
        PathSchedule::new(track.label(), scheduled.into_values().collect(), delay)
    }

    /// Duration of a job.
    fn duration_of(&self, job: Job) -> Time {
        match job {
            Job::Process(pid) => self.cpg.exec_time(pid),
            Job::Broadcast(_) => self.broadcast_time,
        }
    }

    /// Resource of a job. Broadcasts without a decided start time use the
    /// first broadcast bus (good enough for lock pre-reservation); with a
    /// start time they keep that choice.
    fn pe_of(&self, job: Job, broadcast_buses: &[PeId], _at: Option<Time>) -> Option<PeId> {
        match job {
            Job::Process(pid) => self.cpg.mapping(pid),
            Job::Broadcast(_) => broadcast_buses.first().copied(),
        }
    }

    /// Chooses the resource and earliest feasible start for an unlocked job.
    fn placement(
        &self,
        job: Job,
        broadcast_buses: &[PeId],
        data_ready: Time,
        duration: Time,
        calendars: &HashMap<PeId, Calendar>,
    ) -> Option<(PeId, Time)> {
        let fit = |pe: PeId| -> Time {
            if self.arch.is_exclusive(pe) {
                calendars
                    .get(&pe)
                    .map_or(data_ready, |c| c.earliest_fit(data_ready, duration))
            } else {
                data_ready
            }
        };
        match job {
            Job::Process(pid) => self.cpg.mapping(pid).map(|pe| (pe, fit(pe))),
            Job::Broadcast(_) => broadcast_buses
                .iter()
                .map(|&bus| (bus, fit(bus)))
                .min_by_key(|&(bus, start)| (start, bus))
                .or(None),
        }
    }
}

/// The moment the value of `cond` becomes available to the run-time scheduler
/// of `pe` under the (partially built) schedule `scheduled`: the completion of
/// the disjunction process on its own processing element, the completion of
/// the broadcast everywhere else. Jobs without a resource (`pe == None`, i.e.
/// condition broadcasts whose bus is chosen later, and the dummy processes)
/// conservatively use the broadcast completion as well.
fn condition_available(
    cpg: &Cpg,
    scheduled: &HashMap<Job, ScheduledJob>,
    cond: CondId,
    pe: Option<PeId>,
) -> Time {
    let disjunction = cpg.disjunction_of(cond);
    let computed = scheduled
        .get(&Job::Process(disjunction))
        .map_or(Time::ZERO, ScheduledJob::end);
    match pe {
        Some(pe) if cpg.mapping(disjunction) == Some(pe) => computed,
        _ => scheduled
            .get(&Job::Broadcast(cond))
            .map_or(computed, ScheduledJob::end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{enumerate_tracks, examples, Cube};

    #[test]
    fn calendar_finds_gaps_and_appends() {
        let mut cal = Calendar::default();
        cal.reserve(Time::new(10), Time::new(5));
        cal.reserve(Time::new(20), Time::new(5));
        // Fits before the first interval.
        assert_eq!(cal.earliest_fit(Time::ZERO, Time::new(5)), Time::ZERO);
        // Does not fit before, lands in the gap between the intervals.
        assert_eq!(cal.earliest_fit(Time::new(8), Time::new(5)), Time::new(15));
        // Too long for any gap: appended after the last interval.
        assert_eq!(cal.earliest_fit(Time::ZERO, Time::new(11)), Time::new(25));
        // Zero-length reservations are ignored.
        cal.reserve(Time::new(2), Time::ZERO);
        assert_eq!(cal.earliest_fit(Time::ZERO, Time::new(5)), Time::ZERO);
    }

    #[test]
    fn diamond_schedules_both_tracks_correctly() {
        let system = examples::diamond();
        let tracks = enumerate_tracks(system.cpg());
        let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            schedule.verify(system.cpg(), system.arch()).unwrap();
            assert_eq!(schedule.label(), track.label());
            assert!(schedule.delay() > Time::ZERO);
            // All processes of the track are scheduled.
            for &p in track.processes() {
                assert!(schedule.contains(Job::Process(p)), "{p} missing");
            }
            // One broadcast per determined condition.
            for cond in track.determined_conditions() {
                assert!(schedule.contains(Job::Broadcast(cond)));
            }
        }
    }

    #[test]
    fn fig1_path_delays_have_the_published_shape() {
        let system = examples::fig1();
        let tracks = enumerate_tracks(system.cpg());
        let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
        let schedules = scheduler.schedule_all(&tracks);
        assert_eq!(schedules.len(), 6);
        for (track, schedule) in tracks.iter().zip(&schedules) {
            schedule.verify(system.cpg(), system.arch()).unwrap();
            assert_eq!(schedule.label(), track.label());
        }
        // The paper's Fig. 2 reports per-path delays between 31 and 39 time
        // units; the reconstruction should land in the same region.
        let delays: Vec<u64> = schedules.iter().map(|s| s.delay().as_u64()).collect();
        let min = *delays.iter().min().unwrap();
        let max = *delays.iter().max().unwrap();
        assert!(
            (30..=50).contains(&max),
            "longest path delay {max} out of range"
        );
        assert!(
            min >= 20 && min <= max,
            "shortest path delay {min} out of range"
        );
    }

    #[test]
    fn broadcasts_follow_their_disjunction_process() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            for cond in track.determined_conditions() {
                let broadcast = schedule.entry(Job::Broadcast(cond)).unwrap();
                let disjunction = schedule
                    .end(Job::Process(cpg.disjunction_of(cond)))
                    .unwrap();
                assert!(broadcast.start() >= disjunction);
                assert_eq!(broadcast.duration(), system.broadcast_time());
                // Broadcasts use a bus.
                let bus = broadcast.pe().unwrap();
                assert!(system.arch().kind_of(bus).is_bus());
            }
        }
    }

    #[test]
    fn condition_known_earlier_on_the_computing_processor() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        let c = system.condition("C").unwrap();
        let track = tracks
            .iter()
            .find(|t| t.label().contains(c.is_true()))
            .unwrap();
        let schedule = scheduler.schedule_track(track);
        let own_pe = cpg.mapping(cpg.disjunction_of(c)).unwrap();
        let other_pe = system
            .arch()
            .computation_elements()
            .find(|&pe| pe != own_pe)
            .unwrap();
        let own = schedule.condition_known_at(cpg, c, own_pe).unwrap();
        let other = schedule.condition_known_at(cpg, c, other_pe).unwrap();
        assert!(
            own <= other,
            "own {own} should not be later than remote {other}"
        );
        assert!(other >= own + system.broadcast_time());
    }

    #[test]
    fn known_conditions_grow_monotonically_with_time() {
        let system = examples::sensor_actuator();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            for pe in system.arch().computation_elements() {
                let early = schedule.known_conditions(cpg, Some(pe), Time::ZERO);
                let late = schedule.known_conditions(cpg, Some(pe), Time::new(1_000));
                assert!(late.implies(&early));
                assert_eq!(late, track.label().retain(|_| true));
            }
        }
    }

    #[test]
    fn reschedule_with_locks_pins_the_locked_process() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        let track = &tracks.tracks()[0];
        let original = scheduler.schedule_track(track);

        // Lock the disjunction process three time units later than its
        // original start.
        let decide = cpg.process_by_name("decide").unwrap();
        let original_start = original.start(Job::Process(decide)).unwrap();
        let locked_start = original_start + Time::new(3);
        let mut locks = HashMap::new();
        locks.insert(Job::Process(decide), locked_start);

        let adjusted = scheduler.reschedule(track, &original, &locks);
        assert_eq!(adjusted.start(Job::Process(decide)), Some(locked_start));
        // Everything still valid, possibly longer.
        adjusted.verify(cpg, system.arch()).unwrap();
        assert!(adjusted.delay() >= original.delay());
    }

    #[test]
    fn reschedule_without_locks_reproduces_the_original_delay() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let original = scheduler.schedule_track(track);
            let again = scheduler.reschedule(track, &original, &HashMap::new());
            again.verify(cpg, system.arch()).unwrap();
            assert_eq!(again.delay(), original.delay());
        }
    }

    #[test]
    fn reschedule_with_all_jobs_locked_reproduces_the_original() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let original = scheduler.schedule_track(track);
            let locks: HashMap<Job, Time> = original.start_times();
            let adjusted = scheduler.reschedule(track, &original, &locks);
            for sj in original.jobs() {
                assert_eq!(adjusted.start(sj.job()), Some(sj.start()), "{}", sj.job());
            }
            assert_eq!(adjusted.delay(), original.delay());
        }
    }

    #[test]
    fn locking_a_process_later_only_delays_downstream_work() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        let track = &tracks.tracks()[0];
        let original = scheduler.schedule_track(track);
        // Lock an arbitrary mid-schedule process a bit later.
        let victim = original
            .jobs()
            .iter()
            .find(|sj| {
                sj.job()
                    .as_process()
                    .is_some_and(|p| !cpg.process(p).kind().is_dummy() && sj.start() > Time::ZERO)
            })
            .unwrap();
        let mut locks = HashMap::new();
        locks.insert(victim.job(), victim.start() + Time::new(4));
        let adjusted = scheduler.reschedule(track, &original, &locks);
        adjusted.verify(cpg, system.arch()).unwrap();
        assert_eq!(
            adjusted.start(victim.job()),
            Some(victim.start() + Time::new(4))
        );
        // The same set of jobs is scheduled.
        assert_eq!(adjusted.len(), original.len());
    }

    #[test]
    fn single_processor_architecture_serializes_everything() {
        use cpg::CpgBuilder;
        let arch = Architecture::builder().processor("solo").build().unwrap();
        let solo = arch.pe_by_name("solo").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let root = b.process("root", Time::new(2), solo);
        let x = b.process("x", Time::new(3), solo);
        let y = b.process("y", Time::new(4), solo);
        b.conditional_edge(root, x, c.is_true(), Time::ZERO);
        b.conditional_edge(root, y, c.is_false(), Time::ZERO);
        let cpg = b.build(&arch).unwrap();
        let tracks = enumerate_tracks(&cpg);
        let scheduler = ListScheduler::new(&cpg, &arch, Time::new(1));
        let s_true = scheduler.schedule_track(tracks.by_label(&Cube::from(c.is_true())).unwrap());
        // No broadcast jobs on a single-processor architecture.
        assert!(!s_true.jobs().iter().any(|j| j.job().is_broadcast()));
        assert_eq!(s_true.delay(), Time::new(5));
        let s_false = scheduler.schedule_track(tracks.by_label(&Cube::from(c.is_false())).unwrap());
        assert_eq!(s_false.delay(), Time::new(6));
    }

    #[test]
    fn hardware_processes_may_overlap() {
        use cpg::CpgBuilder;
        let arch = Architecture::builder()
            .processor("cpu")
            .hardware("asic")
            .bus("bus")
            .build()
            .unwrap();
        let cpu = arch.pe_by_name("cpu").unwrap();
        let asic = arch.pe_by_name("asic").unwrap();
        let mut b = CpgBuilder::new();
        let feed = b.process("feed", Time::new(1), cpu);
        let f1 = b.process("f1", Time::new(10), asic);
        let f2 = b.process("f2", Time::new(10), asic);
        b.simple_edge(feed, f1, Time::new(1));
        b.simple_edge(feed, f2, Time::new(1));
        let cpg = b.build(&arch).unwrap();
        let cpg = cpg::expand_communications(&cpg, &arch, cpg::BusPolicy::FirstBus).unwrap();
        let tracks = enumerate_tracks(&cpg);
        let scheduler = ListScheduler::new(&cpg, &arch, Time::new(1));
        let schedule = scheduler.schedule_track(&tracks.tracks()[0]);
        schedule.verify(&cpg, &arch).unwrap();
        let f1 = cpg.process_by_name("f1").unwrap();
        let f2 = cpg.process_by_name("f2").unwrap();
        let s1 = schedule.start(Job::Process(f1)).unwrap();
        let s2 = schedule.start(Job::Process(f2)).unwrap();
        // Both hardware processes run in parallel; the two bus transfers are
        // serialized, so the starts differ by exactly one communication.
        assert!(s1.as_u64().abs_diff(s2.as_u64()) <= 1);
        // The delay is far below the serialized 20+ units.
        assert!(schedule.delay() < Time::new(16));
    }

    #[test]
    fn zero_broadcast_time_still_orders_conditions_before_remote_consumers() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), Time::ZERO);
        let c = system.condition("C").unwrap();
        let track = tracks
            .iter()
            .find(|t| t.label().contains(c.is_true()))
            .unwrap();
        let schedule = scheduler.schedule_track(track);
        schedule.verify(cpg, system.arch()).unwrap();
        // `hot` has guard C and runs on the processor that does not compute
        // C: even with an instantaneous broadcast it cannot start before the
        // broadcast has been issued.
        let hot = cpg.process_by_name("hot").unwrap();
        let broadcast_done = schedule.end(Job::Broadcast(c)).unwrap();
        assert!(schedule.start(Job::Process(hot)).unwrap() >= broadcast_done);
    }

    #[test]
    fn guarded_processes_never_start_before_their_conditions_are_known_locally() {
        // The structural property behind requirement 4: in every per-path
        // schedule, a process whose guard depends on a condition starts only
        // after that condition is known on its own processing element.
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            for sj in schedule.jobs() {
                let Some(pid) = sj.job().as_process() else {
                    continue;
                };
                let Some(pe) = cpg.mapping(pid) else { continue };
                let guard_cube = cpg
                    .guard(pid)
                    .cubes()
                    .iter()
                    .filter(|cube| track.label().implies(cube))
                    .min_by_key(|cube| cube.len())
                    .copied()
                    .unwrap_or_else(Cube::top);
                for cond in guard_cube.conditions() {
                    let known = schedule.condition_known_at(cpg, cond, pe).unwrap();
                    assert!(
                        sj.start() >= known,
                        "{} starts at {} but {} is known on {} only at {}",
                        cpg.process(pid).name(),
                        sj.start(),
                        cpg.condition_name(cond),
                        system.arch().pe(pe).name(),
                        known
                    );
                }
            }
        }
    }

    #[test]
    fn condition_resolutions_are_time_ordered() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            let resolutions = schedule.condition_resolutions(cpg);
            assert_eq!(resolutions.len(), track.determined_conditions().count());
            for pair in resolutions.windows(2) {
                assert!(pair[0].1 <= pair[1].1);
            }
        }
    }
}
