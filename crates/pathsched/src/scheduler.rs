//! Resource-constrained list scheduling of a single alternative path.
//!
//! The paper schedules each alternative path of the conditional process graph
//! with a list-scheduling algorithm (reference [5] of the paper) before
//! merging the per-path schedules into the global schedule table. This module
//! implements that scheduler:
//!
//! * processes become *eligible* when all the inputs they actually receive on
//!   the current path have arrived;
//! * eligible processes are committed in priority order (partial critical
//!   path by default) to the earliest gap on their mapped resource;
//! * programmable processors and buses execute one job at a time, hardware
//!   processors execute any number of jobs in parallel;
//! * after each disjunction process terminates, the value of its condition is
//!   broadcast on the first bus that becomes available, occupying it for `τ0`
//!   time units.
//!
//! The same engine re-schedules a path with some activation times *locked*
//! (the "adjustment" step of the merge algorithm), keeping the relative order
//! of the unlocked processes on every non-hardware processor, the bus each
//! locked broadcast was originally assigned to, and reporting locks that
//! could not be honoured through [`PathSchedule::slipped_locks`].
//!
//! [`ListScheduler`] is a thin facade: all scheduling runs on the dense,
//! indexed per-track representation of [`TrackContext`](crate::TrackContext)
//! (see the `context` module), which precomputes adjacency, guard
//! requirements and priorities once per track and drives eligibility with a
//! binary-heap ready queue. Callers that schedule the same track repeatedly —
//! like the merge algorithm — should build the context once via
//! [`ListScheduler::context`] and reuse it, threading a
//! [`RunScratch`](crate::RunScratch) arena through the runs so the per-call
//! dense state is reused instead of reallocated.

use std::collections::HashMap;

use cpg::{Cpg, ProcessId, Track, TrackSet};
use cpg_arch::{Architecture, Time};

use crate::context::{LockSet, TrackContext};
use crate::job::Job;
use crate::schedule::PathSchedule;
use crate::scratch::RunScratch;

/// List scheduler for the alternative paths of a conditional process graph.
///
/// # Example
///
/// ```
/// use cpg::{enumerate_tracks, examples};
/// use cpg_path_sched::ListScheduler;
///
/// let system = examples::fig1();
/// let tracks = enumerate_tracks(system.cpg());
/// let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
///
/// let schedules = scheduler.schedule_all(&tracks);
/// assert_eq!(schedules.len(), 6);
/// // Every schedule respects dependencies and resource exclusiveness.
/// for (track, schedule) in tracks.iter().zip(&schedules) {
///     assert!(schedule.verify(system.cpg(), system.arch()).is_ok());
///     assert_eq!(schedule.label(), track.label());
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ListScheduler<'a> {
    cpg: &'a Cpg,
    arch: &'a Architecture,
    broadcast_time: Time,
}

impl<'a> ListScheduler<'a> {
    /// Creates a scheduler for the given graph, architecture and condition
    /// broadcast time `τ0`.
    #[must_use]
    pub fn new(cpg: &'a Cpg, arch: &'a Architecture, broadcast_time: Time) -> Self {
        ListScheduler {
            cpg,
            arch,
            broadcast_time,
        }
    }

    /// The graph being scheduled.
    #[must_use]
    pub fn cpg(&self) -> &'a Cpg {
        self.cpg
    }

    /// The target architecture.
    #[must_use]
    pub fn arch(&self) -> &'a Architecture {
        self.arch
    }

    /// The condition broadcast time `τ0`.
    #[must_use]
    pub fn broadcast_time(&self) -> Time {
        self.broadcast_time
    }

    /// Builds the reusable dense scheduling context of one track. Schedule
    /// and re-schedule the track through the returned context when the same
    /// track is scheduled more than once (the merge algorithm re-runs the
    /// scheduler at every back-step adjustment and conflict repair).
    #[must_use]
    pub fn context(&self, track: &Track) -> TrackContext<'a> {
        TrackContext::new(self.cpg, self.arch, self.broadcast_time, track)
    }

    /// An empty [`LockSet`] sized for this scheduler's graph.
    #[must_use]
    pub fn empty_locks(&self) -> LockSet {
        LockSet::for_graph(self.cpg)
    }

    /// Schedules one alternative path with the partial-critical-path priority
    /// (longest remaining path to the sink first).
    #[must_use]
    pub fn schedule_track(&self, track: &Track) -> PathSchedule {
        self.context(track).schedule()
    }

    /// Schedules every alternative path of a track set, in track order,
    /// reusing one scratch arena across all of them. (The merge algorithm
    /// parallelizes this fan-out itself, with one arena per worker.)
    #[must_use]
    pub fn schedule_all(&self, tracks: &TrackSet) -> Vec<PathSchedule> {
        let mut scratch = RunScratch::new();
        tracks
            .iter()
            .map(|t| self.context(t).schedule_with(&mut scratch))
            .collect()
    }

    /// Re-schedules a path after some activation times have been fixed in the
    /// schedule table (the *adjustment* step of the merge algorithm).
    ///
    /// Locked jobs keep exactly their fixed start time and, for condition
    /// broadcasts, the bus `original` assigned to them; every other job moves
    /// to the earliest moment allowed by data dependencies and resource
    /// availability, and the relative priority (original activation order) of
    /// unlocked jobs on each resource is preserved, as required by Section 5.1
    /// of the paper. Locks that data dependencies push past their fixed time
    /// are reported through [`PathSchedule::slipped_locks`]; locks for jobs
    /// that are not part of `track` are ignored (processes of other
    /// alternative paths never execute on this one).
    ///
    /// This convenience wrapper rebuilds the track context on every call;
    /// repeated rescheduling should go through [`ListScheduler::context`] and
    /// [`TrackContext::reschedule`].
    #[must_use]
    pub fn reschedule(
        &self,
        track: &Track,
        original: &PathSchedule,
        locks: &HashMap<Job, Time>,
    ) -> PathSchedule {
        let mut lock_set = self.empty_locks();
        lock_set.extend(locks.iter().map(|(&job, &time)| (job, time)));
        self.context(track).reschedule(original, &lock_set)
    }

    /// Partial-critical-path priorities: the length of the longest chain of
    /// execution times from each job to the sink, restricted to the processes
    /// active on `track`. Condition broadcasts get the highest priority so
    /// that they are issued as soon as their disjunction process terminates.
    #[must_use]
    pub fn critical_path_priorities(&self, track: &Track) -> HashMap<Job, u64> {
        let mut lengths: HashMap<ProcessId, u64> = HashMap::new();
        for &pid in self.cpg.topological_order().iter().rev() {
            if !track.contains(pid) {
                continue;
            }
            let downstream = self
                .cpg
                .out_edges(pid)
                .filter(|edge| {
                    track.contains(edge.to())
                        && edge
                            .condition()
                            .is_none_or(|lit| track.label().contains(lit))
                })
                .filter_map(|edge| lengths.get(&edge.to()).copied())
                .max()
                .unwrap_or(0);
            lengths.insert(pid, downstream + self.cpg.exec_time(pid).as_u64());
        }
        let mut priorities: HashMap<Job, u64> = lengths
            .into_iter()
            .map(|(pid, len)| (Job::Process(pid), len))
            .collect();
        for cond in track.determined_conditions() {
            priorities.insert(Job::Broadcast(cond), u64::MAX);
        }
        priorities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{enumerate_tracks, examples, Cube};

    #[test]
    fn diamond_schedules_both_tracks_correctly() {
        let system = examples::diamond();
        let tracks = enumerate_tracks(system.cpg());
        let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            schedule.verify(system.cpg(), system.arch()).unwrap();
            assert_eq!(schedule.label(), track.label());
            assert!(schedule.delay() > Time::ZERO);
            // All processes of the track are scheduled.
            for &p in track.processes() {
                assert!(schedule.contains(Job::Process(p)), "{p} missing");
            }
            // One broadcast per determined condition.
            for cond in track.determined_conditions() {
                assert!(schedule.contains(Job::Broadcast(cond)));
            }
        }
    }

    #[test]
    fn fig1_path_delays_have_the_published_shape() {
        let system = examples::fig1();
        let tracks = enumerate_tracks(system.cpg());
        let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
        let schedules = scheduler.schedule_all(&tracks);
        assert_eq!(schedules.len(), 6);
        for (track, schedule) in tracks.iter().zip(&schedules) {
            schedule.verify(system.cpg(), system.arch()).unwrap();
            assert_eq!(schedule.label(), track.label());
        }
        // The paper's Fig. 2 reports per-path delays between 31 and 39 time
        // units; the reconstruction should land in the same region.
        let delays: Vec<u64> = schedules.iter().map(|s| s.delay().as_u64()).collect();
        let min = *delays.iter().min().unwrap();
        let max = *delays.iter().max().unwrap();
        assert!(
            (30..=50).contains(&max),
            "longest path delay {max} out of range"
        );
        assert!(
            min >= 20 && min <= max,
            "shortest path delay {min} out of range"
        );
    }

    #[test]
    fn broadcasts_follow_their_disjunction_process() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            for cond in track.determined_conditions() {
                let broadcast = schedule.entry(Job::Broadcast(cond)).unwrap();
                let disjunction = schedule
                    .end(Job::Process(cpg.disjunction_of(cond)))
                    .unwrap();
                assert!(broadcast.start() >= disjunction);
                assert_eq!(broadcast.duration(), system.broadcast_time());
                // Broadcasts use a bus.
                let bus = broadcast.pe().unwrap();
                assert!(system.arch().kind_of(bus).is_bus());
            }
        }
    }

    #[test]
    fn condition_known_earlier_on_the_computing_processor() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        let c = system.condition("C").unwrap();
        let track = tracks
            .iter()
            .find(|t| t.label().contains(c.is_true()))
            .unwrap();
        let schedule = scheduler.schedule_track(track);
        let own_pe = cpg.mapping(cpg.disjunction_of(c)).unwrap();
        let other_pe = system
            .arch()
            .computation_elements()
            .find(|&pe| pe != own_pe)
            .unwrap();
        let own = schedule.condition_known_at(cpg, c, own_pe).unwrap();
        let other = schedule.condition_known_at(cpg, c, other_pe).unwrap();
        assert!(
            own <= other,
            "own {own} should not be later than remote {other}"
        );
        assert!(other >= own + system.broadcast_time());
    }

    #[test]
    fn known_conditions_grow_monotonically_with_time() {
        let system = examples::sensor_actuator();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            for pe in system.arch().computation_elements() {
                let early = schedule.known_conditions(cpg, Some(pe), Time::ZERO);
                let late = schedule.known_conditions(cpg, Some(pe), Time::new(1_000));
                assert!(late.implies(&early));
                assert_eq!(late, track.label().retain(|_| true));
            }
        }
    }

    #[test]
    fn reschedule_with_locks_pins_the_locked_process() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        let track = &tracks.tracks()[0];
        let original = scheduler.schedule_track(track);

        // Lock the disjunction process three time units later than its
        // original start.
        let decide = cpg.process_by_name("decide").unwrap();
        let original_start = original.start(Job::Process(decide)).unwrap();
        let locked_start = original_start + Time::new(3);
        let mut locks = HashMap::new();
        locks.insert(Job::Process(decide), locked_start);

        let adjusted = scheduler.reschedule(track, &original, &locks);
        assert_eq!(adjusted.start(Job::Process(decide)), Some(locked_start));
        assert!(adjusted.slipped_locks().is_empty());
        // Everything still valid, possibly longer.
        adjusted.verify(cpg, system.arch()).unwrap();
        assert!(adjusted.delay() >= original.delay());
    }

    #[test]
    fn reschedule_without_locks_reproduces_the_original_delay() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let original = scheduler.schedule_track(track);
            let again = scheduler.reschedule(track, &original, &HashMap::new());
            again.verify(cpg, system.arch()).unwrap();
            assert_eq!(again.delay(), original.delay());
        }
    }

    #[test]
    fn reschedule_with_all_jobs_locked_reproduces_the_original() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let original = scheduler.schedule_track(track);
            let locks: HashMap<Job, Time> = original.start_times();
            let adjusted = scheduler.reschedule(track, &original, &locks);
            for sj in original.jobs() {
                assert_eq!(adjusted.start(sj.job()), Some(sj.start()), "{}", sj.job());
            }
            assert_eq!(adjusted.delay(), original.delay());
            assert!(adjusted.slipped_locks().is_empty());
        }
    }

    #[test]
    fn locking_a_process_later_only_delays_downstream_work() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        let track = &tracks.tracks()[0];
        let original = scheduler.schedule_track(track);
        // Lock an arbitrary mid-schedule process a bit later.
        let victim = original
            .jobs()
            .iter()
            .find(|sj| {
                sj.job()
                    .as_process()
                    .is_some_and(|p| !cpg.process(p).kind().is_dummy() && sj.start() > Time::ZERO)
            })
            .unwrap();
        let mut locks = HashMap::new();
        locks.insert(victim.job(), victim.start() + Time::new(4));
        let adjusted = scheduler.reschedule(track, &original, &locks);
        adjusted.verify(cpg, system.arch()).unwrap();
        assert_eq!(
            adjusted.start(victim.job()),
            Some(victim.start() + Time::new(4))
        );
        // The same set of jobs is scheduled.
        assert_eq!(adjusted.len(), original.len());
    }

    #[test]
    fn locked_broadcasts_keep_their_original_bus() {
        // Two broadcast buses: the optimal schedule may spread broadcasts
        // over both. Locking a broadcast through `reschedule` must keep the
        // bus the original schedule assigned, not silently migrate the
        // broadcast to the first bus.
        use cpg::CpgBuilder;
        let arch = Architecture::builder()
            .processor("cpu0")
            .processor("cpu1")
            .bus("bus0")
            .bus("bus1")
            .build()
            .unwrap();
        let cpu0 = arch.pe_by_name("cpu0").unwrap();
        let cpu1 = arch.pe_by_name("cpu1").unwrap();
        let bus1 = arch.pe_by_name("bus1").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let d = b.condition("D");
        let r1 = b.process("r1", Time::new(2), cpu0);
        let r2 = b.process("r2", Time::new(2), cpu1);
        let a1 = b.process("a1", Time::new(2), cpu0);
        let a2 = b.process("a2", Time::new(2), cpu0);
        let b1 = b.process("b1", Time::new(2), cpu1);
        let b2 = b.process("b2", Time::new(2), cpu1);
        b.conditional_edge(r1, a1, c.is_true(), Time::ZERO);
        b.conditional_edge(r1, a2, c.is_false(), Time::ZERO);
        b.conditional_edge(r2, b1, d.is_true(), Time::ZERO);
        b.conditional_edge(r2, b2, d.is_false(), Time::ZERO);
        let cpg = b.build(&arch).unwrap();
        let tracks = enumerate_tracks(&cpg);
        let scheduler = ListScheduler::new(&cpg, &arch, Time::new(3));

        // Find a track whose optimal schedule puts some broadcast on bus1
        // (both disjunction processes finish simultaneously, so the two
        // broadcasts are spread over the two buses).
        let (track, original, cond) = tracks
            .iter()
            .find_map(|track| {
                let schedule = scheduler.schedule_track(track);
                let cond = track.determined_conditions().find(|&cond| {
                    schedule.entry(Job::Broadcast(cond)).map(|sj| sj.pe()) == Some(Some(bus1))
                })?;
                Some((track, schedule, cond))
            })
            .expect("two simultaneous broadcasts must use both buses");

        let mut locks = HashMap::new();
        let start = original.start(Job::Broadcast(cond)).unwrap();
        locks.insert(Job::Broadcast(cond), start);
        let adjusted = scheduler.reschedule(track, &original, &locks);
        let entry = adjusted.entry(Job::Broadcast(cond)).unwrap();
        assert_eq!(entry.start(), start);
        assert_eq!(
            entry.pe(),
            Some(bus1),
            "locked broadcast migrated off its original bus"
        );
        assert!(adjusted.slipped_locks().is_empty());
        adjusted.verify(&cpg, &arch).unwrap();
    }

    #[test]
    fn pinned_locks_override_the_tracks_own_bus_choice() {
        // Regression test for the wrong-bus inherited lock: a lock derived
        // from the schedule table carries the bus recorded when the time was
        // tabled — possibly by a *different* path's adjusted schedule — and
        // that bus can differ from the bus this track's own optimal schedule
        // would pick. Before table-side lock provenance existed, `reschedule`
        // fell back to the track-local bus, so a broadcast tabled on a
        // non-first bus migrated and could collide with the job legitimately
        // occupying its track-local bus at that time.
        use crate::context::LockSet;
        use cpg::CpgBuilder;
        let arch = Architecture::builder()
            .processor("cpu0")
            .processor("cpu1")
            .bus("bus0")
            .bus("bus1")
            .build()
            .unwrap();
        let cpu0 = arch.pe_by_name("cpu0").unwrap();
        let cpu1 = arch.pe_by_name("cpu1").unwrap();
        let bus0 = arch.pe_by_name("bus0").unwrap();
        let bus1 = arch.pe_by_name("bus1").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let d = b.condition("D");
        let r1 = b.process("r1", Time::new(2), cpu0);
        let r2 = b.process("r2", Time::new(2), cpu1);
        let a1 = b.process("a1", Time::new(2), cpu0);
        let a2 = b.process("a2", Time::new(2), cpu0);
        let b1 = b.process("b1", Time::new(2), cpu1);
        let b2 = b.process("b2", Time::new(2), cpu1);
        b.conditional_edge(r1, a1, c.is_true(), Time::ZERO);
        b.conditional_edge(r1, a2, c.is_false(), Time::ZERO);
        b.conditional_edge(r2, b1, d.is_true(), Time::ZERO);
        b.conditional_edge(r2, b2, d.is_false(), Time::ZERO);
        let cpg = b.build(&arch).unwrap();
        let tracks = enumerate_tracks(&cpg);
        let scheduler = ListScheduler::new(&cpg, &arch, Time::new(3));

        // Both disjunction processes finish at t=2, so the track's own
        // optimal schedule spreads the two broadcasts over the two buses:
        // C on bus0, D on bus1 (first-fit tie-break).
        let track = &tracks.tracks()[0];
        let ctx = scheduler.context(track);
        let original = ctx.schedule();
        let bc = Job::Broadcast(c);
        let bd = Job::Broadcast(d);
        assert_eq!(original.entry(bc).unwrap().pe(), Some(bus0));
        assert_eq!(original.entry(bd).unwrap().pe(), Some(bus1));
        let start_c = original.start(bc).unwrap();
        let start_d = original.start(bd).unwrap();

        // The table (filled by another path's adjusted schedule) recorded
        // the *swapped* assignment. The pinned locks must win over the
        // track-local optimum, and the swap must not create an overlap.
        let mut locks = LockSet::for_graph(&cpg);
        locks.insert_pinned(bc, start_c, Some(bus1));
        locks.insert_pinned(bd, start_d, Some(bus0));
        let adjusted = ctx.reschedule(&original, &locks);
        assert_eq!(
            adjusted.entry(bc).unwrap().pe(),
            Some(bus1),
            "locked broadcast ignored its recorded bus"
        );
        assert_eq!(adjusted.entry(bd).unwrap().pe(), Some(bus0));
        assert_eq!(adjusted.start(bc), Some(start_c));
        assert_eq!(adjusted.start(bd), Some(start_d));
        assert!(adjusted.slipped_locks().is_empty());
        adjusted.verify(&cpg, &arch).unwrap();
    }

    #[test]
    fn slipped_locks_are_reported_and_keep_the_calendar_consistent() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        let track = &tracks.tracks()[0];
        let original = scheduler.schedule_track(track);

        // Lock the disjunction process later than its original start and a
        // downstream process (which needs the condition value) at a time that
        // is now impossible: the downstream lock must slip and be reported,
        // and jobs committed after the slip are placed around the interval
        // the slipped job really occupies.
        let decide = cpg.process_by_name("decide").unwrap();
        let decide_start = original.start(Job::Process(decide)).unwrap();
        let victim = original
            .jobs()
            .iter()
            .find(|sj| {
                sj.job().as_process().is_some_and(|p| {
                    !cpg.process(p).kind().is_dummy()
                        && p != decide
                        && sj.start() > decide_start
                        && cpg.mapping(p).is_some()
                })
            })
            .expect("a schedulable process follows the disjunction");

        let mut locks = HashMap::new();
        locks.insert(Job::Process(decide), decide_start + Time::new(10));
        locks.insert(victim.job(), victim.start());

        let adjusted = scheduler.reschedule(track, &original, &locks);
        assert_eq!(
            adjusted.start(Job::Process(decide)),
            Some(decide_start + Time::new(10))
        );
        let slipped = adjusted.slipped_locks();
        assert!(
            slipped.iter().any(|s| s.job() == victim.job()),
            "pushed lock was not reported as slipped: {slipped:?}"
        );
        for slip in slipped {
            assert!(slip.actual() > slip.intended());
            assert_eq!(adjusted.start(slip.job()), Some(slip.actual()));
            assert!(slip.to_string().contains("locked at"));
        }
        // Even with the slip, the schedule must stay structurally valid (no
        // overlap with the slipped job's real interval).
        adjusted.verify(cpg, system.arch()).unwrap();
    }

    #[test]
    fn single_processor_architecture_serializes_everything() {
        use cpg::CpgBuilder;
        let arch = Architecture::builder().processor("solo").build().unwrap();
        let solo = arch.pe_by_name("solo").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let root = b.process("root", Time::new(2), solo);
        let x = b.process("x", Time::new(3), solo);
        let y = b.process("y", Time::new(4), solo);
        b.conditional_edge(root, x, c.is_true(), Time::ZERO);
        b.conditional_edge(root, y, c.is_false(), Time::ZERO);
        let cpg = b.build(&arch).unwrap();
        let tracks = enumerate_tracks(&cpg);
        let scheduler = ListScheduler::new(&cpg, &arch, Time::new(1));
        let s_true = scheduler.schedule_track(tracks.by_label(&Cube::from(c.is_true())).unwrap());
        // No broadcast jobs on a single-processor architecture.
        assert!(!s_true.jobs().iter().any(|j| j.job().is_broadcast()));
        assert_eq!(s_true.delay(), Time::new(5));
        let s_false = scheduler.schedule_track(tracks.by_label(&Cube::from(c.is_false())).unwrap());
        assert_eq!(s_false.delay(), Time::new(6));
    }

    #[test]
    fn hardware_processes_may_overlap() {
        use cpg::CpgBuilder;
        let arch = Architecture::builder()
            .processor("cpu")
            .hardware("asic")
            .bus("bus")
            .build()
            .unwrap();
        let cpu = arch.pe_by_name("cpu").unwrap();
        let asic = arch.pe_by_name("asic").unwrap();
        let mut b = CpgBuilder::new();
        let feed = b.process("feed", Time::new(1), cpu);
        let f1 = b.process("f1", Time::new(10), asic);
        let f2 = b.process("f2", Time::new(10), asic);
        b.simple_edge(feed, f1, Time::new(1));
        b.simple_edge(feed, f2, Time::new(1));
        let cpg = b.build(&arch).unwrap();
        let cpg = cpg::expand_communications(&cpg, &arch, cpg::BusPolicy::FirstBus).unwrap();
        let tracks = enumerate_tracks(&cpg);
        let scheduler = ListScheduler::new(&cpg, &arch, Time::new(1));
        let schedule = scheduler.schedule_track(&tracks.tracks()[0]);
        schedule.verify(&cpg, &arch).unwrap();
        let f1 = cpg.process_by_name("f1").unwrap();
        let f2 = cpg.process_by_name("f2").unwrap();
        let s1 = schedule.start(Job::Process(f1)).unwrap();
        let s2 = schedule.start(Job::Process(f2)).unwrap();
        // Both hardware processes run in parallel; the two bus transfers are
        // serialized, so the starts differ by exactly one communication.
        assert!(s1.as_u64().abs_diff(s2.as_u64()) <= 1);
        // The delay is far below the serialized 20+ units.
        assert!(schedule.delay() < Time::new(16));
    }

    #[test]
    fn zero_broadcast_time_still_orders_conditions_before_remote_consumers() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), Time::ZERO);
        let c = system.condition("C").unwrap();
        let track = tracks
            .iter()
            .find(|t| t.label().contains(c.is_true()))
            .unwrap();
        let schedule = scheduler.schedule_track(track);
        schedule.verify(cpg, system.arch()).unwrap();
        // `hot` has guard C and runs on the processor that does not compute
        // C: even with an instantaneous broadcast it cannot start before the
        // broadcast has been issued.
        let hot = cpg.process_by_name("hot").unwrap();
        let broadcast_done = schedule.end(Job::Broadcast(c)).unwrap();
        assert!(schedule.start(Job::Process(hot)).unwrap() >= broadcast_done);
    }

    #[test]
    fn guarded_processes_never_start_before_their_conditions_are_known_locally() {
        // The structural property behind requirement 4: in every per-path
        // schedule, a process whose guard depends on a condition starts only
        // after that condition is known on its own processing element.
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            for sj in schedule.jobs() {
                let Some(pid) = sj.job().as_process() else {
                    continue;
                };
                let Some(pe) = cpg.mapping(pid) else { continue };
                let guard_cube = cpg
                    .guard(pid)
                    .cubes()
                    .iter()
                    .filter(|cube| track.label().implies(cube))
                    .min_by_key(|cube| cube.len())
                    .copied()
                    .unwrap_or_else(Cube::top);
                for cond in guard_cube.conditions() {
                    let known = schedule.condition_known_at(cpg, cond, pe).unwrap();
                    assert!(
                        sj.start() >= known,
                        "{} starts at {} but {} is known on {} only at {}",
                        cpg.process(pid).name(),
                        sj.start(),
                        cpg.condition_name(cond),
                        system.arch().pe(pe).name(),
                        known
                    );
                }
            }
        }
    }

    #[test]
    fn condition_resolutions_are_time_ordered() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let scheduler = ListScheduler::new(cpg, system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let schedule = scheduler.schedule_track(track);
            let resolutions = schedule.condition_resolutions(cpg);
            assert_eq!(resolutions.len(), track.determined_conditions().count());
            for pair in resolutions.windows(2) {
                assert!(pair[0].1 <= pair[1].1);
            }
            // The cache attached by the scheduler matches the derived list.
            assert_eq!(schedule.resolutions(), resolutions.as_slice());
        }
    }
}
