//! Dense, indexed per-track scheduling core.
//!
//! [`ListScheduler`](crate::ListScheduler) resolves every scheduling decision
//! against graph-level data (edges, guards, mappings) that is identical for
//! every `schedule`/`reschedule` call on the same track. The merge algorithm
//! of `cpg-merge` re-runs the list scheduler once per alternative path and
//! again at every back-step adjustment and conflict repair, so this module
//! hoists all of that per-track work into a reusable [`TrackContext`]:
//!
//! * jobs get *dense indices* `0..n` (the track's processes in ascending
//!   identifier order, then its condition broadcasts), so every piece of
//!   per-job scheduler state lives in a `Vec` instead of a `HashMap`;
//! * predecessor/successor adjacency and indegree counts are precomputed in
//!   compressed (CSR) form, and eligibility is driven by a binary-heap ready
//!   queue keyed by priority — the serial schedule-generation scheme commits
//!   jobs in exactly the same order as a full rescan of the remaining jobs,
//!   without the O(n²) rescan;
//! * guard requirements (the conditions a processing element must know before
//!   activating the job) and partial-critical-path priorities are computed
//!   once per track;
//! * locked activation times are passed as a dense [`LockSet`], cheap to
//!   clone along the decision tree of the merge algorithm.

use std::cmp::Reverse;

use cpg::{CondId, Cpg, Cube, ProcessId, Track};
use cpg_arch::{Architecture, PeId, Time};

use crate::calendar::Calendar;
use crate::job::{Job, ScheduledJob};
use crate::schedule::{PathSchedule, SlippedLock};
use crate::scratch::RunScratch;

/// Sentinel for "job not part of this track" in dense index tables.
const ABSENT: u32 = u32::MAX;

/// Compressed adjacency: `items[offsets[i]..offsets[i + 1]]` are the
/// neighbours of dense job `i`.
#[derive(Debug, Clone, Default)]
struct Csr {
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl Csr {
    fn from_lists(lists: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut items = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        offsets.push(0);
        for list in lists {
            items.extend_from_slice(list);
            offsets.push(items.len() as u32);
        }
        Csr { offsets, items }
    }

    fn row(&self, i: usize) -> &[u32] {
        &self.items[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// One locked activation: the fixed start time and, when the lock was derived
/// from a schedule-table entry with resource provenance, the resource the job
/// must occupy (the bus recorded when a broadcast's time was tabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lock {
    time: Time,
    pe: Option<PeId>,
}

/// A set of locked activation times, dense over the job space of one graph
/// (process slots first, then one broadcast slot per condition).
///
/// Functionally a `HashMap<Job, Time>`, but cloning is a flat memcpy and
/// lookups are array reads — the merge algorithm clones the set at every
/// decision-tree node and the scheduler probes it for every job it commits.
/// A lock may additionally *pin* the resource the job occupies (see
/// [`LockSet::insert_pinned`]): locks inherited from the schedule table carry
/// the bus recorded when the time was tabled, so a locked broadcast lands on
/// that bus instead of a track-local guess.
///
/// Every mutation is recorded in an internal undo journal, so a caller that
/// explores alternatives — like the decision-tree walk of the merge
/// algorithm — can [`mark`](LockSet::mark) the set before speculating and
/// [`rollback`](LockSet::rollback) to the mark afterwards instead of cloning
/// the whole set at every tree node.
///
/// # Example
///
/// ```
/// use cpg::examples;
/// use cpg_path_sched::{Job, LockSet};
/// use cpg_arch::Time;
///
/// let system = examples::diamond();
/// let mut locks = LockSet::for_graph(system.cpg());
/// let decide = system.cpg().process_by_name("decide").unwrap();
/// locks.insert(Job::Process(decide), Time::new(7));
/// assert_eq!(locks.get(Job::Process(decide)), Some(Time::new(7)));
/// assert_eq!(locks.len(), 1);
///
/// // Speculative exploration via the undo journal.
/// let mark = locks.mark();
/// locks.insert(Job::Process(decide), Time::new(9));
/// locks.rollback(mark);
/// assert_eq!(locks.get(Job::Process(decide)), Some(Time::new(7)));
/// ```
#[derive(Debug, Clone, Eq)]
pub struct LockSet {
    /// Number of process slots (`cpg.len()`); broadcast slots follow.
    processes: usize,
    slots: Vec<Option<Lock>>,
    len: usize,
    /// Undo journal: `(slot, previous content)` per mutation since the last
    /// [`clear`](LockSet::clear), truncated by [`rollback`](LockSet::rollback).
    journal: Vec<(u32, Option<Lock>)>,
}

// The journal records *how* the set reached its current content, not the
// content itself: two sets with identical locks are equal regardless of the
// mutation history that produced them.
impl PartialEq for LockSet {
    fn eq(&self, other: &Self) -> bool {
        self.processes == other.processes && self.slots == other.slots && self.len == other.len
    }
}

impl LockSet {
    /// An empty lock set sized for the jobs of `cpg` (all its processes plus
    /// one broadcast per condition).
    #[must_use]
    pub fn for_graph(cpg: &Cpg) -> Self {
        LockSet {
            processes: cpg.len(),
            slots: vec![None; cpg.len() + cpg.num_conditions()],
            len: 0,
            journal: Vec::new(),
        }
    }

    fn slot(&self, job: Job) -> Option<usize> {
        match job {
            Job::Process(pid) => (pid.index() < self.processes).then_some(pid.index()),
            Job::Broadcast(cond) => {
                let slot = self.processes + cond.index();
                (slot < self.slots.len()).then_some(slot)
            }
        }
    }

    /// Locks `job` to start exactly at `time` without pinning a resource;
    /// returns the previous locked time.
    pub fn insert(&mut self, job: Job, time: Time) -> Option<Time> {
        self.insert_pinned(job, time, None)
    }

    /// Locks `job` to start exactly at `time` on resource `pe` (the resource
    /// recorded when the time was tabled; `None` leaves the resource to the
    /// scheduler's track-local choice). Returns the previous locked time.
    pub fn insert_pinned(&mut self, job: Job, time: Time, pe: Option<PeId>) -> Option<Time> {
        let slot = self.slot(job).expect("job belongs to a different graph");
        let previous = self.slots[slot].replace(Lock { time, pe });
        self.journal.push((slot as u32, previous));
        if previous.is_none() {
            self.len += 1;
        }
        previous.map(|lock| lock.time)
    }

    /// A position in the undo journal. Mutations made after taking a mark can
    /// be undone with [`rollback`](LockSet::rollback), which is how the merge
    /// algorithm's decision-tree walk shares one lock set along a path
    /// instead of cloning it at every node.
    #[must_use]
    pub fn mark(&self) -> usize {
        self.journal.len()
    }

    /// Undoes every mutation made since `mark` was taken, restoring the
    /// overwritten (or absent) locks in reverse order.
    ///
    /// Marks are positions in the journal: rolling back to an older mark
    /// invalidates every mark taken after it. A mark from before the last
    /// [`clear`](LockSet::clear) is also invalid (clearing empties the
    /// journal).
    pub fn rollback(&mut self, mark: usize) {
        while self.journal.len() > mark {
            let (slot, previous) = self.journal.pop().expect("journal is longer than the mark");
            let current = std::mem::replace(&mut self.slots[slot as usize], previous);
            match (current.is_some(), previous.is_some()) {
                (true, false) => self.len -= 1,
                (false, true) => self.len += 1,
                _ => {}
            }
        }
    }

    /// Removes every lock and empties the undo journal, keeping the slot
    /// capacity: a cleared set is ready for reuse on the same graph without
    /// reallocating (the merge walk pools lock sets this way).
    pub fn clear(&mut self) {
        self.slots.fill(None);
        self.len = 0;
        self.journal.clear();
    }

    /// The locked activation time of `job`, if any.
    #[must_use]
    pub fn get(&self, job: Job) -> Option<Time> {
        self.slot(job)
            .and_then(|slot| self.slots[slot])
            .map(|lock| lock.time)
    }

    /// The resource the lock of `job` pins it to, when the lock exists and
    /// carries provenance.
    #[must_use]
    pub fn pinned_pe(&self, job: Job) -> Option<PeId> {
        self.slot(job)
            .and_then(|slot| self.slots[slot])
            .and_then(|lock| lock.pe)
    }

    /// `true` when `job` is locked.
    #[must_use]
    pub fn contains(&self, job: Job) -> bool {
        self.get(job).is_some()
    }

    /// Number of locked jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no job is locked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the locked jobs and their activation times.
    pub fn iter(&self) -> impl Iterator<Item = (Job, Time)> + '_ {
        self.iter_pinned().map(|(job, time, _)| (job, time))
    }

    /// Iterates over the locked jobs with their activation times and pinned
    /// resources.
    pub fn iter_pinned(&self) -> impl Iterator<Item = (Job, Time, Option<PeId>)> + '_ {
        self.slots.iter().enumerate().filter_map(|(slot, lock)| {
            let job = if slot < self.processes {
                Job::Process(ProcessId::from_index(slot))
            } else {
                Job::Broadcast(CondId::new(slot - self.processes))
            };
            lock.map(|lock| (job, lock.time, lock.pe))
        })
    }
}

impl Extend<(Job, Time)> for LockSet {
    fn extend<I: IntoIterator<Item = (Job, Time)>>(&mut self, iter: I) {
        for (job, time) in iter {
            self.insert(job, time);
        }
    }
}

/// The precomputed scheduling context of one alternative path: dense job
/// indices, adjacency, guard requirements and priorities, ready to run the
/// serial schedule-generation scheme any number of times.
///
/// Build one with [`ListScheduler::context`](crate::ListScheduler::context);
/// the merge algorithm builds one context per track up front and reuses it
/// across every adjustment and conflict repair.
///
/// # Example
///
/// ```
/// use cpg::{enumerate_tracks, examples};
/// use cpg_path_sched::{ListScheduler, LockSet};
///
/// let system = examples::fig1();
/// let tracks = enumerate_tracks(system.cpg());
/// let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
///
/// let ctx = scheduler.context(&tracks.tracks()[0]);
/// let schedule = ctx.schedule();
/// // Rescheduling with an empty lock set reproduces the schedule.
/// let again = ctx.reschedule(&schedule, &LockSet::for_graph(system.cpg()));
/// assert_eq!(again.delay(), schedule.delay());
/// ```
#[derive(Debug, Clone)]
pub struct TrackContext<'a> {
    cpg: &'a Cpg,
    arch: &'a Architecture,
    label: Cube,
    broadcast_time: Time,
    needs_broadcast: bool,
    broadcast_buses: Vec<PeId>,
    /// Dense index -> job, in [`Job`] order (processes ascending, then
    /// broadcasts ascending), so dense-index tie-breaks equal job tie-breaks.
    jobs: Vec<Job>,
    /// Graph-wide job slot (process index, then `cpg.len() + cond`) -> dense
    /// index, [`ABSENT`] when the job is not part of this track.
    dense_of_slot: Vec<u32>,
    durations: Vec<Time>,
    /// The resource of each job as far as it is fixed a priori: the mapping
    /// for processes (`None` for the dummies), `None` for broadcasts (their
    /// bus is chosen at placement time).
    mapped_pe: Vec<Option<PeId>>,
    preds: Csr,
    succs: Csr,
    indegree: Vec<u32>,
    /// Conditions each job's guard depends on (cheapest cube satisfied on
    /// this path), in CSR form.
    guard_offsets: Vec<u32>,
    guard_conds: Vec<CondId>,
    /// Partial-critical-path priorities (broadcasts pinned to `u64::MAX`).
    priorities: Vec<u64>,
    /// Per condition: dense index of its disjunction process / broadcast job.
    disj_dense: Vec<u32>,
    bcast_dense: Vec<u32>,
    /// Per condition: the processing element computing it.
    disj_pe: Vec<Option<PeId>>,
    /// Dense indices of the processes that compute a condition, for the
    /// resolution cache attached to every produced schedule.
    computers: Vec<(u32, CondId)>,
    sink_dense: u32,
}

impl<'a> TrackContext<'a> {
    pub(crate) fn new(
        cpg: &'a Cpg,
        arch: &'a Architecture,
        broadcast_time: Time,
        track: &Track,
    ) -> Self {
        let needs_broadcast =
            arch.computation_elements().count() > 1 && arch.broadcast_buses().count() > 0;
        let broadcast_buses: Vec<PeId> = arch.broadcast_buses().collect();
        let label = track.label();

        // Dense job table: processes in ascending identifier order (the order
        // `Track::processes` guarantees), then broadcasts in ascending
        // condition order — exactly the `Ord` of `Job`.
        let mut jobs: Vec<Job> = track.processes().iter().map(|&p| Job::Process(p)).collect();
        if needs_broadcast {
            let mut conds: Vec<CondId> = track.determined_conditions().collect();
            conds.sort_unstable();
            jobs.extend(conds.into_iter().map(Job::Broadcast));
        }
        let n = jobs.len();

        let mut dense_of_slot = vec![ABSENT; cpg.len() + cpg.num_conditions()];
        for (dense, &job) in jobs.iter().enumerate() {
            dense_of_slot[job_slot(cpg, job)] = dense as u32;
        }
        let dense_of = |job: Job| dense_of_slot[job_slot(cpg, job)];

        // Dependencies: a process waits for every input it actually receives
        // on this path; a broadcast waits for its disjunction process.
        let mut pred_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut succ_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (dense, &job) in jobs.iter().enumerate() {
            let preds: Vec<u32> = match job {
                Job::Process(pid) => cpg
                    .in_edges(pid)
                    .filter(|edge| {
                        track.contains(edge.from())
                            && edge.condition().is_none_or(|lit| label.contains(lit))
                    })
                    .map(|edge| dense_of(Job::Process(edge.from())))
                    .collect(),
                Job::Broadcast(cond) => vec![dense_of(Job::Process(cpg.disjunction_of(cond)))],
            };
            for &p in &preds {
                succ_lists[p as usize].push(dense as u32);
            }
            pred_lists[dense] = preds;
        }
        let indegree: Vec<u32> = pred_lists.iter().map(|l| l.len() as u32).collect();

        // Guard availability: the run-time scheduler of a processing element
        // can only activate a job once every condition of the job's guard is
        // known locally. The per-job requirement is the cheapest guard cube
        // satisfied on this path.
        let mut guard_offsets = Vec::with_capacity(n + 1);
        let mut guard_conds = Vec::new();
        guard_offsets.push(0);
        for &job in &jobs {
            let guard = match job {
                Job::Process(pid) => cpg.guard(pid),
                Job::Broadcast(cond) => cpg.guard(cpg.disjunction_of(cond)),
            };
            let cube = guard
                .cubes()
                .iter()
                .filter(|cube| label.implies(cube))
                .min_by_key(|cube| cube.len())
                .copied()
                .unwrap_or(Cube::top());
            guard_conds.extend(cube.conditions());
            guard_offsets.push(guard_conds.len() as u32);
        }

        // Partial-critical-path priorities: longest chain of execution times
        // to the sink, restricted to the track; broadcasts are issued as soon
        // as their disjunction process terminates.
        let mut lengths: Vec<u64> = vec![0; cpg.len()];
        for &pid in cpg.topological_order().iter().rev() {
            if !track.contains(pid) {
                continue;
            }
            let downstream = cpg
                .out_edges(pid)
                .filter(|edge| {
                    track.contains(edge.to())
                        && edge.condition().is_none_or(|lit| label.contains(lit))
                })
                .map(|edge| lengths[edge.to().index()])
                .max()
                .unwrap_or(0);
            lengths[pid.index()] = downstream + cpg.exec_time(pid).as_u64();
        }
        let priorities: Vec<u64> = jobs
            .iter()
            .map(|&job| match job {
                Job::Process(pid) => lengths[pid.index()],
                Job::Broadcast(_) => u64::MAX,
            })
            .collect();

        let durations: Vec<Time> = jobs
            .iter()
            .map(|&job| match job {
                Job::Process(pid) => cpg.exec_time(pid),
                Job::Broadcast(_) => broadcast_time,
            })
            .collect();
        let mapped_pe: Vec<Option<PeId>> = jobs
            .iter()
            .map(|&job| match job {
                Job::Process(pid) => cpg.mapping(pid),
                Job::Broadcast(_) => None,
            })
            .collect();

        let mut disj_dense = vec![ABSENT; cpg.num_conditions()];
        let mut bcast_dense = vec![ABSENT; cpg.num_conditions()];
        let mut disj_pe = vec![None; cpg.num_conditions()];
        for cond in cpg.conditions() {
            let disjunction = cpg.disjunction_of(cond);
            disj_dense[cond.index()] = dense_of(Job::Process(disjunction));
            bcast_dense[cond.index()] = dense_of_slot[cpg.len() + cond.index()];
            disj_pe[cond.index()] = cpg.mapping(disjunction);
        }
        let computers: Vec<(u32, CondId)> = jobs
            .iter()
            .enumerate()
            .filter_map(|(dense, &job)| {
                let pid = job.as_process()?;
                let cond = cpg.process(pid).computes()?;
                Some((dense as u32, cond))
            })
            .collect();

        TrackContext {
            cpg,
            arch,
            label,
            broadcast_time,
            needs_broadcast,
            broadcast_buses,
            sink_dense: dense_of_slot[cpg.sink().index()],
            jobs,
            dense_of_slot,
            durations,
            mapped_pe,
            preds: Csr::from_lists(&pred_lists),
            succs: Csr::from_lists(&succ_lists),
            indegree,
            guard_offsets,
            guard_conds,
            priorities,
            disj_dense,
            bcast_dense,
            disj_pe,
            computers,
        }
    }

    /// The label `L_k` of the track this context belongs to.
    #[must_use]
    pub fn label(&self) -> Cube {
        self.label
    }

    /// Number of jobs (processes plus condition broadcasts) of the track.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the track has no jobs (never the case for contexts built
    /// from enumerated tracks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The condition broadcast time `τ0`.
    #[must_use]
    pub fn broadcast_time(&self) -> Time {
        self.broadcast_time
    }

    /// Schedules the track with the partial-critical-path priority (longest
    /// remaining path to the sink first). Equivalent to
    /// [`ListScheduler::schedule_track`](crate::ListScheduler::schedule_track).
    ///
    /// Allocates a fresh [`RunScratch`] per call; callers that schedule
    /// repeatedly should reuse one arena through
    /// [`schedule_with`](Self::schedule_with).
    #[must_use]
    pub fn schedule(&self) -> PathSchedule {
        self.schedule_with(&mut RunScratch::new())
    }

    /// [`schedule`](Self::schedule) through a reusable scratch arena: the
    /// run's dense working state lives in `scratch`, which is reset on entry
    /// and reusable for any later run on any context, so repeated scheduling
    /// is allocation-free after warm-up.
    #[must_use]
    pub fn schedule_with(&self, scratch: &mut RunScratch) -> PathSchedule {
        self.run(scratch, &self.priorities, None)
    }

    /// Re-schedules the track after some activation times were fixed in the
    /// schedule table (the *adjustment* step of the merge algorithm).
    ///
    /// Locked jobs keep exactly their fixed start time — and, for condition
    /// broadcasts, the bus the lock pins (recorded in the schedule table when
    /// the time was tabled) or, for unpinned locks, the bus `original`
    /// assigned to them; every other job moves to the earliest moment allowed
    /// by data dependencies and resource availability, preserving the
    /// relative activation order of `original`.
    /// Locks that cannot be honoured are reported through
    /// [`PathSchedule::slipped_locks`]. Locks for jobs that are not part of
    /// this track are ignored: processes of other alternative paths never
    /// execute on this one, so their tabled times do not occupy resources
    /// here.
    #[must_use]
    pub fn reschedule(&self, original: &PathSchedule, locks: &LockSet) -> PathSchedule {
        self.reschedule_with(&mut RunScratch::new(), original, locks)
    }

    /// [`reschedule`](Self::reschedule) through a reusable scratch arena (see
    /// [`schedule_with`](Self::schedule_with) for the arena contract).
    #[must_use]
    pub fn reschedule_with(
        &self,
        scratch: &mut RunScratch,
        original: &PathSchedule,
        locks: &LockSet,
    ) -> PathSchedule {
        let mut out = PathSchedule::default();
        self.reschedule_into(scratch, original, locks, &mut out);
        out
    }

    /// [`reschedule`](Self::reschedule) that writes the result into `out`,
    /// reusing its buffers in addition to the scratch arena's: callers that
    /// re-adjust schedules in a loop — the decision-tree walk of the merge
    /// algorithm — pool `PathSchedule`s and rebuild them in place, so the
    /// whole walk touches the allocator only until the pools are warm. The
    /// previous content of `out` is discarded; the rebuilt schedule is
    /// bit-identical to what [`reschedule_with`](Self::reschedule_with)
    /// returns.
    pub fn reschedule_into(
        &self,
        scratch: &mut RunScratch,
        original: &PathSchedule,
        locks: &LockSet,
        out: &mut PathSchedule,
    ) {
        // Priority: earlier original start  =>  scheduled earlier. The
        // priority buffer is moved out of the arena for the duration of the
        // run (`run_into` borrows the rest of the arena mutably) and handed
        // back with its storage intact afterwards.
        let mut priorities = std::mem::take(&mut scratch.priorities);
        priorities.clear();
        priorities.extend(self.jobs.iter().map(|&job| {
            original
                .start(job)
                .map_or(0, |start| u64::MAX - start.as_u64())
        }));
        self.run_into(scratch, &priorities, Some((locks, original)), out);
        scratch.priorities = priorities;
    }

    /// The conditions the guard of dense job `i` depends on.
    fn guard_requirements(&self, i: usize) -> &[CondId] {
        &self.guard_conds[self.guard_offsets[i] as usize..self.guard_offsets[i + 1] as usize]
    }

    /// The resource a *locked* job occupies: its mapping for processes; for
    /// broadcasts the bus the lock pins (recorded when the activation time
    /// was tabled, possibly by another path's adjusted schedule), then the
    /// bus assigned by the original schedule, then the first broadcast bus.
    fn locked_pe(&self, dense: usize, locks: &LockSet, original: &PathSchedule) -> Option<PeId> {
        let job = self.jobs[dense];
        match job {
            Job::Process(_) => self.mapped_pe[dense],
            Job::Broadcast(_) => locks
                .pinned_pe(job)
                .or_else(|| original.entry(job).and_then(ScheduledJob::pe))
                .or_else(|| self.broadcast_buses.first().copied()),
        }
    }

    /// The moment the value of `cond` becomes available to the run-time
    /// scheduler of `pe` under the partially built schedule: the completion
    /// of the disjunction process on its own processing element, the
    /// completion of the broadcast everywhere else. Jobs without a resource
    /// (broadcasts whose bus is chosen later, the dummy processes)
    /// conservatively use the broadcast completion as well.
    fn condition_available(
        &self,
        cond: CondId,
        pe: Option<PeId>,
        ends: &[Time],
        placed: &[bool],
    ) -> Time {
        let disj = self.disj_dense[cond.index()] as usize;
        let computed = if disj != ABSENT as usize && placed[disj] {
            ends[disj]
        } else {
            Time::ZERO
        };
        match pe {
            Some(pe) if self.disj_pe[cond.index()] == Some(pe) => computed,
            _ => {
                let bcast = self.bcast_dense[cond.index()] as usize;
                if bcast != ABSENT as usize && placed[bcast] {
                    ends[bcast]
                } else {
                    computed
                }
            }
        }
    }

    /// Chooses the resource and earliest feasible start for an unlocked job.
    fn placement(
        &self,
        dense: usize,
        data_ready: Time,
        duration: Time,
        calendars: &[Calendar],
    ) -> Option<(PeId, Time)> {
        let fit = |pe: PeId| -> Time {
            if self.arch.is_exclusive(pe) {
                calendars[pe.index()].earliest_fit(data_ready, duration)
            } else {
                data_ready
            }
        };
        match self.jobs[dense] {
            Job::Process(_) => self.mapped_pe[dense].map(|pe| (pe, fit(pe))),
            Job::Broadcast(_) => self
                .broadcast_buses
                .iter()
                .map(|&bus| (bus, fit(bus)))
                .min_by_key(|&(bus, start)| (start, bus)),
        }
    }

    /// Serial schedule-generation scheme on the dense representation: commits
    /// eligible jobs in priority order to the earliest feasible slot of their
    /// resource, driving eligibility with an indegree-counting ready queue.
    ///
    /// All working state lives in `scratch` (reset and sized on entry), so
    /// after one run on the largest track of the graph, further runs through
    /// the same arena touch the allocator only for the returned schedule.
    // lint: hot-path (list scheduling of one path; arena-backed, no fresh buffers)
    fn run(
        &self,
        scratch: &mut RunScratch,
        priorities: &[u64],
        locking: Option<(&LockSet, &PathSchedule)>,
    ) -> PathSchedule {
        let mut out = PathSchedule::default();
        self.run_into(scratch, priorities, locking, &mut out);
        out
    }

    /// [`run`](Self::run) writing the produced schedule into `out` (cleared
    /// and refilled, buffers reused).
    // lint: hot-path (same discipline as run, writing into a reused schedule)
    fn run_into(
        &self,
        scratch: &mut RunScratch,
        priorities: &[u64],
        locking: Option<(&LockSet, &PathSchedule)>,
        out: &mut PathSchedule,
    ) {
        let n = self.jobs.len();
        scratch.prepare(n, self.arch.len(), &self.indegree);

        // Pre-reserve every locked interval on the resource the locked job
        // actually occupies, so unlocked jobs are placed around them even
        // before the locked job itself is committed.
        if let Some((locks, original)) = locking {
            for dense in 0..n {
                if let Some(start) = locks.get(self.jobs[dense]) {
                    if let Some(pe) = self.locked_pe(dense, locks, original) {
                        if self.arch.is_exclusive(pe) {
                            scratch.calendars[pe.index()].reserve(start, self.durations[dense]);
                        }
                    }
                }
            }
        }

        // Max-heap on (priority, smallest dense index) — dense indices are in
        // `Job` order, so ties break exactly like the reference rescan.
        for (dense, &deg) in scratch.indegree.iter().enumerate() {
            if deg == 0 {
                scratch
                    .ready
                    .push((priorities[dense], Reverse(dense as u32)));
            }
        }

        let mut committed = 0usize;
        while let Some((_, Reverse(dense))) = scratch.ready.pop() {
            let dense = dense as usize;
            let job = self.jobs[dense];

            let mut data_ready = self
                .preds
                .row(dense)
                .iter()
                .map(|&p| scratch.ends[p as usize])
                .max()
                .unwrap_or(Time::ZERO);
            // The guard of the job must be decidable on its processing
            // element before it can be activated (requirement 4 of the
            // paper's Section 3, applied while building the path schedule).
            if self.needs_broadcast {
                let local_pe = self.mapped_pe[dense];
                for &cond in self.guard_requirements(dense) {
                    data_ready = data_ready.max(self.condition_available(
                        cond,
                        local_pe,
                        &scratch.ends,
                        &scratch.placed,
                    ));
                }
            }

            let duration = self.durations[dense];
            let lock = locking.and_then(|(locks, _)| locks.get(job));
            let (start, pe) = if let Some(lock) = lock {
                // Locked jobs keep the activation time fixed in the table (on
                // the resource the original schedule assigned). A lock that
                // data dependencies push past its fixed time has *slipped*:
                // record it and reserve the interval it really occupies, so
                // jobs committed later are placed around it. (Unlocked jobs
                // committed *before* the slip was detected only saw the
                // pre-reservation at the intended time — a slip therefore
                // always signals a violated caller invariant, which is
                // exactly why it is surfaced instead of silently absorbed.)
                let start = lock.max(data_ready);
                let (locks, original) = locking.expect("locking is Some");
                let pe = self.locked_pe(dense, locks, original);
                if start != lock {
                    scratch.slipped.push(SlippedLock {
                        job,
                        intended: lock,
                        actual: start,
                    });
                    if let Some(pe) = pe {
                        if self.arch.is_exclusive(pe) {
                            scratch.calendars[pe.index()].reserve(start, duration);
                        }
                    }
                }
                (start, pe)
            } else {
                match self.placement(dense, data_ready, duration, &scratch.calendars) {
                    Some((pe, start)) => {
                        if self.arch.is_exclusive(pe) {
                            scratch.calendars[pe.index()].reserve(start, duration);
                        }
                        (start, Some(pe))
                    }
                    // Dummy source/sink: no resource.
                    None => (data_ready, None),
                }
            };

            scratch.starts[dense] = start;
            scratch.ends[dense] = start + duration;
            scratch.pes[dense] = pe;
            scratch.placed[dense] = true;
            committed += 1;

            for &succ in self.succs.row(dense) {
                let succ = succ as usize;
                scratch.indegree[succ] -= 1;
                if scratch.indegree[succ] == 0 {
                    scratch.ready.push((priorities[succ], Reverse(succ as u32)));
                }
            }
        }
        debug_assert_eq!(committed, n, "acyclic tracks commit every job");

        let delay = if self.sink_dense == ABSENT {
            Time::ZERO
        } else {
            scratch.starts[self.sink_dense as usize]
        };
        // The schedule owns a copy of the slip buffer; extending an empty
        // buffer (the common, no-slip case) does not allocate, and the arena
        // keeps its capacity for the next slipping run either way.
        out.rebuild_from_parts(
            self.label,
            delay,
            self.cpg.len(),
            self.cpg.num_conditions(),
            (0..n).map(|dense| ScheduledJob {
                job: self.jobs[dense],
                start: scratch.starts[dense],
                end: scratch.ends[dense],
                pe: scratch.pes[dense],
            }),
            self.computers
                .iter()
                .map(|&(dense, cond)| (cond, scratch.ends[dense as usize])),
            &scratch.slipped,
        );
    }

    /// The dense index of a job on this track, if the job is part of it.
    /// Exposed for the differential test harness.
    #[doc(hidden)]
    #[must_use]
    pub fn dense_index(&self, job: Job) -> Option<usize> {
        let dense = self.dense_of_slot[job_slot(self.cpg, job)];
        (dense != ABSENT).then_some(dense as usize)
    }
}

/// Graph-wide slot of a job: processes first, then one slot per condition.
fn job_slot(cpg: &Cpg, job: Job) -> usize {
    match job {
        Job::Process(pid) => pid.index(),
        Job::Broadcast(cond) => cpg.len() + cond.index(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{enumerate_tracks, examples};

    #[test]
    fn lock_set_behaves_like_a_map() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let mut locks = LockSet::for_graph(cpg);
        assert!(locks.is_empty());
        let p = Job::Process(cpg.process_by_name("P1").unwrap());
        let b = Job::Broadcast(system.condition("C").unwrap());
        assert_eq!(locks.insert(p, Time::new(3)), None);
        assert_eq!(locks.insert(b, Time::new(5)), None);
        assert_eq!(locks.insert(p, Time::new(4)), Some(Time::new(3)));
        assert_eq!(locks.len(), 2);
        assert_eq!(locks.get(p), Some(Time::new(4)));
        assert!(locks.contains(b));
        let collected: Vec<(Job, Time)> = locks.iter().collect();
        assert_eq!(collected.len(), 2);
        assert!(collected.contains(&(p, Time::new(4))));
        assert!(collected.contains(&(b, Time::new(5))));
    }

    #[test]
    fn lock_journal_rolls_back_inserts_overwrites_and_clears() {
        let system = examples::fig1();
        let cpg = system.cpg();
        let mut locks = LockSet::for_graph(cpg);
        let p = Job::Process(cpg.process_by_name("P1").unwrap());
        let q = Job::Process(cpg.process_by_name("P2").unwrap());
        let bus = system.arch().broadcast_buses().next();
        locks.insert(p, Time::new(3));
        let baseline = locks.clone();

        // Insert + overwrite + pin, then roll everything back.
        let mark = locks.mark();
        locks.insert(q, Time::new(5));
        locks.insert_pinned(p, Time::new(9), bus);
        assert_eq!(locks.len(), 2);
        locks.rollback(mark);
        assert_eq!(locks, baseline);
        assert_eq!(locks.get(p), Some(Time::new(3)));
        assert_eq!(locks.pinned_pe(p), None);
        assert!(!locks.contains(q));

        // Nested marks roll back in order.
        let outer = locks.mark();
        locks.insert(q, Time::new(1));
        let inner = locks.mark();
        locks.insert(q, Time::new(2));
        locks.rollback(inner);
        assert_eq!(locks.get(q), Some(Time::new(1)));
        locks.rollback(outer);
        assert_eq!(locks, baseline);

        // Equality ignores journal history: a fresh set with the same
        // content compares equal to one that mutated and rolled back.
        let mut fresh = LockSet::for_graph(cpg);
        fresh.insert(p, Time::new(3));
        assert_eq!(locks, fresh);

        // Clearing empties content and journal but keeps the slot space.
        locks.clear();
        assert!(locks.is_empty());
        assert_eq!(locks.mark(), 0);
        assert_eq!(locks, LockSet::for_graph(cpg));
    }

    #[test]
    fn reschedule_into_reuses_buffers_and_matches_reschedule() {
        let system = examples::fig1();
        let tracks = enumerate_tracks(system.cpg());
        let scheduler =
            crate::ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
        let mut scratch = RunScratch::new();
        let mut pooled = PathSchedule::default();
        for track in tracks.iter() {
            let ctx = scheduler.context(track);
            let original = ctx.schedule_with(&mut scratch);
            let mut locks = LockSet::for_graph(system.cpg());
            if let Some(sj) = original.jobs().iter().find(|sj| sj.pe().is_some()) {
                locks.insert(sj.job(), sj.start() + Time::new(3));
            }
            let fresh = ctx.reschedule_with(&mut RunScratch::new(), &original, &locks);
            // The pooled schedule is rebuilt in place across every track and
            // must match a freshly allocated one each time.
            ctx.reschedule_into(&mut scratch, &original, &locks, &mut pooled);
            assert_eq!(fresh, pooled, "reschedule_into diverged on {}", ctx.label());
        }
    }

    #[test]
    fn context_schedule_matches_scheduler_entry_point() {
        let system = examples::fig1();
        let tracks = enumerate_tracks(system.cpg());
        let scheduler =
            crate::ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
        for track in tracks.iter() {
            let ctx = scheduler.context(track);
            assert_eq!(ctx.label(), track.label());
            assert!(!ctx.is_empty());
            assert_eq!(ctx.broadcast_time(), system.broadcast_time());
            let direct = scheduler.schedule_track(track);
            let via_ctx = ctx.schedule();
            assert_eq!(direct, via_ctx);
            assert_eq!(ctx.len(), via_ctx.len());
            // The resolution cache matches the graph-derived list.
            assert_eq!(
                via_ctx.resolutions(),
                via_ctx.condition_resolutions(system.cpg()).as_slice()
            );
        }
    }
}
