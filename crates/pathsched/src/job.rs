//! Schedulable jobs: processes of the graph and condition broadcasts.

use std::fmt;

use cpg::{CondId, ProcessId};
use cpg_arch::{PeId, Time};

/// A unit of work placed by the scheduler.
///
/// Besides the processes of the conditional process graph, the scheduler also
/// places one *condition broadcast* per disjunction process that executes:
/// after the disjunction process terminates, the value of its condition is
/// broadcast on the first bus that becomes available, taking `τ0` time units
/// (Section 3 of the paper). Both kinds of work occupy resources and appear as
/// rows of the schedule table, so they share this identifier type.
///
/// # Example
///
/// ```
/// use cpg::{CondId, ProcessId};
/// use cpg_path_sched::Job;
///
/// let p = Job::Process(ProcessId::from_index(4));
/// let b = Job::Broadcast(CondId::new(0));
/// assert!(p.as_process().is_some());
/// assert!(b.as_broadcast().is_some());
/// assert_ne!(p, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Job {
    /// An ordinary, communication or dummy process of the graph.
    Process(ProcessId),
    /// The broadcast of a condition value on a bus.
    Broadcast(CondId),
}

impl Job {
    /// The process identifier when this job is a process.
    #[must_use]
    pub const fn as_process(self) -> Option<ProcessId> {
        match self {
            Job::Process(id) => Some(id),
            Job::Broadcast(_) => None,
        }
    }

    /// The condition identifier when this job is a condition broadcast.
    #[must_use]
    pub const fn as_broadcast(self) -> Option<CondId> {
        match self {
            Job::Process(_) => None,
            Job::Broadcast(cond) => Some(cond),
        }
    }

    /// `true` when this job is a condition broadcast.
    #[must_use]
    pub const fn is_broadcast(self) -> bool {
        matches!(self, Job::Broadcast(_))
    }
}

impl From<ProcessId> for Job {
    fn from(id: ProcessId) -> Self {
        Job::Process(id)
    }
}

impl From<CondId> for Job {
    fn from(cond: CondId) -> Self {
        Job::Broadcast(cond)
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Job::Process(id) => write!(f, "{id}"),
            Job::Broadcast(cond) => write!(f, "broadcast({cond})"),
        }
    }
}

/// A job committed to a start time and a resource by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledJob {
    pub(crate) job: Job,
    pub(crate) start: Time,
    pub(crate) end: Time,
    pub(crate) pe: Option<PeId>,
}

impl ScheduledJob {
    /// The scheduled job.
    #[must_use]
    pub const fn job(&self) -> Job {
        self.job
    }

    /// The activation (start) time.
    #[must_use]
    pub const fn start(&self) -> Time {
        self.start
    }

    /// The completion time (start + execution time).
    #[must_use]
    pub const fn end(&self) -> Time {
        self.end
    }

    /// The processing element the job occupies (`None` for the dummy source
    /// and sink, which consume no resource).
    #[must_use]
    pub const fn pe(&self) -> Option<PeId> {
        self.pe
    }

    /// The duration of the job.
    #[must_use]
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

impl fmt::Display for ScheduledJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ [{}, {})", self.job, self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_conversions_and_accessors() {
        let p: Job = ProcessId::from_index(3).into();
        assert_eq!(p.as_process(), Some(ProcessId::from_index(3)));
        assert_eq!(p.as_broadcast(), None);
        assert!(!p.is_broadcast());

        let b: Job = CondId::new(1).into();
        assert_eq!(b.as_broadcast(), Some(CondId::new(1)));
        assert_eq!(b.as_process(), None);
        assert!(b.is_broadcast());
    }

    #[test]
    fn job_display() {
        assert_eq!(Job::Process(ProcessId::from_index(2)).to_string(), "P2");
        assert_eq!(Job::Broadcast(CondId::new(0)).to_string(), "broadcast(c0)");
    }

    #[test]
    fn scheduled_job_accessors() {
        let sj = ScheduledJob {
            job: Job::Process(ProcessId::from_index(1)),
            start: Time::new(3),
            end: Time::new(7),
            pe: None,
        };
        assert_eq!(sj.start(), Time::new(3));
        assert_eq!(sj.end(), Time::new(7));
        assert_eq!(sj.duration(), Time::new(4));
        assert_eq!(sj.pe(), None);
        assert!(sj.to_string().contains("P1"));
    }
}
