//! Reusable scratch arena for the dense scheduler core.
//!
//! Every [`TrackContext`](crate::TrackContext) run needs the same family of
//! dense per-job state: start/end times, resource assignments, placement
//! flags, a working indegree copy, the binary-heap ready queue, one
//! [`Calendar`] per exclusive resource and a slip buffer. Allocating those on
//! every call is what dominated the allocator traffic of the merge algorithm,
//! which re-runs the scheduler once per alternative path and again at every
//! back-step adjustment and conflict repair.
//!
//! [`RunScratch`] owns all of that state *outside* the context, so one arena
//! can serve any number of runs — and, because a context only borrows the
//! arena for the duration of a call, any number of *contexts*: the parallel
//! merge keeps exactly one `RunScratch` per worker thread and schedules every
//! track that worker draws through it. [`RunScratch::reset`] clears every
//! buffer without releasing its storage, so after the first run on the
//! largest track the scheduler's working state is allocation-free (the
//! returned [`PathSchedule`](crate::PathSchedule) still owns its entries —
//! that is the output, not scratch).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cpg_arch::{PeId, Time};

use crate::calendar::Calendar;
use crate::schedule::SlippedLock;

/// The per-run dense state of the scheduler core, reusable across runs and
/// across tracks.
///
/// Build one with [`RunScratch::new`] (or `Default`), hand it to
/// [`TrackContext::schedule_with`](crate::TrackContext::schedule_with) /
/// [`TrackContext::reschedule_with`](crate::TrackContext::reschedule_with),
/// and keep reusing it: every run resets the arena before touching it, so no
/// state leaks from one run into the next and a reused arena produces
/// bit-identical schedules to a fresh one.
///
/// # Example
///
/// ```
/// use cpg::{enumerate_tracks, examples};
/// use cpg_path_sched::{ListScheduler, RunScratch};
///
/// let system = examples::fig1();
/// let tracks = enumerate_tracks(system.cpg());
/// let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
///
/// // One arena serves every track.
/// let mut scratch = RunScratch::new();
/// for track in tracks.iter() {
///     let via_scratch = scheduler.context(track).schedule_with(&mut scratch);
///     assert_eq!(via_scratch, scheduler.schedule_track(track));
/// }
/// ```
#[derive(Debug, Default)]
pub struct RunScratch {
    /// One occupancy calendar per processing element of the architecture
    /// (indexed by `PeId`), cleared capacity-preservingly between runs.
    pub(crate) calendars: Vec<Calendar>,
    pub(crate) starts: Vec<Time>,
    pub(crate) ends: Vec<Time>,
    pub(crate) pes: Vec<Option<PeId>>,
    pub(crate) placed: Vec<bool>,
    /// Working copy of the context's indegree table, consumed by the run.
    pub(crate) indegree: Vec<u32>,
    /// Max-heap on `(priority, Reverse(dense index))`.
    pub(crate) ready: BinaryHeap<(u64, Reverse<u32>)>,
    pub(crate) slipped: Vec<SlippedLock>,
    /// Reschedule-order priorities derived from the original schedule
    /// (unused by plain `schedule` runs, which read the context's
    /// precomputed critical-path priorities instead).
    pub(crate) priorities: Vec<u64>,
}

impl RunScratch {
    /// An empty arena; buffers grow on first use and are retained afterwards.
    #[must_use]
    pub fn new() -> Self {
        RunScratch::default()
    }

    /// Clears every buffer without freeing its storage. Runs call this on
    /// entry, so explicit resets are only needed to drop stale data early.
    pub fn reset(&mut self) {
        for calendar in &mut self.calendars {
            calendar.clear();
        }
        self.starts.clear();
        self.ends.clear();
        self.pes.clear();
        self.placed.clear();
        self.indegree.clear();
        self.ready.clear();
        self.slipped.clear();
        self.priorities.clear();
    }

    /// Resets and sizes the arena for a run over `jobs` dense jobs on an
    /// architecture with `pes` processing elements, seeding the working
    /// indegree table from the context's precomputed one.
    pub(crate) fn prepare(&mut self, jobs: usize, pes: usize, indegree: &[u32]) {
        self.reset();
        // Truncating when a smaller architecture follows a larger one is
        // fine: the dropped calendars are empty.
        self.calendars.resize_with(pes, Calendar::default);
        self.starts.resize(jobs, Time::ZERO);
        self.ends.resize(jobs, Time::ZERO);
        self.pes.resize(jobs, None);
        self.placed.resize(jobs, false);
        self.indegree.extend_from_slice(indegree);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{enumerate_tracks, examples};

    // `RunScratch` must be able to travel into a worker thread of the
    // fork-join merge (one arena per worker).
    fn assert_send<T: Send>() {}

    #[test]
    fn scratch_is_send_and_resets_to_empty() {
        assert_send::<RunScratch>();
        let mut scratch = RunScratch::new();
        scratch.prepare(5, 3, &[0, 1, 2, 0, 1]);
        assert_eq!(scratch.starts.len(), 5);
        assert_eq!(scratch.calendars.len(), 3);
        assert_eq!(scratch.indegree, vec![0, 1, 2, 0, 1]);
        scratch.reset();
        assert!(scratch.starts.is_empty());
        assert!(scratch.indegree.is_empty());
        assert!(scratch.ready.is_empty());
        // Prepared again for a smaller run: sizes follow the run, capacity
        // stays from the larger one.
        let starts_capacity = scratch.starts.capacity();
        scratch.prepare(2, 1, &[0, 0]);
        assert_eq!(scratch.starts.len(), 2);
        assert_eq!(scratch.calendars.len(), 1);
        assert!(scratch.starts.capacity() >= starts_capacity.min(5));
    }

    #[test]
    fn a_reused_scratch_matches_a_fresh_one_on_every_track() {
        // The scratch-reuse contract of the parallel merge: one arena,
        // sequentially reused across all tracks and across repeated
        // schedule/reschedule runs, produces exactly the schedules a fresh
        // arena per run produces.
        let system = examples::fig1();
        let tracks = enumerate_tracks(system.cpg());
        let scheduler =
            crate::ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
        let mut reused = RunScratch::new();
        for track in tracks.iter() {
            let ctx = scheduler.context(track);
            let fresh = ctx.schedule_with(&mut RunScratch::new());
            let second = ctx.schedule_with(&mut reused);
            assert_eq!(fresh, second, "schedule diverged on {}", track.label());

            // Reschedule through the same arena, with a lock that moves work.
            let mut locks = crate::LockSet::for_graph(system.cpg());
            if let Some(sj) = fresh.jobs().iter().find(|sj| {
                sj.job().as_process().is_some_and(|p| {
                    !system.cpg().process(p).kind().is_dummy() && system.cpg().mapping(p).is_some()
                })
            }) {
                locks.insert(sj.job(), sj.start() + cpg_arch::Time::new(2));
            }
            let fresh_adj = ctx.reschedule_with(&mut RunScratch::new(), &fresh, &locks);
            let reused_adj = ctx.reschedule_with(&mut reused, &fresh, &locks);
            assert_eq!(
                fresh_adj,
                reused_adj,
                "reschedule diverged on {}",
                track.label()
            );
        }
    }
}
