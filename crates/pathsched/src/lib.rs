//! Resource-constrained list scheduling of individual alternative paths of a
//! conditional process graph.
//!
//! The scheduling strategy of Eles et al. (DATE 1998) proceeds in two steps:
//! first every alternative path through the conditional process graph is
//! scheduled individually (this crate), then the per-path schedules are merged
//! into the global schedule table (the `cpg-merge` crate).
//!
//! The central types are:
//!
//! * [`Job`] — a schedulable unit: a process of the graph or the broadcast of
//!   a condition value on a bus;
//! * [`ListScheduler`] — the list scheduler itself, with partial-critical-path
//!   priorities, gap-filling placement on exclusive resources, parallel
//!   execution on hardware processors, and condition broadcasting;
//! * [`TrackContext`] — the dense, indexed per-track scheduling core: job
//!   indices, adjacency, guard requirements and priorities are precomputed
//!   once per track and reused across every `schedule`/`reschedule` run;
//! * [`RunScratch`] — the reusable per-run scratch arena (dense state, ready
//!   queue, per-resource calendars, slip buffer): one arena per worker makes
//!   repeated scheduling allocation-free after warm-up, which is what the
//!   fork-join merge of `cpg-merge` pools per thread;
//! * [`LockSet`] — a dense set of locked activation times, cheap to clone
//!   along the decision tree of the merge algorithm;
//! * [`PathSchedule`] — the result: activation times for every job of one
//!   path, the path delay `δ_k`, the cached condition resolutions, any
//!   [`SlippedLock`]s, and queries about when condition values become known
//!   on each processing element.
//!
//! # Example
//!
//! ```
//! use cpg::{enumerate_tracks, examples};
//! use cpg_path_sched::{Job, ListScheduler};
//!
//! let system = examples::diamond();
//! let tracks = enumerate_tracks(system.cpg());
//! let scheduler = ListScheduler::new(system.cpg(), system.arch(), system.broadcast_time());
//!
//! let schedule = scheduler.schedule_track(&tracks.tracks()[0]);
//! assert!(schedule.delay() > cpg_arch::Time::ZERO);
//! let decide = system.cpg().process_by_name("decide").unwrap();
//! assert!(schedule.start(Job::Process(decide)).is_some());
//! ```

#![forbid(unsafe_code)]

mod calendar;
mod context;
mod job;
#[cfg(any(test, feature = "test-util"))]
pub mod reference;
mod schedule;
mod scheduler;
mod scratch;

pub use context::{LockSet, TrackContext};
pub use job::{Job, ScheduledJob};
pub use schedule::{PathSchedule, SlippedLock};
pub use scheduler::ListScheduler;
pub use scratch::RunScratch;
