//! The schedule of one alternative path.

use std::collections::HashMap;
use std::fmt;

use cpg::{CondId, Cpg, Cube, ProcessId};
use cpg_arch::{Architecture, PeId, Time};

use crate::job::{Job, ScheduledJob};

/// Sentinel for "job not scheduled on this path" in the dense job-slot index.
const ABSENT: u32 = u32::MAX;

/// A lock that could not be honoured by the scheduler: the job was asked to
/// start exactly at `intended` (its activation time fixed in the schedule
/// table), but its data dependencies or guard conditions were only satisfied
/// at the later `actual` start.
///
/// The merge algorithm (rule 3 of the paper's Section 5.1) locks only
/// activation times placed in columns that depend exclusively on conditions
/// decided at ancestor decision-tree nodes, so for well-formed inputs no lock
/// should slip; a slipped lock therefore signals a violated invariant of
/// `Merger::locks_from_table` and is surfaced here instead of being silently
/// absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlippedLock {
    pub(crate) job: Job,
    pub(crate) intended: Time,
    pub(crate) actual: Time,
}

impl SlippedLock {
    /// The locked job that slipped.
    #[must_use]
    pub const fn job(&self) -> Job {
        self.job
    }

    /// The activation time the lock asked for.
    #[must_use]
    pub const fn intended(&self) -> Time {
        self.intended
    }

    /// The activation time the job actually received.
    #[must_use]
    pub const fn actual(&self) -> Time {
        self.actual
    }
}

impl fmt::Display for SlippedLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} locked at {} but started at {}",
            self.job, self.intended, self.actual
        )
    }
}

/// The (near-)optimal schedule of one alternative path `G_k` of a conditional
/// process graph: a start time for every process activated on the path and
/// for every condition broadcast issued on it.
///
/// Produced by [`ListScheduler`](crate::ListScheduler); consumed by the
/// schedule-merging algorithm of the `cpg-merge` crate.
#[derive(Debug, Clone, Default)]
pub struct PathSchedule {
    label: Cube,
    jobs: Vec<ScheduledJob>,
    /// Number of process slots of the graph-wide job-slot space; broadcast
    /// slots follow (the same dense layout as `TrackContext`/`LockSet`).
    processes: usize,
    /// Graph-wide job slot -> position in `jobs`, [`ABSENT`] when the job is
    /// not scheduled on this path. The merge algorithm's
    /// `known_conditions`/`condition_known_at` queries resolve through this
    /// index on their hot path, so it is a dense array rather than a map.
    index: Vec<u32>,
    delay: Time,
    /// Condition resolutions `(cond, completion of its disjunction process)`
    /// cached by the scheduler, sorted by `(time, cond)`.
    resolutions: Vec<(CondId, Time)>,
    /// Locks that could not be honoured during a [`reschedule`]
    /// (`ListScheduler::reschedule`) call, in commit order.
    ///
    /// [`reschedule`]: crate::ListScheduler::reschedule
    slipped: Vec<SlippedLock>,
}

impl PathSchedule {
    #[cfg(test)]
    pub(crate) fn new(label: Cube, jobs: Vec<ScheduledJob>, delay: Time) -> Self {
        // Tests build schedules without a graph: size the slot space from the
        // largest identifiers present.
        let processes = jobs
            .iter()
            .filter_map(|j| j.job().as_process())
            .map(|p| p.index() + 1)
            .max()
            .unwrap_or(0);
        let conditions = jobs
            .iter()
            .filter_map(|j| j.job().as_broadcast())
            .map(|c| c.index() + 1)
            .max()
            .unwrap_or(0);
        Self::new_detailed(
            label,
            jobs,
            delay,
            Vec::new(),
            Vec::new(),
            processes,
            conditions,
        )
    }

    #[cfg(any(test, feature = "test-util"))]
    pub(crate) fn new_detailed(
        label: Cube,
        jobs: Vec<ScheduledJob>,
        delay: Time,
        resolutions: Vec<(CondId, Time)>,
        slipped: Vec<SlippedLock>,
        processes: usize,
        conditions: usize,
    ) -> Self {
        let mut schedule = PathSchedule::default();
        schedule.rebuild_from_parts(
            label,
            delay,
            processes,
            conditions,
            jobs.into_iter(),
            resolutions.into_iter(),
            &slipped,
        );
        schedule
    }

    /// Refills this schedule in place from the raw outputs of one scheduler
    /// run, reusing the existing buffers. This is what makes the merge
    /// algorithm's decision-tree walk allocation-free after warm-up: the walk
    /// pools `PathSchedule`s and every adjustment rebuilds one through
    /// [`TrackContext::reschedule_into`](crate::TrackContext::reschedule_into)
    /// instead of allocating a fresh schedule.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rebuild_from_parts(
        &mut self,
        label: Cube,
        delay: Time,
        processes: usize,
        conditions: usize,
        jobs: impl Iterator<Item = ScheduledJob>,
        resolutions: impl Iterator<Item = (CondId, Time)>,
        slipped: &[SlippedLock],
    ) {
        self.label = label;
        self.delay = delay;
        self.processes = processes;
        self.jobs.clear();
        self.jobs.extend(jobs);
        self.jobs.sort_by_key(|j| (j.start(), j.end(), j.job()));
        self.index.clear();
        self.index.resize(processes + conditions, ABSENT);
        for (position, sj) in self.jobs.iter().enumerate() {
            let slot = match sj.job() {
                Job::Process(pid) => pid.index(),
                Job::Broadcast(cond) => processes + cond.index(),
            };
            self.index[slot] = position as u32;
        }
        self.resolutions.clear();
        self.resolutions.extend(resolutions);
        self.resolutions
            .sort_unstable_by_key(|&(cond, time)| (time, cond));
        self.slipped.clear();
        self.slipped.extend_from_slice(slipped);
    }

    /// The label `L_k` of the alternative path this schedule belongs to.
    #[must_use]
    pub const fn label(&self) -> Cube {
        self.label
    }

    /// The delay of the path under this schedule: the activation time of the
    /// dummy sink process, i.e. the completion time of the whole path.
    #[must_use]
    pub const fn delay(&self) -> Time {
        self.delay
    }

    /// The scheduled jobs in ascending start-time order.
    #[must_use]
    pub fn jobs(&self) -> &[ScheduledJob] {
        &self.jobs
    }

    /// Number of scheduled jobs (processes plus condition broadcasts).
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the schedule contains no job.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The scheduled entry of a job, if the job is part of this path.
    #[must_use]
    pub fn entry(&self, job: Job) -> Option<&ScheduledJob> {
        let slot = match job {
            Job::Process(pid) if pid.index() < self.processes => pid.index(),
            Job::Broadcast(cond) if self.processes + cond.index() < self.index.len() => {
                self.processes + cond.index()
            }
            _ => return None,
        };
        let position = self.index[slot];
        (position != ABSENT).then(|| &self.jobs[position as usize])
    }

    /// The start time of a job, if the job is part of this path.
    #[must_use]
    pub fn start(&self, job: Job) -> Option<Time> {
        self.entry(job).map(ScheduledJob::start)
    }

    /// The completion time of a job, if the job is part of this path.
    #[must_use]
    pub fn end(&self, job: Job) -> Option<Time> {
        self.entry(job).map(ScheduledJob::end)
    }

    /// `true` when the job is scheduled on this path.
    #[must_use]
    pub fn contains(&self, job: Job) -> bool {
        self.entry(job).is_some()
    }

    /// The start times of all jobs as a map (useful for locking decisions in
    /// the merge algorithm).
    #[must_use]
    pub fn start_times(&self) -> HashMap<Job, Time> {
        self.jobs.iter().map(|j| (j.job(), j.start())).collect()
    }

    /// The condition resolutions cached by the scheduler, sorted by
    /// `(time, condition)`: one `(condition, completion time of its
    /// disjunction process)` entry per condition determined on this path.
    ///
    /// Schedules produced by [`ListScheduler`](crate::ListScheduler) always
    /// carry this cache, so the merge algorithm does not have to re-derive
    /// the resolutions from the graph on every repair restart. For schedules
    /// assembled by other means prefer
    /// [`condition_resolutions`](Self::condition_resolutions), which computes
    /// the same list from the graph.
    #[must_use]
    pub fn resolutions(&self) -> &[(CondId, Time)] {
        &self.resolutions
    }

    /// The locks that could not be honoured when this schedule was produced
    /// by [`reschedule`](crate::ListScheduler::reschedule): jobs whose
    /// activation time was fixed by the caller but whose data dependencies or
    /// guard conditions forced a later start. Empty for schedules built
    /// without locks and for well-formed merge inputs.
    #[must_use]
    pub fn slipped_locks(&self) -> &[SlippedLock] {
        &self.slipped
    }

    /// The completion times of the disjunction processes executed on this
    /// path, together with the condition they compute, in ascending
    /// completion-time order.
    ///
    /// These are the moments at which new condition values become available
    /// and therefore the nodes of the decision tree explored during schedule
    /// merging.
    #[must_use]
    pub fn condition_resolutions(&self, cpg: &Cpg) -> Vec<(CondId, Time)> {
        let mut out: Vec<(CondId, Time)> = self
            .jobs
            .iter()
            .filter_map(|sj| {
                let pid = sj.job().as_process()?;
                let cond = cpg.process(pid).computes()?;
                Some((cond, sj.end()))
            })
            .collect();
        out.sort_by_key(|&(cond, time)| (time, cond));
        out
    }

    /// The moment from which the value of `cond` is known on processing
    /// element `pe` under this schedule, or `None` when the condition is not
    /// determined on this path.
    ///
    /// The value is known on the processing element that executes the
    /// disjunction process from the moment that process terminates; on every
    /// other processing element it is known once the broadcast completes
    /// (broadcast start + `τ0`). When the architecture needs no broadcast
    /// (single computation resource), the termination time is used everywhere.
    #[must_use]
    pub fn condition_known_at(&self, cpg: &Cpg, cond: CondId, pe: PeId) -> Option<Time> {
        let disjunction = cpg.disjunction_of(cond);
        let computed_at = self.end(Job::Process(disjunction))?;
        if cpg.mapping(disjunction) == Some(pe) {
            return Some(computed_at);
        }
        match self.end(Job::Broadcast(cond)) {
            Some(broadcast_done) => Some(broadcast_done),
            None => Some(computed_at),
        }
    }

    /// The conditions (with the polarity given by the path label) whose value
    /// is known on `pe` at time `t` under this schedule, as a cube.
    ///
    /// This is the expression that heads the schedule-table column in which an
    /// activation at time `t` on `pe` is placed (rule 2 of the paper's table
    /// generation algorithm).
    #[must_use]
    pub fn known_conditions(&self, cpg: &Cpg, pe: Option<PeId>, t: Time) -> Cube {
        let mut cube = Cube::top();
        for lit in self.label.literals() {
            let known = match pe {
                Some(pe) => self.condition_known_at(cpg, lit.cond(), pe),
                // Jobs without a resource (dummy processes) see a condition as
                // soon as it is computed anywhere.
                None => self.end(Job::Process(cpg.disjunction_of(lit.cond()))),
            };
            if known.is_some_and(|known| known <= t) {
                cube = cube
                    .and(lit)
                    .expect("literals of a single track label are consistent");
            }
        }
        cube
    }

    /// Verifies the structural sanity of the schedule: data dependencies and
    /// resource exclusiveness are respected and every job of the path is
    /// placed. Returns a human-readable description of the first violation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint. Used by tests
    /// and property-based tests; a schedule produced by
    /// [`ListScheduler`](crate::ListScheduler) never fails this check.
    pub fn verify(&self, cpg: &Cpg, arch: &Architecture) -> Result<(), String> {
        // Dependencies among processes that are part of the path.
        for sj in &self.jobs {
            let Some(pid) = sj.job().as_process() else {
                continue;
            };
            for edge in cpg.in_edges(pid) {
                let pred = Job::Process(edge.from());
                if let Some(pred_end) = self.end(pred) {
                    let transmits = edge.condition().is_none_or(|lit| self.label.contains(lit));
                    if transmits && pred_end > sj.start() {
                        return Err(format!(
                            "dependency violated: {} ends at {} but {} starts at {}",
                            cpg.process(edge.from()).name(),
                            pred_end,
                            cpg.process(pid).name(),
                            sj.start()
                        ));
                    }
                }
            }
        }
        // Broadcasts start only after their disjunction process completed.
        for sj in &self.jobs {
            if let Some(cond) = sj.job().as_broadcast() {
                let disjunction = Job::Process(cpg.disjunction_of(cond));
                match self.end(disjunction) {
                    Some(done) if done <= sj.start() => {}
                    Some(done) => {
                        return Err(format!(
                            "broadcast of {cond} starts at {} before its disjunction process completes at {done}",
                            sj.start()
                        ))
                    }
                    None => {
                        return Err(format!(
                            "broadcast of {cond} scheduled but its disjunction process is not"
                        ))
                    }
                }
            }
        }
        // Resource exclusiveness.
        for (i, a) in self.jobs.iter().enumerate() {
            for b in self.jobs.iter().skip(i + 1) {
                let (Some(pa), Some(pb)) = (a.pe(), b.pe()) else {
                    continue;
                };
                if pa != pb || !arch.is_exclusive(pa) {
                    continue;
                }
                let overlap = a.start() < b.end() && b.start() < a.end();
                if overlap && a.duration() > Time::ZERO && b.duration() > Time::ZERO {
                    return Err(format!(
                        "jobs {} and {} overlap on exclusive resource {}",
                        a.job(),
                        b.job(),
                        arch.pe(pa).name()
                    ));
                }
            }
        }
        Ok(())
    }

    /// The processes of the path sorted by activation time — the order in
    /// which the merge algorithm consumes "the following process in the
    /// current schedule".
    #[must_use]
    pub fn processes_by_start(&self) -> Vec<(ProcessId, Time)> {
        self.jobs
            .iter()
            .filter_map(|sj| sj.job().as_process().map(|p| (p, sj.start())))
            .collect()
    }
}

// The dense index is derived from `jobs` (its layout additionally depends on
// the slot-space size), so equality compares the observable schedule only.
impl PartialEq for PathSchedule {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
            && self.jobs == other.jobs
            && self.delay == other.delay
            && self.resolutions == other.resolutions
            && self.slipped == other.slipped
    }
}

impl Eq for PathSchedule {}

impl fmt::Display for PathSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule of path {} ({} jobs, delay {})",
            self.label,
            self.len(),
            self.delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::ProcessId;

    fn job(idx: usize, start: u64, end: u64) -> ScheduledJob {
        ScheduledJob {
            job: Job::Process(ProcessId::from_index(idx)),
            start: Time::new(start),
            end: Time::new(end),
            pe: None,
        }
    }

    #[test]
    fn jobs_are_sorted_by_start_time() {
        let schedule = PathSchedule::new(
            Cube::top(),
            vec![job(2, 10, 12), job(1, 0, 3), job(3, 5, 9)],
            Time::new(12),
        );
        let starts: Vec<u64> = schedule.jobs().iter().map(|j| j.start().as_u64()).collect();
        assert_eq!(starts, vec![0, 5, 10]);
        assert_eq!(schedule.len(), 3);
        assert!(!schedule.is_empty());
        assert_eq!(schedule.delay(), Time::new(12));
    }

    #[test]
    fn lookup_by_job() {
        let schedule = PathSchedule::new(Cube::top(), vec![job(1, 0, 3)], Time::new(3));
        let j = Job::Process(ProcessId::from_index(1));
        assert_eq!(schedule.start(j), Some(Time::ZERO));
        assert_eq!(schedule.end(j), Some(Time::new(3)));
        assert!(schedule.contains(j));
        assert!(!schedule.contains(Job::Process(ProcessId::from_index(9))));
        assert_eq!(schedule.start_times().len(), 1);
        assert!(schedule.to_string().contains("delay 3"));
    }
}
