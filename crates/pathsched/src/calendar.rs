//! Occupancy calendar of one exclusive resource (processor or bus).

use cpg_arch::Time;

/// Reserved intervals of one exclusive resource, kept sorted, disjoint and
/// coalesced: overlapping or touching reservations are merged on insert, so
/// the interval list stays proportional to the number of *distinct* busy
/// periods rather than to the number of `reserve` calls. This matters for the
/// adjustment step of the merge algorithm, which pre-reserves every locked
/// job once per repair restart.
#[derive(Debug, Clone, Default)]
pub(crate) struct Calendar {
    /// Reserved `[start, end)` intervals, sorted by start, pairwise disjoint.
    intervals: Vec<(Time, Time)>,
}

impl Calendar {
    /// Earliest start `>= after` at which a job of length `duration` fits
    /// without overlapping a reserved interval.
    pub(crate) fn earliest_fit(&self, after: Time, duration: Time) -> Time {
        let mut candidate = after;
        for &(start, end) in &self.intervals {
            if candidate + duration <= start {
                break;
            }
            if end > candidate {
                candidate = end;
            }
        }
        candidate
    }

    /// Drops every reservation but keeps the interval storage allocated, so
    /// a calendar pooled in a [`RunScratch`](crate::RunScratch) is reusable
    /// across scheduler runs without allocator traffic.
    pub(crate) fn clear(&mut self) {
        self.intervals.clear();
    }

    /// Reserves `[start, start + duration)`, merging with any overlapping or
    /// touching intervals already present.
    pub(crate) fn reserve(&mut self, start: Time, duration: Time) {
        if duration.is_zero() {
            return;
        }
        let mut new_start = start;
        let mut new_end = start + duration;
        // First interval that could merge with the new one (ends at or after
        // its start), and one past the last (starts at or before its end).
        let lo = self.intervals.partition_point(|&(_, end)| end < new_start);
        let mut hi = lo;
        while hi < self.intervals.len() && self.intervals[hi].0 <= new_end {
            new_start = new_start.min(self.intervals[hi].0);
            new_end = new_end.max(self.intervals[hi].1);
            hi += 1;
        }
        self.intervals.splice(lo..hi, [(new_start, new_end)]);
    }

    /// Number of distinct busy periods currently reserved.
    #[cfg(test)]
    pub(crate) fn segments(&self) -> usize {
        self.intervals.len()
    }

    /// Allocated interval capacity (exposed to assert `clear` frees nothing).
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.intervals.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(units: u64) -> Time {
        Time::new(units)
    }

    #[test]
    fn finds_gaps_and_appends() {
        let mut cal = Calendar::default();
        cal.reserve(t(10), t(5));
        cal.reserve(t(20), t(5));
        // Fits before the first interval.
        assert_eq!(cal.earliest_fit(Time::ZERO, t(5)), Time::ZERO);
        // Does not fit before, lands in the gap between the intervals.
        assert_eq!(cal.earliest_fit(t(8), t(5)), t(15));
        // Too long for any gap: appended after the last interval.
        assert_eq!(cal.earliest_fit(Time::ZERO, t(11)), t(25));
        // Zero-length reservations are ignored.
        cal.reserve(t(2), Time::ZERO);
        assert_eq!(cal.earliest_fit(Time::ZERO, t(5)), Time::ZERO);
    }

    #[test]
    fn overlapping_reservations_coalesce() {
        let mut cal = Calendar::default();
        cal.reserve(t(10), t(5));
        // Identical reservation: no new segment.
        cal.reserve(t(10), t(5));
        assert_eq!(cal.segments(), 1);
        // Partial overlap extends the segment on both sides.
        cal.reserve(t(8), t(4));
        cal.reserve(t(13), t(4));
        assert_eq!(cal.segments(), 1);
        assert_eq!(cal.earliest_fit(t(8), t(1)), t(17));
        // Contained reservation changes nothing.
        cal.reserve(t(9), t(2));
        assert_eq!(cal.segments(), 1);
        assert_eq!(cal.earliest_fit(Time::ZERO, t(8)), Time::ZERO);
    }

    #[test]
    fn touching_reservations_merge_into_one_segment() {
        let mut cal = Calendar::default();
        cal.reserve(t(0), t(5));
        cal.reserve(t(5), t(5));
        assert_eq!(cal.segments(), 1);
        assert_eq!(cal.earliest_fit(Time::ZERO, t(1)), t(10));
    }

    #[test]
    fn a_reservation_can_bridge_several_segments() {
        let mut cal = Calendar::default();
        cal.reserve(t(0), t(2));
        cal.reserve(t(4), t(2));
        cal.reserve(t(8), t(2));
        assert_eq!(cal.segments(), 3);
        // Covers the gaps between all three: one segment remains.
        cal.reserve(t(1), t(8));
        assert_eq!(cal.segments(), 1);
        assert_eq!(cal.earliest_fit(Time::ZERO, t(1)), t(10));
    }

    #[test]
    fn clear_empties_the_calendar_but_keeps_its_storage() {
        let mut cal = Calendar::default();
        for i in 0..8 {
            cal.reserve(t(i * 10), t(2));
        }
        assert_eq!(cal.segments(), 8);
        let capacity = cal.capacity();
        assert!(capacity >= 8);
        cal.clear();
        assert_eq!(cal.segments(), 0);
        assert_eq!(cal.capacity(), capacity);
        // A cleared calendar behaves like a fresh one.
        assert_eq!(cal.earliest_fit(Time::ZERO, t(5)), Time::ZERO);
        cal.reserve(t(0), t(4));
        assert_eq!(cal.earliest_fit(Time::ZERO, t(5)), t(4));
    }

    #[test]
    fn disjoint_reservations_stay_separate_and_sorted() {
        let mut cal = Calendar::default();
        cal.reserve(t(20), t(2));
        cal.reserve(t(0), t(2));
        cal.reserve(t(10), t(2));
        assert_eq!(cal.segments(), 3);
        assert_eq!(cal.earliest_fit(Time::ZERO, t(3)), t(2));
        // A duration-8 job fits exactly in the [2, 10) gap; duration 9 must
        // skip past both remaining intervals.
        assert_eq!(cal.earliest_fit(t(1), t(8)), t(2));
        assert_eq!(cal.earliest_fit(t(1), t(9)), t(22));
    }
}
