//! Property-based tests of the schedule-table container: lookups must be
//! consistent with the entries inserted, and the requirement checks must
//! agree with brute-force definitions.

use proptest::prelude::*;

use cpg::{Assignment, CondId, Cube, ProcessId};
use cpg_arch::Time;
use cpg_path_sched::Job;
use cpg_table::ScheduleTable;

const CONDS: usize = 4;
const PROCS: usize = 6;

#[derive(Debug, Clone)]
struct Entry {
    job: Job,
    column: Cube,
    time: Time,
}

fn cube_strategy() -> impl Strategy<Value = Cube> {
    proptest::collection::vec(any::<Option<bool>>(), CONDS).prop_map(|choices| {
        let mut cube = Cube::top();
        for (index, polarity) in choices.into_iter().enumerate() {
            if let Some(value) = polarity {
                cube = cube
                    .and(CondId::new(index).literal(value))
                    .expect("distinct conditions cannot conflict");
            }
        }
        cube
    })
}

fn entry_strategy() -> impl Strategy<Value = Entry> {
    (0..PROCS, cube_strategy(), 0u64..100).prop_map(|(process, column, time)| Entry {
        job: Job::Process(ProcessId::from_index(process)),
        column,
        time: Time::new(time),
    })
}

fn entries_strategy() -> impl Strategy<Value = Vec<Entry>> {
    proptest::collection::vec(entry_strategy(), 0..24)
}

fn build_table(entries: &[Entry]) -> ScheduleTable {
    let mut table = ScheduleTable::new();
    for entry in entries {
        table.set(entry.job, entry.column, entry.time);
    }
    table
}

proptest! {
    // Pinned case count and shrink budget: CI runs must be deterministic and
    // fast regardless of PROPTEST_CASES / PROPTEST_MAX_SHRINK_ITERS in the
    // environment.
    #![proptest_config(ProptestConfig {
        cases: 128,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]
    #[test]
    fn get_returns_the_last_inserted_time(entries in entries_strategy()) {
        let table = build_table(&entries);
        // For every (job, column) pair the last insertion wins.
        for entry in &entries {
            let last = entries
                .iter()
                .rev()
                .find(|e| e.job == entry.job && e.column == entry.column)
                .expect("entry exists");
            prop_assert_eq!(table.get(entry.job, &entry.column), Some(last.time));
        }
        // Lookups of absent cells return None.
        prop_assert_eq!(
            table.get(Job::Process(ProcessId::from_index(PROCS + 1)), &Cube::top()),
            None
        );
    }

    #[test]
    fn entry_count_matches_distinct_cells(entries in entries_strategy()) {
        let table = build_table(&entries);
        let distinct: std::collections::HashSet<_> = entries
            .iter()
            .map(|e| (e.job, e.column))
            .collect();
        prop_assert_eq!(table.num_entries(), distinct.len());
        let distinct_jobs: std::collections::HashSet<_> =
            entries.iter().map(|e| e.job).collect();
        prop_assert_eq!(table.num_rows(), distinct_jobs.len());
        let distinct_columns: std::collections::HashSet<_> =
            entries.iter().map(|e| e.column).collect();
        prop_assert_eq!(table.num_columns(), distinct_columns.len());
        prop_assert_eq!(table.is_empty(), entries.is_empty());
    }

    #[test]
    fn removal_deletes_exactly_one_cell(entries in entries_strategy()) {
        if entries.is_empty() {
            return Ok(());
        }
        let mut table = build_table(&entries);
        let before = table.num_entries();
        let victim = &entries[0];
        let removed = table.remove(victim.job, &victim.column);
        prop_assert!(removed.is_some());
        prop_assert_eq!(table.num_entries(), before - 1);
        prop_assert_eq!(table.get(victim.job, &victim.column), None);
        // Removing again is a no-op.
        prop_assert_eq!(table.remove(victim.job, &victim.column), None);
        prop_assert_eq!(table.num_entries(), before - 1);
    }

    #[test]
    fn activation_time_agrees_with_a_brute_force_scan(
        entries in entries_strategy(),
        values in proptest::collection::vec(any::<bool>(), CONDS),
    ) {
        let table = build_table(&entries);
        let mut assignment = Assignment::new();
        for (index, value) in values.iter().enumerate() {
            assignment.assign(CondId::new(index), *value);
        }
        for job in (0..PROCS).map(|i| Job::Process(ProcessId::from_index(i))) {
            let satisfied: Vec<Time> = table
                .entries(job)
                .filter(|(column, _)| column.satisfied_by(&assignment))
                .map(|(_, time)| time)
                .collect();
            let expected = match satisfied.as_slice() {
                [] => None,
                [first, rest @ ..] => {
                    if rest.iter().all(|t| t == first) {
                        Some(*first)
                    } else {
                        None
                    }
                }
            };
            prop_assert_eq!(table.activation_time(job, &assignment), expected);
        }
    }

    #[test]
    fn compatible_entries_lists_exactly_the_non_exclusive_columns(
        entries in entries_strategy(),
        probe in cube_strategy(),
    ) {
        let table = build_table(&entries);
        for job in (0..PROCS).map(|i| Job::Process(ProcessId::from_index(i))) {
            let listed: Vec<(Cube, Time)> = table.compatible_entries(job, &probe).collect();
            for (column, _) in &listed {
                prop_assert!(column.compatible(&probe));
            }
            let total_compatible = table
                .entries(job)
                .filter(|(column, _)| column.compatible(&probe))
                .count();
            prop_assert_eq!(listed.len(), total_compatible);
        }
    }
}
