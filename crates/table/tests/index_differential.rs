//! Differential tests of the condition-partition row index: every
//! index-served query must return exactly the entries a linear scan of the
//! row would have produced — over random tables, through `TableTxn` overlays
//! (including transaction-created columns), and across `splice_log` commits,
//! which defer index maintenance (stale rows answer from the linear
//! fallback) until the next direct write rebuilds the row in one pass.
//!
//! Index-served iteration order is unspecified (mention-mask group order on
//! the table, key order on overlays), so results are compared as key-sorted
//! lists; the keys are unique within a row, making that a faithful set
//! comparison.

use proptest::prelude::*;

use cpg::{Assignment, CondId, Cube, ProcessId};
use cpg_arch::{PeId, Time};
use cpg_path_sched::Job;
use cpg_table::{ScheduleTable, TableTxn, TableView};

const CONDS: usize = 4;
/// Transactions may mention two extra conditions, so overlay writes routinely
/// create columns the base table has never seen.
const TXN_CONDS: usize = 6;
const PROCS: usize = 5;

#[derive(Debug, Clone)]
struct Entry {
    job: Job,
    column: Cube,
    time: Time,
    resource: Option<PeId>,
}

fn cube_strategy(conds: usize) -> impl Strategy<Value = Cube> {
    proptest::collection::vec(any::<Option<bool>>(), conds).prop_map(|choices| {
        let mut cube = Cube::top();
        for (index, polarity) in choices.into_iter().enumerate() {
            if let Some(value) = polarity {
                cube = cube
                    .and(CondId::new(index).literal(value))
                    .expect("distinct conditions cannot conflict");
            }
        }
        cube
    })
}

fn entry_strategy(conds: usize) -> impl Strategy<Value = Entry> {
    (0..PROCS, cube_strategy(conds), 0u64..12, 0usize..4).prop_map(
        |(process, column, time, resource)| Entry {
            job: Job::Process(ProcessId::from_index(process)),
            column,
            // A narrow time range forces shared time buckets.
            time: Time::new(time),
            // Three resources plus "no provenance".
            resource: (resource < 3).then(|| PeId::from_index(resource)),
        },
    )
}

fn entries_strategy(conds: usize, max: usize) -> impl Strategy<Value = Vec<Entry>> {
    proptest::collection::vec(entry_strategy(conds), 0..max)
}

fn build_table(entries: &[Entry]) -> ScheduleTable {
    let mut table = ScheduleTable::new();
    for entry in entries {
        table.set_on(entry.job, entry.column, entry.time, entry.resource);
    }
    table
}

fn jobs() -> impl Iterator<Item = Job> {
    (0..PROCS).map(|i| Job::Process(ProcessId::from_index(i)))
}

type Keyed = (u64, Cube, Time, Option<PeId>);

/// The index-served compatible scan of a view, key-sorted.
fn indexed_compatible<V: TableView + ?Sized>(view: &V, job: Job, probe: &Cube) -> Vec<Keyed> {
    let mut out = Vec::new();
    view.for_each_compatible_entry_on(job, probe, &mut |key, column, time, resource| {
        out.push((key, column, time, resource));
    });
    out.sort_unstable_by_key(|&(key, ..)| key);
    out
}

/// The linear-scan reference: a keyed scan filtered by the same predicate.
fn linear_compatible<V: TableView + ?Sized>(view: &V, job: Job, probe: &Cube) -> Vec<Keyed> {
    let mut out = Vec::new();
    view.for_each_keyed_entry_on(job, &mut |key, column, time, resource| {
        if column.compatible(probe) {
            out.push((key, column, time, resource));
        }
    });
    out
}

fn indexed_at<V: TableView + ?Sized>(
    view: &V,
    job: Job,
    time: Time,
) -> Vec<(u64, Cube, Option<PeId>)> {
    let mut out = Vec::new();
    view.for_each_entry_at_on(job, time, &mut |key, column, resource| {
        out.push((key, column, resource));
    });
    out.sort_unstable_by_key(|&(key, ..)| key);
    out
}

fn linear_at<V: TableView + ?Sized>(
    view: &V,
    job: Job,
    time: Time,
) -> Vec<(u64, Cube, Option<PeId>)> {
    let mut out = Vec::new();
    view.for_each_keyed_entry_on(job, &mut |key, column, tabled, resource| {
        if tabled == time {
            out.push((key, column, resource));
        }
    });
    out
}

proptest! {
    // Pinned case count and shrink budget, matching the other table suites.
    #![proptest_config(ProptestConfig {
        cases: 128,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn indexed_scans_match_linear_scans_on_random_tables(
        entries in entries_strategy(CONDS, 32),
        probe in cube_strategy(CONDS),
        time in 0u64..12,
    ) {
        let table = build_table(&entries);
        for job in jobs() {
            prop_assert_eq!(
                indexed_compatible(&table, job, &probe),
                linear_compatible(&table, job, &probe)
            );
            let at = Time::new(time);
            prop_assert_eq!(indexed_at(&table, job, at), linear_at(&table, job, at));
        }
    }

    #[test]
    fn indexed_scans_survive_interleaved_removals(
        entries in entries_strategy(CONDS, 24),
        probe in cube_strategy(CONDS),
    ) {
        let mut table = build_table(&entries);
        // Remove every third inserted cell, then re-check: `remove` rebuilds
        // the row's union masks and groups exactly.
        for entry in entries.iter().step_by(3) {
            table.remove(entry.job, &entry.column);
        }
        for job in jobs() {
            prop_assert_eq!(
                indexed_compatible(&table, job, &probe),
                linear_compatible(&table, job, &probe)
            );
            for t in 0..12 {
                let at = Time::new(t);
                prop_assert_eq!(indexed_at(&table, job, at), linear_at(&table, job, at));
            }
        }
    }

    #[test]
    fn indexed_scans_match_through_txn_overlays(
        base_entries in entries_strategy(CONDS, 16),
        txn_entries in entries_strategy(TXN_CONDS, 16),
        probe in cube_strategy(TXN_CONDS),
        time in 0u64..12,
    ) {
        let table = build_table(&base_entries);
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::new(base);
        for entry in &txn_entries {
            txn.set_on(entry.job, entry.column, entry.time, entry.resource);
        }
        let at = Time::new(time);
        for job in jobs() {
            // Overlay rows answer from the txn-local index delta; untouched
            // rows delegate to the base's indexed scan.
            prop_assert_eq!(
                indexed_compatible(&txn, job, &probe),
                linear_compatible(&txn, job, &probe)
            );
            prop_assert_eq!(indexed_at(&txn, job, at), linear_at(&txn, job, at));
        }

        // Splicing the log defers index maintenance on the touched rows
        // (they serve queries from the linear fallback until rebuilt); the
        // committed table must agree with a write-by-write replay and still
        // serve index == linear on every row, stale or fresh.
        let log = txn.into_log();
        let mut spliced = table.clone();
        spliced.splice_log(&log);
        let mut replayed = table.clone();
        for entry in &txn_entries {
            replayed.set_on(entry.job, entry.column, entry.time, entry.resource);
        }
        prop_assert_eq!(&spliced, &replayed);
        for job in jobs() {
            prop_assert_eq!(
                indexed_compatible(&spliced, job, &probe),
                linear_compatible(&spliced, job, &probe)
            );
            prop_assert_eq!(indexed_at(&spliced, job, at), linear_at(&spliced, job, at));
        }

        // A direct write to a spliced (stale) row rebuilds its index in one
        // pass; the rebuilt index must serve exactly what an incrementally
        // maintained one would.
        let rebuilt_probe = Cube::top();
        for (offset, job) in jobs().enumerate() {
            spliced.set_on(job, rebuilt_probe, Time::new(offset as u64), None);
            replayed.set_on(job, rebuilt_probe, Time::new(offset as u64), None);
        }
        prop_assert_eq!(&spliced, &replayed);
        for job in jobs() {
            prop_assert_eq!(
                indexed_compatible(&spliced, job, &probe),
                indexed_compatible(&replayed, job, &probe)
            );
            prop_assert_eq!(
                indexed_compatible(&spliced, job, &probe),
                linear_compatible(&spliced, job, &probe)
            );
            prop_assert_eq!(indexed_at(&spliced, job, at), linear_at(&spliced, job, at));
        }
    }

    #[test]
    fn activation_probes_match_the_serial_order_reference(
        entries in entries_strategy(CONDS, 24),
        values in proptest::collection::vec(any::<bool>(), CONDS),
        splice_tail in any::<bool>(),
    ) {
        // Half the runs splice the second half of the entries through a
        // transaction log instead of writing them directly, leaving the
        // touched rows' indexes stale: the activation probes must serve the
        // same answers from their linear fallbacks.
        let table = if splice_tail {
            let head = entries.len() / 2;
            let table = build_table(&entries[..head]);
            let base: &(dyn TableView + Sync) = &table;
            let mut txn = TableTxn::new(base);
            for entry in &entries[head..] {
                txn.set_on(entry.job, entry.column, entry.time, entry.resource);
            }
            let log = txn.into_log();
            let mut spliced = table.clone();
            spliced.splice_log(&log);
            spliced
        } else {
            build_table(&entries)
        };
        let mut assignment = Assignment::new();
        for (index, value) in values.iter().enumerate() {
            assignment.assign(CondId::new(index), *value);
        }
        for job in jobs() {
            // activation_resource: the reference is the pre-index algorithm —
            // a first-wins strictly-more-specific scan in serial entry order.
            let mut expected: Option<(usize, PeId)> = None;
            let mut satisfied_times = Vec::new();
            for (column, time, resource) in table.entries_on(job) {
                if !column.satisfied_by(&assignment) {
                    continue;
                }
                satisfied_times.push(time);
                if let Some(pe) = resource {
                    let specificity = column.len();
                    if expected.is_none_or(|(len, _)| specificity > len) {
                        expected = Some((specificity, pe));
                    }
                }
            }
            prop_assert_eq!(
                table.activation_resource(job, &assignment),
                expected.map(|(_, pe)| pe)
            );
            let expected_time = match satisfied_times.as_slice() {
                [] => None,
                [first, rest @ ..] if rest.iter().all(|t| t == first) => Some(*first),
                _ => None,
            };
            prop_assert_eq!(table.activation_time(job, &assignment), expected_time);
        }
    }
}

/// The crafted regression from the issue: a repair round creates a column
/// mid-walk (directly and under a transaction overlay), and the very next
/// probes must see it through the index.
#[test]
fn a_column_created_mid_walk_is_picked_up_by_the_index() {
    let c = |i: usize| CondId::new(i);
    let p1 = Job::Process(ProcessId::from_index(1));
    let mut table = ScheduleTable::new();
    table.set_on(p1, Cube::top(), Time::new(0), None);
    table.set_on(
        p1,
        Cube::from(c(0).is_true()),
        Time::new(3),
        Some(PeId::from_index(0)),
    );

    // Direct: a brand-new column cube (new mention-mask group) written into
    // an existing row is immediately served by both probe kinds.
    let fresh: Cube = [c(0).is_true(), c(1).is_false()].into_iter().collect();
    table.set_on(p1, fresh, Time::new(3), Some(PeId::from_index(1)));
    let probe = Cube::from(c(0).is_true());
    assert_eq!(
        indexed_compatible(&table, p1, &probe),
        linear_compatible(&table, p1, &probe)
    );
    assert!(indexed_compatible(&table, p1, &probe)
        .iter()
        .any(|&(_, column, ..)| column == fresh));
    assert!(indexed_at(&table, p1, Time::new(3))
        .iter()
        .any(|&(_, column, _)| column == fresh));

    // Through an overlay: the transaction creates another fresh column; its
    // own scans see it at the transaction-local key, and after the splice the
    // real table's index serves it too.
    let base: &(dyn TableView + Sync) = &table;
    let mut txn = TableTxn::new(base);
    let spec: Cube = [c(1).is_true(), c(2).is_true()].into_iter().collect();
    txn.set_on(p1, spec, Time::new(7), None);
    assert_eq!(
        indexed_compatible(&txn, p1, &spec),
        linear_compatible(&txn, p1, &spec)
    );
    assert!(indexed_compatible(&txn, p1, &spec)
        .iter()
        .any(|&(_, column, ..)| column == spec));
    assert!(indexed_at(&txn, p1, Time::new(7))
        .iter()
        .any(|&(_, column, _)| column == spec));

    let log = txn.into_log();
    let mut committed = table.clone();
    committed.splice_log(&log);
    assert!(indexed_compatible(&committed, p1, &spec)
        .iter()
        .any(|&(_, column, ..)| column == spec));
    assert_eq!(
        indexed_compatible(&committed, p1, &spec),
        linear_compatible(&committed, p1, &spec)
    );
}
