//! Analysis helpers on top of the schedule table: resource utilisation,
//! per-scenario load and CSV export.
//!
//! These are the numbers a designer looks at right after the worst-case
//! delay: how busy is each processor and bus in the worst case, and is the
//! architecture over-provisioned? The paper uses exactly this kind of
//! estimation to choose between the OAM architectures of its Table 2.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cpg::{Cpg, Cube};
use cpg_arch::{Architecture, PeId, Time};
use cpg_path_sched::Job;

use crate::table::ScheduleTable;

/// Busy time and utilisation of one processing element during one execution
/// scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceLoad {
    /// The processing element.
    pub pe: PeId,
    /// Total time the element executes processes (or transfers) during the
    /// scenario.
    pub busy: Time,
    /// Number of jobs executed on the element during the scenario.
    pub jobs: usize,
    /// `busy` divided by the scenario delay, in percent (0 when the delay is
    /// zero).
    pub utilization_percent: f64,
}

/// Per-scenario resource utilisation derived from a schedule table.
///
/// # Example
///
/// ```
/// use cpg::examples;
/// use cpg_merge::{generate_schedule_table, MergeConfig};
/// use cpg_table::utilization;
///
/// let system = examples::fig1();
/// let result = generate_schedule_table(
///     system.cpg(),
///     system.arch(),
///     &MergeConfig::new(system.broadcast_time()),
/// );
/// let track = &result.tracks().tracks()[0];
/// let loads = utilization(result.table(), system.cpg(), system.arch(), &track.label());
/// assert_eq!(loads.len(), system.arch().len());
/// assert!(loads.iter().any(|l| l.busy > cpg_arch::Time::ZERO));
/// ```
#[must_use]
pub fn utilization(
    table: &ScheduleTable,
    cpg: &Cpg,
    arch: &Architecture,
    label: &Cube,
) -> Vec<ResourceLoad> {
    let delay = table.track_delay(cpg, label);
    let mut busy: BTreeMap<PeId, (Time, usize)> =
        arch.ids().map(|pe| (pe, (Time::ZERO, 0))).collect();
    for (job, _, _) in table.all_entries() {
        let Job::Process(pid) = job else { continue };
        if !cpg.guard(pid).implied_by(label) {
            continue;
        }
        if table.activation_on_track(job, label).is_none() {
            continue;
        }
        let Some(pe) = cpg.mapping(pid) else { continue };
        let entry = busy.entry(pe).or_insert((Time::ZERO, 0));
        entry.0 += cpg.exec_time(pid);
        entry.1 += 1;
    }
    busy.into_iter()
        .map(|(pe, (busy, jobs))| ResourceLoad {
            pe,
            busy,
            jobs,
            utilization_percent: if delay.is_zero() {
                0.0
            } else {
                100.0 * busy.as_u64() as f64 / delay.as_u64() as f64
            },
        })
        .collect()
}

/// Exports a schedule table as CSV: one line per row, one column per
/// condition expression, empty cells for missing activation times. The first
/// column holds the process (or broadcast) name.
///
/// # Example
///
/// ```
/// use cpg::examples;
/// use cpg_merge::{generate_schedule_table, MergeConfig};
/// use cpg_table::to_csv;
///
/// let system = examples::diamond();
/// let result = generate_schedule_table(
///     system.cpg(),
///     system.arch(),
///     &MergeConfig::new(system.broadcast_time()),
/// );
/// let csv = to_csv(result.table(), system.cpg());
/// assert!(csv.lines().count() > 1);
/// assert!(csv.starts_with("process,"));
/// ```
#[must_use]
pub fn to_csv(table: &ScheduleTable, cpg: &Cpg) -> String {
    let mut columns: Vec<Cube> = table.columns().to_vec();
    columns.sort_by_key(|cube| (cube.len(), format!("{cube}")));

    let mut out = String::from("process");
    for column in &columns {
        let _ = write!(out, ",{}", cpg.display_cube(column));
    }
    out.push('\n');

    let mut jobs: Vec<Job> = table.jobs().collect();
    jobs.sort_by_key(|job| match job {
        Job::Process(pid) => (0, pid.index()),
        Job::Broadcast(cond) => (1, cond.index()),
    });
    for job in jobs {
        let name = match job {
            Job::Process(pid) => cpg.process(pid).name().to_owned(),
            Job::Broadcast(cond) => format!("broadcast {}", cpg.condition_name(cond)),
        };
        out.push_str(&name);
        for column in &columns {
            match table.get(job, column) {
                Some(time) => {
                    let _ = write!(out, ",{time}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{enumerate_tracks, examples, ProcessId};
    use cpg_arch::Time;

    fn diamond_table() -> (examples::ExampleSystem, ScheduleTable, cpg::TrackSet) {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let mut table = ScheduleTable::new();
        for track in tracks.iter() {
            for &pid in track.processes() {
                if cpg.process(pid).kind().is_dummy() {
                    continue;
                }
                let column = if cpg.guard(pid).is_true() {
                    Cube::top()
                } else {
                    track.label()
                };
                table.set(Job::Process(pid), column, Time::new(2 * pid.index() as u64));
            }
        }
        (system.clone(), table, tracks)
    }

    #[test]
    fn utilization_covers_every_processing_element() {
        let (system, table, tracks) = diamond_table();
        let label = tracks.tracks()[0].label();
        let loads = utilization(&table, system.cpg(), system.arch(), &label);
        assert_eq!(loads.len(), system.arch().len());
        let total_jobs: usize = loads.iter().map(|l| l.jobs).sum();
        // Every active, mapped process is attributed to exactly one resource.
        let active = tracks.tracks()[0]
            .processes()
            .iter()
            .filter(|&&p| !system.cpg().process(p).kind().is_dummy())
            .count();
        assert_eq!(total_jobs, active);
        for load in &loads {
            assert!(load.utilization_percent >= 0.0);
            assert!(load.utilization_percent <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn utilization_is_zero_for_an_empty_table() {
        let system = examples::diamond();
        let table = ScheduleTable::new();
        let loads = utilization(&table, system.cpg(), system.arch(), &Cube::top());
        assert!(loads.iter().all(|l| l.busy == Time::ZERO && l.jobs == 0));
        assert!(loads.iter().all(|l| l.utilization_percent == 0.0));
    }

    #[test]
    fn csv_has_one_line_per_row_and_consistent_columns() {
        let (system, table, _) = diamond_table();
        let csv = to_csv(&table, system.cpg());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + table.num_rows());
        let header_fields = lines[0].split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), header_fields);
        }
        assert!(csv.contains("decide"));
        assert!(csv.contains("hot"));
    }

    #[test]
    fn csv_cells_match_table_entries() {
        let mut table = ScheduleTable::new();
        let system = examples::diamond();
        let decide = system.cpg().process_by_name("decide").unwrap();
        table.set(Job::Process(decide), Cube::top(), Time::new(4));
        let csv = to_csv(&table, system.cpg());
        assert!(csv.contains("decide,4"));
        let _ = ProcessId::from_index(0);
    }
}
