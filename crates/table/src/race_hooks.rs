//! Instrumentation shims for the `race-check` interleaving explorer.
//!
//! With the `race-check` feature on, these forward table accesses to
//! `fj::race` — logical cell/row/column-structure reads and writes for the
//! vector-clock happens-before detector, plus the yield points that give the
//! virtual scheduler its interleaving granularity. Every entry point first
//! checks [`fj::race::on_vthread`], so instrumented code running outside an
//! exploration (including the normal test suite with the feature enabled)
//! pays one thread-local read and nothing else.
//!
//! With the feature off every function is an empty `#[inline(always)]` stub:
//! the instrumentation compiles to nothing on the hot path, which is what
//! keeps the gated benches inside their bench_guard envelope.
//!
//! Cell identity is hashed: a table cell is `(hash(job), hash(column))`, a
//! row is `hash(job)`, and the column *structure* (the cube → key mapping
//! that `has_column`/`column_key`/`column_bound` read and column creation
//! writes) is a single cell of its own namespace.

#[cfg(feature = "race-check")]
mod imp {
    use std::hash::{Hash, Hasher};

    use cpg::{Cube, FrontierHasher};
    use cpg_path_sched::Job;
    use fj::race::{self, CellId, YieldKind};

    const KIND_CELL: u32 = 0;
    const KIND_ROW: u32 = 1;
    const KIND_COLUMNS: u32 = 2;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FrontierHasher::new();
        value.hash(&mut hasher);
        hasher.finish()
    }

    fn cell(job: Job, column: &Cube) -> CellId {
        CellId {
            kind: KIND_CELL,
            a: hash_of(&job),
            b: hash_of(column),
        }
    }

    fn row(job: Job) -> CellId {
        CellId {
            kind: KIND_ROW,
            a: hash_of(&job),
            b: 0,
        }
    }

    fn columns() -> CellId {
        CellId {
            kind: KIND_COLUMNS,
            a: 0,
            b: 0,
        }
    }

    pub(crate) fn read_cell(job: Job, column: &Cube, label: &'static str) {
        if !race::on_vthread() {
            return;
        }
        race::read_cell(cell(job, column), label);
    }

    pub(crate) fn read_row(job: Job, label: &'static str) {
        if !race::on_vthread() {
            return;
        }
        race::read_cell(row(job), label);
    }

    pub(crate) fn read_columns(label: &'static str) {
        if !race::on_vthread() {
            return;
        }
        race::read_cell(columns(), label);
    }

    /// A shared-table cell write is also a write of its row: row scans
    /// record row-level reads, and they must conflict with any unordered
    /// cell write inside the scanned row.
    pub(crate) fn write_cell(job: Job, column: &Cube, label: &'static str) {
        if !race::on_vthread() {
            return;
        }
        race::write_cell(cell(job, column), label);
        race::write_cell(row(job), label);
    }

    pub(crate) fn write_columns(label: &'static str) {
        if !race::on_vthread() {
            return;
        }
        race::write_cell(columns(), label);
    }

    pub(crate) fn yield_spec_write() {
        race::yield_point(YieldKind::SpecWrite);
    }

    pub(crate) fn yield_validate() {
        race::yield_point(YieldKind::Validate);
    }

    pub(crate) fn yield_commit() {
        race::yield_point(YieldKind::Commit);
    }

    /// Report a log committed over a view it no longer validates against —
    /// the commit-protocol invariant ("back commits only after validation")
    /// that vector clocks alone cannot see, because commits are always
    /// join-ordered.
    pub(crate) fn stale_commit(site: &'static str) {
        if !race::on_vthread() {
            return;
        }
        race::report_protocol(format!(
            "{site}: transaction log committed into a view it does not validate against \
             (stale speculation committed without validation)"
        ));
    }

    /// `true` while the calling thread participates in an exploration —
    /// gates work (like the commit-time re-validation) that is too expensive
    /// for a mere stub call.
    pub(crate) fn active() -> bool {
        race::on_vthread()
    }
}

#[cfg(feature = "race-check")]
pub(crate) use imp::{
    active, read_cell, read_columns, read_row, stale_commit, write_cell, write_columns,
    yield_commit, yield_spec_write, yield_validate,
};

#[cfg(not(feature = "race-check"))]
mod stubs {
    use cpg::Cube;
    use cpg_path_sched::Job;

    #[inline(always)]
    pub(crate) fn read_cell(_job: Job, _column: &Cube, _label: &'static str) {}

    #[inline(always)]
    pub(crate) fn read_row(_job: Job, _label: &'static str) {}

    #[inline(always)]
    pub(crate) fn read_columns(_label: &'static str) {}

    #[inline(always)]
    pub(crate) fn write_cell(_job: Job, _column: &Cube, _label: &'static str) {}

    #[inline(always)]
    pub(crate) fn write_columns(_label: &'static str) {}

    #[inline(always)]
    pub(crate) fn yield_spec_write() {}

    #[inline(always)]
    pub(crate) fn yield_validate() {}

    #[inline(always)]
    pub(crate) fn yield_commit() {}

    #[inline(always)]
    pub(crate) fn stale_commit(_site: &'static str) {}

    #[inline(always)]
    pub(crate) fn active() -> bool {
        false
    }
}

#[cfg(not(feature = "race-check"))]
pub(crate) use stubs::{
    active, read_cell, read_columns, read_row, stale_commit, write_cell, write_columns,
    yield_commit, yield_spec_write, yield_validate,
};
