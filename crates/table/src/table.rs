//! The schedule table produced by the merging algorithm.

use std::fmt;

use cpg::{Assignment, Cpg, Cube, TrackSet};
use cpg_arch::{PeId, Time};
use cpg_path_sched::Job;

use crate::error::TableViolation;

/// One cell of the table: the activation time of a job under a column
/// expression, together with the resource the job occupied in the schedule
/// that tabled the time (its *provenance*).
///
/// The resource matters for condition broadcasts: their bus is chosen at
/// scheduling time, so a later adjustment that inherits the tabled activation
/// time as a lock must pin the broadcast to the bus recorded here rather than
/// re-deriving a track-local guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cell {
    time: Time,
    resource: Option<PeId>,
}

/// Sentinel for "job has no row yet" in the dense per-job row index.
const ABSENT: u32 = u32::MAX;

/// One row of the table: the job and its `(column index, cell)` entries,
/// sorted by column index (the table-wide insertion order of the columns).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    job: Job,
    entries: Vec<(u32, Cell)>,
}

/// The schedule table: one row per process (and per condition broadcast), one
/// column per conjunction of condition values, and in each cell the activation
/// time of the row's job when the column's expression holds.
///
/// The table is the artefact a distributed run-time scheduler executes: on
/// every processing element a trivial non-preemptive scheduler activates a
/// process at the tabled time as soon as the column expression is satisfied by
/// the condition values it has seen so far (Section 3 of the paper).
///
/// # Example
///
/// ```
/// use cpg::{Cube, CondId, ProcessId};
/// use cpg_arch::Time;
/// use cpg_path_sched::Job;
/// use cpg_table::ScheduleTable;
///
/// let mut table = ScheduleTable::new();
/// let p1 = Job::Process(ProcessId::from_index(1));
/// let c = CondId::new(0);
///
/// table.set(p1, Cube::top(), Time::new(0));
/// table.set(p1, Cube::from(c.is_true()), Time::new(5));
/// assert_eq!(table.get(p1, &Cube::top()), Some(Time::new(0)));
/// assert_eq!(table.num_columns(), 2);
/// assert_eq!(table.num_rows(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScheduleTable {
    columns: Vec<Cube>,
    /// Rows sorted by [`Job`], so iteration order matches the old map-based
    /// representation; the dense indices below make row lookup O(1).
    rows: Vec<Row>,
    /// Process index -> position in `rows` ([`ABSENT`] when the process has
    /// no row), grown on demand. The merge algorithm resolves every
    /// `entries`/`entries_on` probe of its repair and locking loops through
    /// this index, so it is a dense array rather than a search.
    process_rows: Vec<u32>,
    /// Condition index -> position in `rows` of the condition's broadcast
    /// row, grown on demand.
    broadcast_rows: Vec<u32>,
    /// Process index -> number of writes ever applied to the process's row
    /// (grown on demand, 0 when never written). Versions survive row removal
    /// so an optimistic reader can detect a remove/re-insert cycle; they are
    /// bookkeeping for [`crate::TableTxn`] validation and take no part in
    /// table equality.
    process_versions: Vec<u64>,
    /// Condition index -> write count of the condition's broadcast row.
    broadcast_versions: Vec<u64>,
}

// The dense row indices are derived from `rows` (their length additionally
// depends on the largest identifier ever probed), so equality compares the
// observable table content only.
impl PartialEq for ScheduleTable {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl Eq for ScheduleTable {}

impl ScheduleTable {
    /// Creates an empty schedule table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of columns (distinct condition-value expressions).
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (jobs with at least one activation time).
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total number of activation times stored in the table.
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.rows.iter().map(|row| row.entries.len()).sum()
    }

    /// `true` when the table holds no activation time at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column expressions, in insertion order.
    #[must_use]
    pub fn columns(&self) -> &[Cube] {
        &self.columns
    }

    /// Iterates over the rows (jobs) of the table, in ascending [`Job`]
    /// order.
    pub fn jobs(&self) -> impl Iterator<Item = Job> + '_ {
        self.rows.iter().map(|row| row.job)
    }

    /// The position of the row of `job` in the dense index, if the job has
    /// one.
    #[inline]
    fn row_position(&self, job: Job) -> Option<usize> {
        let (index, slot) = match job {
            Job::Process(pid) => (&self.process_rows, pid.index()),
            Job::Broadcast(cond) => (&self.broadcast_rows, cond.index()),
        };
        index
            .get(slot)
            .copied()
            .filter(|&position| position != ABSENT)
            .map(|position| position as usize)
    }

    #[inline]
    fn row(&self, job: Job) -> Option<&Row> {
        self.row_position(job).map(|position| &self.rows[position])
    }

    /// Points the dense index entry of `job` at `position` (growing the
    /// index when the identifier is larger than anything seen so far).
    fn index_row(&mut self, job: Job, position: u32) {
        let (index, slot) = match job {
            Job::Process(pid) => (&mut self.process_rows, pid.index()),
            Job::Broadcast(cond) => (&mut self.broadcast_rows, cond.index()),
        };
        if index.len() <= slot {
            index.resize(slot + 1, ABSENT);
        }
        index[slot] = position;
    }

    /// The number of writes ([`ScheduleTable::set_on`] and
    /// [`ScheduleTable::remove`] calls) ever applied to the row of `job`;
    /// 0 when the job has never been written.
    ///
    /// The version is bumped on every write — including an overwrite with the
    /// same cell value — and is *not* reset when the last entry of a row is
    /// removed, so two equal versions observed at different times guarantee
    /// the row content did not change in between. [`crate::TableTxn`] builds
    /// its read-set validation on this.
    #[must_use]
    #[inline]
    pub fn row_version(&self, job: Job) -> u64 {
        let (versions, slot) = match job {
            Job::Process(pid) => (&self.process_versions, pid.index()),
            Job::Broadcast(cond) => (&self.broadcast_versions, cond.index()),
        };
        versions.get(slot).copied().unwrap_or(0)
    }

    /// Bumps the write counter of the row of `job`, growing the version
    /// vector on demand.
    #[inline]
    fn bump_version(&mut self, job: Job) {
        let (versions, slot) = match job {
            Job::Process(pid) => (&mut self.process_versions, pid.index()),
            Job::Broadcast(cond) => (&mut self.broadcast_versions, cond.index()),
        };
        if versions.len() <= slot {
            versions.resize(slot + 1, 0);
        }
        versions[slot] += 1;
    }

    /// The position of the row of `job`, inserting an empty row (keeping
    /// `rows` sorted by job and the dense indices consistent) when absent.
    fn row_position_or_insert(&mut self, job: Job) -> usize {
        if let Some(position) = self.row_position(job) {
            return position;
        }
        let position = self.rows.partition_point(|row| row.job < job);
        self.rows.insert(
            position,
            Row {
                job,
                entries: Vec::new(),
            },
        );
        // Rows after the insertion point shifted by one; re-point their
        // index entries. Rows are inserted once per job, so this stays cheap.
        for shifted in position..self.rows.len() {
            let shifted_job = self.rows[shifted].job;
            self.index_row(shifted_job, shifted as u32);
        }
        position
    }

    /// Records the activation time of `job` in the column headed by `column`,
    /// creating the column when it does not exist yet, without resource
    /// provenance. Returns the previously stored time for that cell, if any.
    ///
    /// Tables consumed by the merge/dispatch pipeline should prefer
    /// [`ScheduleTable::set_on`], which records the resource the job occupied
    /// when the time was tabled.
    pub fn set(&mut self, job: Job, column: Cube, time: Time) -> Option<Time> {
        self.set_on(job, column, time, None)
    }

    /// Records the activation time of `job` in the column headed by `column`
    /// together with the resource the job occupied in the schedule that
    /// produced the time (`None` for dummy jobs, which consume no resource).
    /// Creates the column when it does not exist yet and returns the
    /// previously stored time for that cell, if any.
    #[inline]
    pub fn set_on(
        &mut self,
        job: Job,
        column: Cube,
        time: Time,
        resource: Option<PeId>,
    ) -> Option<Time> {
        let index = self.column_index_or_insert(column) as u32;
        let position = self.row_position_or_insert(job);
        self.bump_version(job);
        let entries = &mut self.rows[position].entries;
        match entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(at) => {
                let previous = std::mem::replace(&mut entries[at].1, Cell { time, resource });
                Some(previous.time)
            }
            Err(at) => {
                entries.insert(at, (index, Cell { time, resource }));
                None
            }
        }
    }

    /// Grafts a column into the table: returns the insertion-order index of
    /// the column headed by `column`, appending a fresh column past the
    /// current [`column bound`](crate::TableView::column_bound) when the cube
    /// is not tabled yet.
    ///
    /// This is the renumbering primitive behind
    /// [`TableView::splice_log`](crate::TableView::splice_log): a retained
    /// column keeps its index, a transaction-local column key is renumbered
    /// to the next free index, and because logs replay in their original
    /// write order the relative order of spliced columns — and hence the
    /// serial entry order inside every row — is preserved.
    pub fn graft_column(&mut self, column: Cube) -> usize {
        self.column_index_or_insert(column)
    }

    /// Replays a chronological write log with each distinct column resolved
    /// to its grafted index exactly once, writing cells by direct index.
    ///
    /// Must be observably identical to calling [`ScheduleTable::set_on`] per
    /// write (including per-write row version bumps); it only skips the
    /// repeated column lookups.
    pub(crate) fn splice_writes(&mut self, writes: &[crate::txn::Write]) {
        let mut grafted: Vec<(Cube, u32)> = Vec::new();
        for write in writes {
            let index = match grafted.binary_search_by(|&(c, _)| c.cmp(&write.column)) {
                Ok(at) => grafted[at].1,
                Err(at) => {
                    let index = self.column_index_or_insert(write.column) as u32;
                    grafted.insert(at, (write.column, index));
                    index
                }
            };
            let position = self.row_position_or_insert(write.job);
            self.bump_version(write.job);
            let cell = Cell {
                time: write.time,
                resource: write.resource,
            };
            let entries = &mut self.rows[position].entries;
            match entries.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(at) => entries[at].1 = cell,
                Err(at) => entries.insert(at, (index, cell)),
            }
        }
    }

    /// Removes the activation time of `job` in the column headed by `column`,
    /// returning it if it was present.
    pub fn remove(&mut self, job: Job, column: &Cube) -> Option<Time> {
        let index = self.column_index(column)? as u32;
        let position = self.row_position(job)?;
        let entries = &mut self.rows[position].entries;
        let at = entries.binary_search_by_key(&index, |&(i, _)| i).ok()?;
        let (_, cell) = entries.remove(at);
        self.bump_version(job);
        let entries = &mut self.rows[position].entries;
        if entries.is_empty() {
            self.rows.remove(position);
            self.index_row(job, ABSENT);
            for shifted in position..self.rows.len() {
                let shifted_job = self.rows[shifted].job;
                self.index_row(shifted_job, shifted as u32);
            }
        }
        Some(cell.time)
    }

    /// The cell of `job` under the exact column index, if present.
    #[inline]
    fn cell(&self, job: Job, index: usize) -> Option<&Cell> {
        let row = self.row(job)?;
        let at = row
            .entries
            .binary_search_by_key(&(index as u32), |&(i, _)| i)
            .ok()?;
        Some(&row.entries[at].1)
    }

    /// The activation time of `job` in the column headed exactly by `column`.
    #[must_use]
    #[inline]
    pub fn get(&self, job: Job, column: &Cube) -> Option<Time> {
        let index = self.column_index(column)?;
        self.cell(job, index).map(|cell| cell.time)
    }

    /// The resource recorded for `job` in the column headed exactly by
    /// `column`, when the cell exists and carries provenance.
    #[must_use]
    #[inline]
    pub fn resource(&self, job: Job, column: &Cube) -> Option<PeId> {
        let index = self.column_index(column)?;
        self.cell(job, index).and_then(|cell| cell.resource)
    }

    /// Iterates over the `(column, activation time)` entries of a row.
    pub fn entries(&self, job: Job) -> impl Iterator<Item = (Cube, Time)> + '_ {
        self.entries_on(job).map(|(column, time, _)| (column, time))
    }

    /// Iterates over the `(column, activation time, recorded resource)`
    /// entries of a row. The row is resolved through the dense per-job
    /// index, so probing a job is O(1) plus the iteration itself.
    pub fn entries_on(&self, job: Job) -> impl Iterator<Item = (Cube, Time, Option<PeId>)> + '_ {
        self.row(job).into_iter().flat_map(move |row| {
            row.entries
                .iter()
                .map(|&(i, cell)| (self.columns[i as usize], cell.time, cell.resource))
        })
    }

    /// Iterates over every `(job, column, time)` entry of the table.
    pub fn all_entries(&self) -> impl Iterator<Item = (Job, Cube, Time)> + '_ {
        self.all_entries_on()
            .map(|(job, column, time, _)| (job, column, time))
    }

    /// Iterates over every `(job, column, time, recorded resource)` entry of
    /// the table.
    pub fn all_entries_on(&self) -> impl Iterator<Item = (Job, Cube, Time, Option<PeId>)> + '_ {
        self.rows.iter().flat_map(move |row| {
            row.entries.iter().map(move |&(i, cell)| {
                (row.job, self.columns[i as usize], cell.time, cell.resource)
            })
        })
    }

    /// `true` when the row for `job` contains at least one activation time.
    #[must_use]
    pub fn contains_job(&self, job: Job) -> bool {
        self.row_position(job).is_some()
    }

    /// The entries of a row that are *compatible* with (not excluded by) the
    /// given column expression — the potential conflicts examined by the
    /// table-generation algorithm before placing a new activation time.
    pub fn compatible_entries<'a>(
        &'a self,
        job: Job,
        column: &'a Cube,
    ) -> impl Iterator<Item = (Cube, Time)> + 'a {
        self.entries(job)
            .filter(move |(existing, _)| existing.compatible(column))
    }

    /// The activation time applicable during an execution described by a
    /// complete condition assignment: the entry of the row whose column
    /// expression is satisfied by the assignment.
    ///
    /// When the table satisfies requirement 2 the applicable time is unique;
    /// if several satisfied columns carry *different* times, `None` is
    /// returned (callers that need to diagnose this use
    /// [`ScheduleTable::verify`]).
    #[must_use]
    pub fn activation_time(&self, job: Job, assignment: &Assignment) -> Option<Time> {
        let mut found: Option<Time> = None;
        for (column, time) in self.entries(job) {
            if column.satisfied_by(assignment) {
                match found {
                    None => found = Some(time),
                    Some(existing) if existing != time => return None,
                    Some(_) => {}
                }
            }
        }
        found
    }

    /// The resource recorded for the activation of `job` applicable during an
    /// execution described by a complete condition assignment: the provenance
    /// of the most specific satisfied column that carries one.
    ///
    /// This is the bus a locked condition broadcast must occupy when the
    /// tabled time is enforced on another path's schedule, and the resource
    /// the dispatcher/simulator charge the activation to.
    #[must_use]
    pub fn activation_resource(&self, job: Job, assignment: &Assignment) -> Option<PeId> {
        let mut best: Option<(usize, PeId)> = None;
        for (column, _, resource) in self.entries_on(job) {
            if !column.satisfied_by(assignment) {
                continue;
            }
            if let Some(pe) = resource {
                let specificity = column.len();
                if best.is_none_or(|(len, _)| specificity > len) {
                    best = Some((specificity, pe));
                }
            }
        }
        best.map(|(_, pe)| pe)
    }

    /// The activation time applicable on the alternative path labelled
    /// `label` (shorthand for [`ScheduleTable::activation_time`] with the
    /// label converted to an assignment).
    #[must_use]
    pub fn activation_on_track(&self, job: Job, label: &Cube) -> Option<Time> {
        self.activation_time(job, &Assignment::from_cube(label))
    }

    /// The delay of the system on the alternative path labelled `label`: the
    /// latest completion time (activation + execution) over every process
    /// activated on that path according to this table.
    #[must_use]
    pub fn track_delay(&self, cpg: &Cpg, label: &Cube) -> Time {
        let assignment = Assignment::from_cube(label);
        let mut delay = Time::ZERO;
        for job in self.jobs() {
            let Job::Process(pid) = job else { continue };
            if !cpg.guard(pid).implied_by(label) {
                continue;
            }
            if let Some(start) = self.activation_time(job, &assignment) {
                delay = delay.max(start + cpg.exec_time(pid));
            }
        }
        delay
    }

    /// The worst-case delay `δ_max` guaranteed by this table: the maximum of
    /// [`ScheduleTable::track_delay`] over every alternative path.
    #[must_use]
    pub fn worst_case_delay(&self, cpg: &Cpg, tracks: &TrackSet) -> Time {
        tracks
            .iter()
            .map(|t| self.track_delay(cpg, &t.label()))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Checks the table against requirements 1–3 of Section 3 of the paper:
    ///
    /// 1. every activation time sits in a column that implies the guard of
    ///    its process;
    /// 2. alternative activation times of the same process sit in mutually
    ///    exclusive columns;
    /// 3. every process receives an activation time on every alternative path
    ///    on which its guard holds.
    ///
    /// Requirement 4 (activation decisions use only condition values already
    /// known on the local processing element) is about the run-time behaviour
    /// of the table and is checked by the simulator of the `cpg-sim` crate.
    ///
    /// # Errors
    ///
    /// Returns every violation found (empty result means the table is
    /// correct).
    pub fn verify(&self, cpg: &Cpg, tracks: &TrackSet) -> Result<(), Vec<TableViolation>> {
        let mut violations = Vec::new();

        // Requirement 1 + sanity of row keys.
        for (job, column, _) in self.all_entries() {
            let guard = match job {
                Job::Process(pid) => {
                    if pid.index() >= cpg.len() {
                        violations.push(TableViolation::UnknownJob { job });
                        continue;
                    }
                    cpg.guard(pid).clone()
                }
                Job::Broadcast(cond) => {
                    if cond.index() >= cpg.num_conditions() {
                        violations.push(TableViolation::UnknownJob { job });
                        continue;
                    }
                    cpg.guard(cpg.disjunction_of(cond)).clone()
                }
            };
            if !guard.implied_by(&column) {
                violations.push(TableViolation::GuardViolated { job, column });
            }
        }

        // Requirement 2.
        for job in self.jobs() {
            let entries: Vec<(Cube, Time)> = self.entries(job).collect();
            for (i, &(first, first_time)) in entries.iter().enumerate() {
                for &(second, second_time) in entries.iter().skip(i + 1) {
                    if first_time != second_time && first.compatible(&second) {
                        violations.push(TableViolation::Nondeterministic {
                            job,
                            first,
                            second,
                            first_time,
                            second_time,
                        });
                    }
                }
            }
        }

        // Requirement 3.
        for track in tracks.iter() {
            let assignment = Assignment::from_cube(&track.label());
            for &pid in track.processes() {
                if cpg.process(pid).kind().is_dummy() {
                    continue;
                }
                let job = Job::Process(pid);
                if self.activation_time(job, &assignment).is_none() {
                    violations.push(TableViolation::MissingActivation {
                        job,
                        track: track.label(),
                    });
                }
            }
            for cond in track.determined_conditions() {
                let job = Job::Broadcast(cond);
                if self.contains_job(job) && self.activation_time(job, &assignment).is_none() {
                    violations.push(TableViolation::MissingActivation {
                        job,
                        track: track.label(),
                    });
                }
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Renders the table in the style of the paper's Table 1: one row per
    /// job, one column per condition expression (named with the graph's
    /// condition names), cells holding activation times.
    #[must_use]
    pub fn render(&self, cpg: &Cpg) -> String {
        let mut columns: Vec<(usize, &Cube)> = self.columns.iter().enumerate().collect();
        columns.sort_by_key(|(_, cube)| (cube.len(), format!("{cube}")));

        let job_name = |job: Job| -> String {
            match job {
                Job::Process(pid) => cpg.process(pid).name().to_owned(),
                Job::Broadcast(cond) => format!("{} (broadcast)", cpg.condition_name(cond)),
            }
        };

        let mut header = vec!["process".to_owned()];
        header.extend(columns.iter().map(|(_, cube)| cpg.display_cube(cube)));
        let mut table_rows: Vec<Vec<String>> = vec![header];

        // Ordinary and communication processes first (by id), then broadcasts.
        let mut jobs: Vec<Job> = self.jobs().collect();
        jobs.sort_by_key(|job| match job {
            Job::Process(pid) => (0, pid.index()),
            Job::Broadcast(cond) => (1, cond.index()),
        });
        for job in jobs {
            let mut row = vec![job_name(job)];
            for &(index, _) in &columns {
                let cell = self
                    .cell(job, index)
                    .map_or(String::new(), |cell| cell.time.to_string());
                row.push(cell);
            }
            table_rows.push(row);
        }

        // Column widths.
        let width: Vec<usize> = (0..table_rows[0].len())
            .map(|c| table_rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (i, row) in table_rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:>width$}", width = width[c]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
            if i == 0 {
                let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
                out.push_str(&sep.join("-+-"));
                out.push('\n');
            }
        }
        out
    }

    #[inline]
    fn column_index(&self, column: &Cube) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    /// The insertion-order index of `column`, if the table has that column.
    #[inline]
    pub(crate) fn column_position(&self, column: &Cube) -> Option<usize> {
        self.column_index(column)
    }

    /// Visits the entries of the row of `job` in column-index order, passing
    /// the table-wide column index as a stable sort key.
    ///
    /// `#[inline]` (like on the other probe methods) so the merge walk's
    /// monomorphized hot loops can inline the scan across the crate boundary
    /// and devirtualize the visitor closure, matching the cost of direct
    /// slice iteration.
    #[inline]
    pub(crate) fn visit_keyed_entries(
        &self,
        job: Job,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        if let Some(row) = self.row(job) {
            for &(index, cell) in &row.entries {
                visit(
                    u64::from(index),
                    self.columns[index as usize],
                    cell.time,
                    cell.resource,
                );
            }
        }
    }

    #[inline]
    fn column_index_or_insert(&mut self, column: Cube) -> usize {
        match self.column_index(&column) {
            Some(index) => index,
            None => {
                self.columns.push(column);
                self.columns.len() - 1
            }
        }
    }
}

impl fmt::Display for ScheduleTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule table with {} rows, {} columns, {} entries",
            self.num_rows(),
            self.num_columns(),
            self.num_entries()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{enumerate_tracks, examples, CondId, ProcessId};

    fn c(i: usize) -> CondId {
        CondId::new(i)
    }

    fn p(i: usize) -> Job {
        Job::Process(ProcessId::from_index(i))
    }

    #[test]
    fn set_get_remove_round_trip() {
        let mut table = ScheduleTable::new();
        assert!(table.is_empty());
        assert_eq!(table.set(p(1), Cube::top(), Time::new(0)), None);
        assert_eq!(
            table.set(p(1), Cube::top(), Time::new(2)),
            Some(Time::new(0))
        );
        assert_eq!(table.get(p(1), &Cube::top()), Some(Time::new(2)));
        assert_eq!(table.get(p(2), &Cube::top()), None);
        assert_eq!(table.remove(p(1), &Cube::top()), Some(Time::new(2)));
        assert!(table.is_empty());
        assert_eq!(table.remove(p(1), &Cube::top()), None);
    }

    #[test]
    fn columns_are_shared_between_rows() {
        let mut table = ScheduleTable::new();
        let col = Cube::from(c(0).is_true());
        table.set(p(1), col, Time::new(1));
        table.set(p(2), col, Time::new(2));
        table.set(p(2), Cube::top(), Time::new(0));
        assert_eq!(table.num_columns(), 2);
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.num_entries(), 3);
        assert_eq!(table.entries(p(2)).count(), 2);
        assert_eq!(table.jobs().count(), 2);
        assert!(table.contains_job(p(1)));
        assert!(!table.contains_job(p(9)));
        assert!(table.to_string().contains("3 entries"));
    }

    #[test]
    fn cells_carry_resource_provenance() {
        use cpg_arch::PeId;
        let mut table = ScheduleTable::new();
        let bus1 = PeId::from_index(3);
        let b = Job::Broadcast(c(0));
        let col = Cube::from(c(1).is_true());
        assert_eq!(table.set_on(b, col, Time::new(4), Some(bus1)), None);
        assert_eq!(table.get(b, &col), Some(Time::new(4)));
        assert_eq!(table.resource(b, &col), Some(bus1));
        // `set` records no provenance.
        table.set(b, Cube::from(c(1).is_false()), Time::new(9));
        assert_eq!(table.resource(b, &Cube::from(c(1).is_false())), None);
        let on: Vec<_> = table.entries_on(b).collect();
        assert_eq!(on.len(), 2);
        assert!(on.contains(&(col, Time::new(4), Some(bus1))));
        assert_eq!(table.all_entries_on().count(), 2);
        // The applicable resource follows the satisfied column.
        let mut asg = Assignment::new();
        asg.assign(c(1), true);
        assert_eq!(table.activation_resource(b, &asg), Some(bus1));
        asg.assign(c(1), false);
        assert_eq!(table.activation_resource(b, &asg), None);
    }

    #[test]
    fn activation_time_selects_the_satisfied_column() {
        let mut table = ScheduleTable::new();
        let dck: Cube = [c(0).is_true(), c(1).is_true(), c(2).is_true()]
            .into_iter()
            .collect();
        let dck_not: Cube = [c(0).is_true(), c(1).is_true(), c(2).is_false()]
            .into_iter()
            .collect();
        table.set(p(14), dck, Time::new(24));
        table.set(p(14), dck_not, Time::new(35));

        let mut asg = Assignment::new();
        asg.assign(c(0), true);
        asg.assign(c(1), true);
        asg.assign(c(2), true);
        assert_eq!(table.activation_time(p(14), &asg), Some(Time::new(24)));
        asg.assign(c(2), false);
        assert_eq!(table.activation_time(p(14), &asg), Some(Time::new(35)));
        asg.assign(c(1), false);
        assert_eq!(table.activation_time(p(14), &asg), None);
    }

    #[test]
    fn ambiguous_activation_yields_none() {
        let mut table = ScheduleTable::new();
        table.set(p(3), Cube::from(c(0).is_true()), Time::new(5));
        table.set(p(3), Cube::from(c(1).is_true()), Time::new(9));
        let mut asg = Assignment::new();
        asg.assign(c(0), true);
        asg.assign(c(1), true);
        assert_eq!(table.activation_time(p(3), &asg), None);
        // Same time in compatible columns is fine.
        let mut table = ScheduleTable::new();
        table.set(p(3), Cube::from(c(0).is_true()), Time::new(5));
        table.set(p(3), Cube::from(c(1).is_true()), Time::new(5));
        assert_eq!(table.activation_time(p(3), &asg), Some(Time::new(5)));
    }

    #[test]
    fn compatible_entries_reports_potential_conflicts() {
        let mut table = ScheduleTable::new();
        let d = Cube::from(c(1).is_true());
        let not_d = Cube::from(c(1).is_false());
        table.set(p(5), d, Time::new(3));
        table.set(p(5), not_d, Time::new(8));
        let probe = Cube::from(c(0).is_true());
        let conflicts: Vec<_> = table.compatible_entries(p(5), &probe).collect();
        assert_eq!(conflicts.len(), 2);
        let probe: Cube = [c(0).is_true(), c(1).is_true()].into_iter().collect();
        let conflicts: Vec<_> = table.compatible_entries(p(5), &probe).collect();
        assert_eq!(conflicts, vec![(d, Time::new(3))]);
    }

    #[test]
    fn verify_detects_guard_and_determinism_violations() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let cond = system.condition("C").unwrap();
        let hot = cpg.process_by_name("hot").unwrap();

        // Guard violation: `hot` (guard C) activated unconditionally.
        let mut table = ScheduleTable::new();
        table.set(Job::Process(hot), Cube::top(), Time::new(0));
        let violations = table.verify(cpg, &tracks).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, TableViolation::GuardViolated { .. })));

        // Determinism violation: two different times in compatible columns.
        let decide = cpg.process_by_name("decide").unwrap();
        let mut table = ScheduleTable::new();
        table.set(Job::Process(decide), Cube::top(), Time::new(0));
        table.set(
            Job::Process(decide),
            Cube::from(cond.is_true()),
            Time::new(4),
        );
        let violations = table.verify(cpg, &tracks).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, TableViolation::Nondeterministic { .. })));
    }

    #[test]
    fn verify_detects_missing_activations() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let table = ScheduleTable::new();
        let violations = table.verify(cpg, &tracks).unwrap_err();
        // Every schedulable process of every track is missing.
        assert!(violations
            .iter()
            .all(|v| matches!(v, TableViolation::MissingActivation { .. })));
        assert!(!violations.is_empty());
    }

    #[test]
    fn verify_accepts_a_complete_consistent_table() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let cond = system.condition("C").unwrap();
        let mut table = ScheduleTable::new();
        // Hand-written consistent table for the diamond example.
        for track in tracks.iter() {
            for &pid in track.processes() {
                if cpg.process(pid).kind().is_dummy() {
                    continue;
                }
                let column = if cpg.guard(pid).is_true() {
                    Cube::top()
                } else {
                    track.label()
                };
                // Use deterministic times: same process, same time everywhere.
                table.set(Job::Process(pid), column, Time::new(pid.index() as u64));
            }
        }
        table.verify(cpg, &tracks).unwrap();
        let delay = table.worst_case_delay(cpg, &tracks);
        assert!(delay > Time::ZERO);
        let _ = cond;
    }

    #[test]
    fn track_delay_uses_execution_times() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let decide = cpg.process_by_name("decide").unwrap();
        let mut table = ScheduleTable::new();
        table.set(Job::Process(decide), Cube::top(), Time::new(10));
        let label = tracks.tracks()[0].label();
        // decide takes 2 time units.
        assert_eq!(table.track_delay(cpg, &label), Time::new(12));
    }

    #[test]
    fn render_contains_headers_rows_and_times() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let cond = system.condition("C").unwrap();
        let decide = cpg.process_by_name("decide").unwrap();
        let hot = cpg.process_by_name("hot").unwrap();
        let mut table = ScheduleTable::new();
        table.set(Job::Process(decide), Cube::top(), Time::new(0));
        table.set(Job::Process(hot), Cube::from(cond.is_true()), Time::new(3));
        table.set(Job::Broadcast(cond), Cube::top(), Time::new(2));
        let rendered = table.render(cpg);
        assert!(rendered.contains("true"));
        assert!(rendered.contains('C'));
        assert!(rendered.contains("decide"));
        assert!(rendered.contains("hot"));
        assert!(rendered.contains("C (broadcast)"));
        assert!(rendered.contains('3'));
    }

    #[test]
    fn unknown_jobs_are_reported() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let mut table = ScheduleTable::new();
        table.set(p(999), Cube::top(), Time::new(0));
        let violations = table.verify(cpg, &tracks).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, TableViolation::UnknownJob { .. })));
    }
}
