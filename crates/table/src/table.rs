//! The schedule table produced by the merging algorithm.

use std::fmt;

use cpg::{Assignment, Cpg, Cube, TrackSet};
use cpg_arch::{PeId, Time};
use cpg_path_sched::Job;

use crate::error::TableViolation;

/// One cell of the table: the activation time of a job under a column
/// expression, together with the resource the job occupied in the schedule
/// that tabled the time (its *provenance*).
///
/// The resource matters for condition broadcasts: their bus is chosen at
/// scheduling time, so a later adjustment that inherits the tabled activation
/// time as a lock must pin the broadcast to the bus recorded here rather than
/// re-deriving a track-local guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cell {
    time: Time,
    resource: Option<PeId>,
}

/// Sentinel for "job has no row yet" in the dense per-job row index.
const ABSENT: u32 = u32::MAX;

/// Metadata of one mention-mask partition of a row's entries: every member
/// in the group's `RowIndex::members` range has a column cube mentioning
/// exactly the conditions in `mask` (with either polarity).
///
/// The partition is what turns the merge walk's per-row compatibility scans
/// into group lookups: a probe whose mention mask is disjoint from `mask` is
/// compatible with *every* member (compatibility can only fail on a condition
/// both cubes mention), and more generally a probe that the member union
/// masks cannot exclude (`probe.positive ∩ neg = ∅ ∧ probe.negative ∩ pos =
/// ∅`) is compatible with the whole group without testing a single cube.
#[derive(Debug, Clone)]
struct GroupMeta {
    /// Mention mask (`positive | negative`) shared by every member's column.
    mask: u64,
    /// Union of the members' positive masks.
    pos: u64,
    /// Union of the members' negative masks.
    neg: u64,
    /// Start of the group's run in [`RowIndex::members`]; the run ends where
    /// the next group's starts (or at `members.len()` for the last group).
    start: u32,
}

/// The condition-partition index of one row: entries grouped by the mention
/// mask of their column cube, plus aggregate union masks and a per-time
/// bucketing. Fully derived from the row's entries (and the table's columns);
/// it takes no part in row equality.
///
/// Both views are *flat* vectors delimited by metadata (CSR-style) rather
/// than nested per-group/per-bucket vectors: the warm re-merge path splices
/// whole chain logs through this index cell by cell, and a nested layout
/// would allocate on most of those writes (deep-nest rows put nearly every
/// entry in its own group), while flat inserts stay amortized
/// allocation-free.
///
/// Maintenance is *deferred across log splices*: `splice_writes` replays a
/// whole chain's worth of cells into a row, and paying a sorted insert into
/// `members` and `times` per spliced cell dominates the warm re-merge cost.
/// A splice therefore only updates the serial entry list and marks the index
/// `stale`; every query on a stale row falls back to the linear entry scan
/// (the exact pre-index behaviour), and the next direct `set_on` to the row
/// rebuilds the whole index in one pass (capacity reused, so the rebuild is
/// allocation-free after warm-up). The serial walk never splices, so its
/// probes always see a fresh index.
#[derive(Debug, Clone, Default)]
struct RowIndex {
    /// Union of the positive masks over every column tabled in the row.
    pos_union: u64,
    /// Union of the negative masks over every column tabled in the row.
    neg_union: u64,
    /// `(column index, column cube, cell)` sorted by (mention mask, column
    /// index); group `i` owns `members[groups[i].start..groups[i + 1].start]`.
    members: Vec<(u32, Cube, Cell)>,
    /// Group metadata, sorted by mention mask.
    groups: Vec<GroupMeta>,
    /// `(tabled time, column index, column cube, recorded resource)` sorted
    /// by (time, column index). Serves the "entries at exactly time T"
    /// probes of the repair loops as one binary search.
    times: Vec<(Time, u32, Cube, Option<PeId>)>,
    /// `true` after a log splice deferred maintenance: the vectors above are
    /// outdated and queries must scan the row's serial entries instead. The
    /// next direct write rebuilds the index and clears the flag.
    stale: bool,
}

impl RowIndex {
    /// The `members` range owned by group `group`.
    fn group_range(&self, group: usize) -> (usize, usize) {
        let start = self.groups[group].start as usize;
        let end = self
            .groups
            .get(group + 1)
            .map_or(self.members.len(), |next| next.start as usize);
        (start, end)
    }

    /// Registers a fresh cell under the column at table-wide index `col`.
    fn insert(&mut self, col: u32, column: Cube, cell: Cell) {
        let (pos, neg) = (column.positive_mask(), column.negative_mask());
        self.pos_union |= pos;
        self.neg_union |= neg;
        let mask = pos | neg;
        let group = match self.groups.binary_search_by_key(&mask, |g| g.mask) {
            Ok(at) => at,
            Err(at) => {
                let start = self
                    .groups
                    .get(at)
                    .map_or(self.members.len(), |next| next.start as usize);
                self.groups.insert(
                    at,
                    GroupMeta {
                        mask,
                        pos: 0,
                        neg: 0,
                        start: start as u32,
                    },
                );
                at
            }
        };
        self.groups[group].pos |= pos;
        self.groups[group].neg |= neg;
        let (start, end) = self.group_range(group);
        let slot = match self.members[start..end].binary_search_by_key(&col, |&(i, _, _)| i) {
            Ok(offset) => {
                debug_assert!(false, "insert of an already-indexed column");
                offset
            }
            Err(offset) => offset,
        };
        self.members.insert(start + slot, (col, column, cell));
        for later in &mut self.groups[group + 1..] {
            later.start += 1;
        }
        let bucket = self.time_slot(cell.time, col).unwrap_err();
        self.times
            .insert(bucket, (cell.time, col, column, cell.resource));
    }

    /// Updates the indexed copies of a cell that was overwritten in place.
    /// The column (and hence every mask) is unchanged; only the time
    /// bucketing and the cached cells can move.
    fn overwrite(&mut self, col: u32, column: Cube, old: Cell, new: Cell) {
        let mask = column.mention_mask();
        let group = self
            .groups
            .binary_search_by_key(&mask, |g| g.mask)
            .expect("overwrite of an unindexed column");
        let (start, end) = self.group_range(group);
        let slot = self.members[start..end]
            .binary_search_by_key(&col, |&(i, _, _)| i)
            .expect("overwrite of an unindexed column");
        self.members[start + slot].2 = new;
        if old.time == new.time {
            if old.resource != new.resource {
                let bucket = self
                    .time_slot(old.time, col)
                    .expect("time slot of an indexed cell");
                self.times[bucket].3 = new.resource;
            }
        } else {
            let bucket = self
                .time_slot(old.time, col)
                .expect("time slot of an indexed cell");
            self.times.remove(bucket);
            let bucket = self.time_slot(new.time, col).unwrap_err();
            self.times
                .insert(bucket, (new.time, col, column, new.resource));
        }
    }

    /// Unregisters the cell of the column at index `col`. Union masks are
    /// recomputed exactly, so the index stays a pure function of the
    /// remaining entries.
    fn remove(&mut self, col: u32, column: Cube, cell: Cell) {
        let mask = column.mention_mask();
        if let Ok(group) = self.groups.binary_search_by_key(&mask, |g| g.mask) {
            let (start, end) = self.group_range(group);
            if let Ok(slot) = self.members[start..end].binary_search_by_key(&col, |&(i, _, _)| i) {
                self.members.remove(start + slot);
                for later in &mut self.groups[group + 1..] {
                    later.start -= 1;
                }
                if end - start == 1 {
                    self.groups.remove(group);
                } else {
                    let (start, end) = self.group_range(group);
                    let (mut pos, mut neg) = (0, 0);
                    for &(_, c, _) in &self.members[start..end] {
                        pos |= c.positive_mask();
                        neg |= c.negative_mask();
                    }
                    self.groups[group].pos = pos;
                    self.groups[group].neg = neg;
                }
            }
        }
        self.pos_union = 0;
        self.neg_union = 0;
        for group in &self.groups {
            self.pos_union |= group.pos;
            self.neg_union |= group.neg;
        }
        if let Ok(bucket) = self.time_slot(cell.time, col) {
            self.times.remove(bucket);
        }
    }

    /// Position of `(time, col)` in the flat time bucketing (`Err` is the
    /// insertion slot).
    fn time_slot(&self, time: Time, col: u32) -> Result<usize, usize> {
        self.times
            .binary_search_by(|&(t, i, _, _)| (t, i).cmp(&(time, col)))
    }

    /// Recomputes the whole index from the row's serial entries after a
    /// splice deferred maintenance. One pass plus two in-place sorts; the
    /// vector capacities survive the `clear`, so a rebuild allocates nothing
    /// once the row has been rebuilt at its high-water size before.
    fn rebuild(&mut self, entries: &[(u32, Cell)], columns: &[Cube]) {
        self.members.clear();
        self.groups.clear();
        self.times.clear();
        self.pos_union = 0;
        self.neg_union = 0;
        for &(col, cell) in entries {
            let column = columns[col as usize];
            self.members.push((col, column, cell));
            self.times.push((cell.time, col, column, cell.resource));
        }
        self.members
            .sort_unstable_by_key(|&(col, column, _)| (column.mention_mask(), col));
        self.times
            .sort_unstable_by_key(|&(time, col, ..)| (time, col));
        for (at, &(_, column, _)) in self.members.iter().enumerate() {
            let (pos, neg) = (column.positive_mask(), column.negative_mask());
            self.pos_union |= pos;
            self.neg_union |= neg;
            let mask = pos | neg;
            match self.groups.last_mut() {
                Some(last) if last.mask == mask => {
                    last.pos |= pos;
                    last.neg |= neg;
                }
                _ => self.groups.push(GroupMeta {
                    mask,
                    pos,
                    neg,
                    start: at as u32,
                }),
            }
        }
        self.stale = false;
    }
}

/// One row of the table: the job and its `(column index, cell)` entries,
/// sorted by column index (the table-wide insertion order of the columns),
/// plus the derived condition-partition index over those entries.
#[derive(Debug, Clone)]
struct Row {
    job: Job,
    entries: Vec<(u32, Cell)>,
    index: RowIndex,
}

// The partition index is derived from `entries` (and the shared column
// list), so equality compares the observable row content only.
impl PartialEq for Row {
    fn eq(&self, other: &Self) -> bool {
        self.job == other.job && self.entries == other.entries
    }
}

impl Eq for Row {}

/// The schedule table: one row per process (and per condition broadcast), one
/// column per conjunction of condition values, and in each cell the activation
/// time of the row's job when the column's expression holds.
///
/// The table is the artefact a distributed run-time scheduler executes: on
/// every processing element a trivial non-preemptive scheduler activates a
/// process at the tabled time as soon as the column expression is satisfied by
/// the condition values it has seen so far (Section 3 of the paper).
///
/// # Example
///
/// ```
/// use cpg::{Cube, CondId, ProcessId};
/// use cpg_arch::Time;
/// use cpg_path_sched::Job;
/// use cpg_table::ScheduleTable;
///
/// let mut table = ScheduleTable::new();
/// let p1 = Job::Process(ProcessId::from_index(1));
/// let c = CondId::new(0);
///
/// table.set(p1, Cube::top(), Time::new(0));
/// table.set(p1, Cube::from(c.is_true()), Time::new(5));
/// assert_eq!(table.get(p1, &Cube::top()), Some(Time::new(0)));
/// assert_eq!(table.num_columns(), 2);
/// assert_eq!(table.num_rows(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScheduleTable {
    columns: Vec<Cube>,
    /// Rows sorted by [`Job`], so iteration order matches the old map-based
    /// representation; the dense indices below make row lookup O(1).
    rows: Vec<Row>,
    /// Process index -> position in `rows` ([`ABSENT`] when the process has
    /// no row), grown on demand. The merge algorithm resolves every
    /// `entries`/`entries_on` probe of its repair and locking loops through
    /// this index, so it is a dense array rather than a search.
    process_rows: Vec<u32>,
    /// Condition index -> position in `rows` of the condition's broadcast
    /// row, grown on demand.
    broadcast_rows: Vec<u32>,
    /// Process index -> number of writes ever applied to the process's row
    /// (grown on demand, 0 when never written). Versions survive row removal
    /// so an optimistic reader can detect a remove/re-insert cycle; they are
    /// bookkeeping for [`crate::TableTxn`] validation and take no part in
    /// table equality.
    process_versions: Vec<u64>,
    /// Condition index -> write count of the condition's broadcast row.
    broadcast_versions: Vec<u64>,
}

// The dense row indices are derived from `rows` (their length additionally
// depends on the largest identifier ever probed), so equality compares the
// observable table content only.
impl PartialEq for ScheduleTable {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl Eq for ScheduleTable {}

impl ScheduleTable {
    /// Creates an empty schedule table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of columns (distinct condition-value expressions).
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (jobs with at least one activation time).
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total number of activation times stored in the table.
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.rows.iter().map(|row| row.entries.len()).sum()
    }

    /// `true` when the table holds no activation time at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column expressions, in insertion order.
    #[must_use]
    pub fn columns(&self) -> &[Cube] {
        &self.columns
    }

    /// Iterates over the rows (jobs) of the table, in ascending [`Job`]
    /// order.
    pub fn jobs(&self) -> impl Iterator<Item = Job> + '_ {
        self.rows.iter().map(|row| row.job)
    }

    /// The position of the row of `job` in the dense index, if the job has
    /// one.
    #[inline]
    fn row_position(&self, job: Job) -> Option<usize> {
        let (index, slot) = match job {
            Job::Process(pid) => (&self.process_rows, pid.index()),
            Job::Broadcast(cond) => (&self.broadcast_rows, cond.index()),
        };
        index
            .get(slot)
            .copied()
            .filter(|&position| position != ABSENT)
            .map(|position| position as usize)
    }

    #[inline]
    fn row(&self, job: Job) -> Option<&Row> {
        self.row_position(job).map(|position| &self.rows[position])
    }

    /// Points the dense index entry of `job` at `position` (growing the
    /// index when the identifier is larger than anything seen so far).
    fn index_row(&mut self, job: Job, position: u32) {
        let (index, slot) = match job {
            Job::Process(pid) => (&mut self.process_rows, pid.index()),
            Job::Broadcast(cond) => (&mut self.broadcast_rows, cond.index()),
        };
        if index.len() <= slot {
            index.resize(slot + 1, ABSENT);
        }
        index[slot] = position;
    }

    /// The number of writes ([`ScheduleTable::set_on`] and
    /// [`ScheduleTable::remove`] calls) ever applied to the row of `job`;
    /// 0 when the job has never been written.
    ///
    /// The version is bumped on every write — including an overwrite with the
    /// same cell value — and is *not* reset when the last entry of a row is
    /// removed, so two equal versions observed at different times guarantee
    /// the row content did not change in between. [`crate::TableTxn`] builds
    /// its read-set validation on this.
    #[must_use]
    #[inline]
    pub fn row_version(&self, job: Job) -> u64 {
        let (versions, slot) = match job {
            Job::Process(pid) => (&self.process_versions, pid.index()),
            Job::Broadcast(cond) => (&self.broadcast_versions, cond.index()),
        };
        versions.get(slot).copied().unwrap_or(0)
    }

    /// Bumps the write counter of the row of `job`, growing the version
    /// vector on demand.
    #[inline]
    fn bump_version(&mut self, job: Job) {
        let (versions, slot) = match job {
            Job::Process(pid) => (&mut self.process_versions, pid.index()),
            Job::Broadcast(cond) => (&mut self.broadcast_versions, cond.index()),
        };
        if versions.len() <= slot {
            versions.resize(slot + 1, 0);
        }
        versions[slot] += 1;
    }

    /// The position of the row of `job`, inserting an empty row (keeping
    /// `rows` sorted by job and the dense indices consistent) when absent.
    fn row_position_or_insert(&mut self, job: Job) -> usize {
        if let Some(position) = self.row_position(job) {
            return position;
        }
        let position = self.rows.partition_point(|row| row.job < job);
        self.rows.insert(
            position,
            Row {
                job,
                entries: Vec::new(),
                index: RowIndex::default(),
            },
        );
        // Rows after the insertion point shifted by one; re-point their
        // index entries. Rows are inserted once per job, so this stays cheap.
        for shifted in position..self.rows.len() {
            let shifted_job = self.rows[shifted].job;
            self.index_row(shifted_job, shifted as u32);
        }
        position
    }

    /// Records the activation time of `job` in the column headed by `column`,
    /// creating the column when it does not exist yet, without resource
    /// provenance. Returns the previously stored time for that cell, if any.
    ///
    /// Tables consumed by the merge/dispatch pipeline should prefer
    /// [`ScheduleTable::set_on`], which records the resource the job occupied
    /// when the time was tabled.
    pub fn set(&mut self, job: Job, column: Cube, time: Time) -> Option<Time> {
        self.set_on(job, column, time, None)
    }

    /// Records the activation time of `job` in the column headed by `column`
    /// together with the resource the job occupied in the schedule that
    /// produced the time (`None` for dummy jobs, which consume no resource).
    /// Creates the column when it does not exist yet and returns the
    /// previously stored time for that cell, if any.
    #[inline]
    pub fn set_on(
        &mut self,
        job: Job,
        column: Cube,
        time: Time,
        resource: Option<PeId>,
    ) -> Option<Time> {
        let index = self.column_index_or_insert(column) as u32;
        let position = self.row_position_or_insert(job);
        self.bump_version(job);
        self.write_cell(position, index, column, Cell { time, resource })
            .map(|cell| cell.time)
    }

    /// Writes `cell` into the row at `position` under the column at table
    /// index `index`, keeping the sorted entry list and the row's partition
    /// index in sync. Returns the replaced cell, if the write overwrote one.
    ///
    /// A row left stale by a [`splice`](ScheduleTable::splice_writes) is
    /// rebuilt here in one pass before the incremental update, so direct
    /// writers always leave a fresh index behind.
    #[inline]
    fn write_cell(
        &mut self,
        position: usize,
        index: u32,
        column: Cube,
        cell: Cell,
    ) -> Option<Cell> {
        let row = &mut self.rows[position];
        if row.index.stale {
            let previous = Self::write_entry(&mut row.entries, index, cell);
            row.index.rebuild(&row.entries, &self.columns);
            return previous;
        }
        match row.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(at) => {
                let previous = std::mem::replace(&mut row.entries[at].1, cell);
                row.index.overwrite(index, column, previous, cell);
                Some(previous)
            }
            Err(at) => {
                row.entries.insert(at, (index, cell));
                row.index.insert(index, column, cell);
                None
            }
        }
    }

    /// Writes `cell` into the sorted serial entry list alone, returning the
    /// replaced cell if any.
    #[inline]
    fn write_entry(entries: &mut Vec<(u32, Cell)>, index: u32, cell: Cell) -> Option<Cell> {
        match entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(at) => Some(std::mem::replace(&mut entries[at].1, cell)),
            Err(at) => {
                entries.insert(at, (index, cell));
                None
            }
        }
    }

    /// Writes `cell` into the row at `position` with index maintenance
    /// *deferred*: only the serial entry list is updated and the row's
    /// partition index is marked stale. Queries on a stale row fall back to
    /// the linear entry scan, and the next [`write_cell`] rebuilds the index.
    ///
    /// This is the splice path's write primitive: a warm re-merge replays
    /// whole chain logs cell by cell, and per-cell sorted inserts into the
    /// index would dominate its cost.
    #[inline]
    fn write_cell_deferred(&mut self, position: usize, index: u32, cell: Cell) -> Option<Cell> {
        let row = &mut self.rows[position];
        row.index.stale = true;
        Self::write_entry(&mut row.entries, index, cell)
    }

    /// Grafts a column into the table: returns the insertion-order index of
    /// the column headed by `column`, appending a fresh column past the
    /// current [`column bound`](crate::TableView::column_bound) when the cube
    /// is not tabled yet.
    ///
    /// This is the renumbering primitive behind
    /// [`TableView::splice_log`](crate::TableView::splice_log): a retained
    /// column keeps its index, a transaction-local column key is renumbered
    /// to the next free index, and because logs replay in their original
    /// write order the relative order of spliced columns — and hence the
    /// serial entry order inside every row — is preserved.
    pub fn graft_column(&mut self, column: Cube) -> usize {
        self.column_index_or_insert(column)
    }

    /// Replays a chronological write log with each distinct column resolved
    /// to its grafted index exactly once, writing cells by direct index.
    ///
    /// Must be observably identical to calling [`ScheduleTable::set_on`] per
    /// write (including per-write row version bumps); it only skips the
    /// repeated column lookups and defers partition-index maintenance on the
    /// touched rows (queries on a stale row serve the same entries from the
    /// linear scan until the next direct write rebuilds the index).
    pub(crate) fn splice_writes(&mut self, writes: &[crate::txn::Write]) {
        let mut grafted: Vec<(Cube, u32)> = Vec::new();
        for write in writes {
            let index = match grafted.binary_search_by(|&(c, _)| c.cmp(&write.column)) {
                Ok(at) => grafted[at].1,
                Err(at) => {
                    let index = self.column_index_or_insert(write.column) as u32;
                    grafted.insert(at, (write.column, index));
                    index
                }
            };
            let position = self.row_position_or_insert(write.job);
            self.bump_version(write.job);
            let cell = Cell {
                time: write.time,
                resource: write.resource,
            };
            self.write_cell_deferred(position, index, cell);
        }
    }

    /// Removes the activation time of `job` in the column headed by `column`,
    /// returning it if it was present.
    pub fn remove(&mut self, job: Job, column: &Cube) -> Option<Time> {
        let index = self.column_index(column)? as u32;
        let position = self.row_position(job)?;
        let entries = &mut self.rows[position].entries;
        let at = entries.binary_search_by_key(&index, |&(i, _)| i).ok()?;
        let (_, cell) = entries.remove(at);
        self.bump_version(job);
        let row = &mut self.rows[position];
        if row.entries.is_empty() {
            self.rows.remove(position);
            self.index_row(job, ABSENT);
            for shifted in position..self.rows.len() {
                let shifted_job = self.rows[shifted].job;
                self.index_row(shifted_job, shifted as u32);
            }
        } else if !row.index.stale {
            row.index.remove(index, *column, cell);
        }
        Some(cell.time)
    }

    /// The cell of `job` under the exact column index, if present.
    #[inline]
    fn cell(&self, job: Job, index: usize) -> Option<&Cell> {
        let row = self.row(job)?;
        let at = row
            .entries
            .binary_search_by_key(&(index as u32), |&(i, _)| i)
            .ok()?;
        Some(&row.entries[at].1)
    }

    /// The activation time of `job` in the column headed exactly by `column`.
    #[must_use]
    #[inline]
    pub fn get(&self, job: Job, column: &Cube) -> Option<Time> {
        let index = self.column_index(column)?;
        self.cell(job, index).map(|cell| cell.time)
    }

    /// The resource recorded for `job` in the column headed exactly by
    /// `column`, when the cell exists and carries provenance.
    #[must_use]
    #[inline]
    pub fn resource(&self, job: Job, column: &Cube) -> Option<PeId> {
        let index = self.column_index(column)?;
        self.cell(job, index).and_then(|cell| cell.resource)
    }

    /// Iterates over the `(column, activation time)` entries of a row.
    pub fn entries(&self, job: Job) -> impl Iterator<Item = (Cube, Time)> + '_ {
        self.entries_on(job).map(|(column, time, _)| (column, time))
    }

    /// Iterates over the `(column, activation time, recorded resource)`
    /// entries of a row. The row is resolved through the dense per-job
    /// index, so probing a job is O(1) plus the iteration itself.
    pub fn entries_on(&self, job: Job) -> impl Iterator<Item = (Cube, Time, Option<PeId>)> + '_ {
        self.row(job).into_iter().flat_map(move |row| {
            row.entries
                .iter()
                .map(|&(i, cell)| (self.columns[i as usize], cell.time, cell.resource))
        })
    }

    /// Iterates over every `(job, column, time)` entry of the table.
    pub fn all_entries(&self) -> impl Iterator<Item = (Job, Cube, Time)> + '_ {
        self.all_entries_on()
            .map(|(job, column, time, _)| (job, column, time))
    }

    /// Iterates over every `(job, column, time, recorded resource)` entry of
    /// the table.
    pub fn all_entries_on(&self) -> impl Iterator<Item = (Job, Cube, Time, Option<PeId>)> + '_ {
        self.rows.iter().flat_map(move |row| {
            row.entries.iter().map(move |&(i, cell)| {
                (row.job, self.columns[i as usize], cell.time, cell.resource)
            })
        })
    }

    /// `true` when the row for `job` contains at least one activation time.
    #[must_use]
    pub fn contains_job(&self, job: Job) -> bool {
        self.row_position(job).is_some()
    }

    /// The entries of a row that are *compatible* with (not excluded by) the
    /// given column expression — the potential conflicts examined by the
    /// table-generation algorithm before placing a new activation time.
    ///
    /// Served from the row's condition-partition index, so entries come out
    /// in mention-mask group order rather than column insertion order; a
    /// group whose union masks cannot exclude `column` is yielded without
    /// testing any member cube. A row whose index is stale (maintenance was
    /// deferred by a log splice) is scanned linearly instead, in column
    /// insertion order.
    pub fn compatible_entries<'a>(
        &'a self,
        job: Job,
        column: &'a Cube,
    ) -> impl Iterator<Item = (Cube, Time)> + 'a {
        let (probe_pos, probe_neg) = (column.positive_mask(), column.negative_mask());
        let row = self.row(job);
        let fresh = row.filter(|row| !row.index.stale);
        let stale = row.filter(|row| row.index.stale);
        let indexed = fresh.into_iter().flat_map(move |row| {
            let index = &row.index;
            (0..index.groups.len()).flat_map(move |group| {
                let meta = &index.groups[group];
                let whole_group = probe_pos & meta.neg == 0 && probe_neg & meta.pos == 0;
                let (start, end) = index.group_range(group);
                index.members[start..end]
                    .iter()
                    .filter(move |&&(_, existing, _)| whole_group || existing.compatible(column))
                    .map(|&(_, existing, cell)| (existing, cell.time))
            })
        });
        let linear = stale.into_iter().flat_map(move |row| {
            row.entries
                .iter()
                .map(move |&(key, cell)| (self.columns[key as usize], cell.time))
                .filter(move |(existing, _)| existing.compatible(column))
        });
        indexed.chain(linear)
    }

    /// The activation time applicable during an execution described by a
    /// complete condition assignment: the entry of the row whose column
    /// expression is satisfied by the assignment.
    ///
    /// When the table satisfies requirement 2 the applicable time is unique;
    /// if several satisfied columns carry *different* times, `None` is
    /// returned (callers that need to diagnose this use
    /// [`ScheduleTable::verify`]).
    #[must_use]
    pub fn activation_time(&self, job: Job, assignment: &Assignment) -> Option<Time> {
        let row = self.row(job)?;
        let assigned = assignment.assigned_mask();
        let index = &row.index;
        let mut found: Option<Time> = None;
        if index.stale {
            for &(key, cell) in &row.entries {
                if self.columns[key as usize].satisfied_by(assignment) {
                    match found {
                        None => found = Some(cell.time),
                        Some(existing) if existing != cell.time => return None,
                        Some(_) => {}
                    }
                }
            }
            return found;
        }
        for group in 0..index.groups.len() {
            // A column can only be satisfied when every condition it
            // mentions carries a value, so groups mentioning an unassigned
            // condition are skipped wholesale.
            if index.groups[group].mask & !assigned != 0 {
                continue;
            }
            let (start, end) = index.group_range(group);
            for &(_, column, cell) in &index.members[start..end] {
                if column.satisfied_by(assignment) {
                    match found {
                        None => found = Some(cell.time),
                        Some(existing) if existing != cell.time => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        found
    }

    /// The resource recorded for the activation of `job` applicable during an
    /// execution described by a complete condition assignment: the provenance
    /// of the most specific satisfied column that carries one.
    ///
    /// This is the bus a locked condition broadcast must occupy when the
    /// tabled time is enforced on another path's schedule, and the resource
    /// the dispatcher/simulator charge the activation to.
    #[must_use]
    pub fn activation_resource(&self, job: Job, assignment: &Assignment) -> Option<PeId> {
        let row = self.row(job)?;
        let assigned = assignment.assigned_mask();
        let index = &row.index;
        // Highest specificity wins; the lowest column index breaks ties,
        // which is exactly what the previous first-wins scan in serial entry
        // order selected.
        let mut best: Option<(usize, u32, PeId)> = None;
        if index.stale {
            for &(key, cell) in &row.entries {
                let column = self.columns[key as usize];
                if !column.satisfied_by(assignment) {
                    continue;
                }
                if let Some(pe) = cell.resource {
                    let specificity = column.len();
                    if best.is_none_or(|(len, at, _)| {
                        specificity > len || (specificity == len && key < at)
                    }) {
                        best = Some((specificity, key, pe));
                    }
                }
            }
            return best.map(|(_, _, pe)| pe);
        }
        for group in 0..index.groups.len() {
            if index.groups[group].mask & !assigned != 0 {
                continue;
            }
            let (start, end) = index.group_range(group);
            for &(key, column, cell) in &index.members[start..end] {
                if !column.satisfied_by(assignment) {
                    continue;
                }
                if let Some(pe) = cell.resource {
                    let specificity = column.len();
                    if best.is_none_or(|(len, at, _)| {
                        specificity > len || (specificity == len && key < at)
                    }) {
                        best = Some((specificity, key, pe));
                    }
                }
            }
        }
        best.map(|(_, _, pe)| pe)
    }

    /// The activation time applicable on the alternative path labelled
    /// `label` (shorthand for [`ScheduleTable::activation_time`] with the
    /// label converted to an assignment).
    #[must_use]
    pub fn activation_on_track(&self, job: Job, label: &Cube) -> Option<Time> {
        self.activation_time(job, &Assignment::from_cube(label))
    }

    /// The delay of the system on the alternative path labelled `label`: the
    /// latest completion time (activation + execution) over every process
    /// activated on that path according to this table.
    #[must_use]
    pub fn track_delay(&self, cpg: &Cpg, label: &Cube) -> Time {
        let assignment = Assignment::from_cube(label);
        let mut delay = Time::ZERO;
        for job in self.jobs() {
            let Job::Process(pid) = job else { continue };
            if !cpg.guard(pid).implied_by(label) {
                continue;
            }
            if let Some(start) = self.activation_time(job, &assignment) {
                delay = delay.max(start + cpg.exec_time(pid));
            }
        }
        delay
    }

    /// The worst-case delay `δ_max` guaranteed by this table: the maximum of
    /// [`ScheduleTable::track_delay`] over every alternative path.
    #[must_use]
    pub fn worst_case_delay(&self, cpg: &Cpg, tracks: &TrackSet) -> Time {
        tracks
            .iter()
            .map(|t| self.track_delay(cpg, &t.label()))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Checks the table against requirements 1–3 of Section 3 of the paper:
    ///
    /// 1. every activation time sits in a column that implies the guard of
    ///    its process;
    /// 2. alternative activation times of the same process sit in mutually
    ///    exclusive columns;
    /// 3. every process receives an activation time on every alternative path
    ///    on which its guard holds.
    ///
    /// Requirement 4 (activation decisions use only condition values already
    /// known on the local processing element) is about the run-time behaviour
    /// of the table and is checked by the simulator of the `cpg-sim` crate.
    ///
    /// # Errors
    ///
    /// Returns every violation found (empty result means the table is
    /// correct).
    pub fn verify(&self, cpg: &Cpg, tracks: &TrackSet) -> Result<(), Vec<TableViolation>> {
        let mut violations = Vec::new();

        // Requirement 1 + sanity of row keys.
        for (job, column, _) in self.all_entries() {
            let guard = match job {
                Job::Process(pid) => {
                    if pid.index() >= cpg.len() {
                        violations.push(TableViolation::UnknownJob { job });
                        continue;
                    }
                    cpg.guard(pid).clone()
                }
                Job::Broadcast(cond) => {
                    if cond.index() >= cpg.num_conditions() {
                        violations.push(TableViolation::UnknownJob { job });
                        continue;
                    }
                    cpg.guard(cpg.disjunction_of(cond)).clone()
                }
            };
            if !guard.implied_by(&column) {
                violations.push(TableViolation::GuardViolated { job, column });
            }
        }

        // Requirement 2.
        for job in self.jobs() {
            let entries: Vec<(Cube, Time)> = self.entries(job).collect();
            for (i, &(first, first_time)) in entries.iter().enumerate() {
                for &(second, second_time) in entries.iter().skip(i + 1) {
                    if first_time != second_time && first.compatible(&second) {
                        violations.push(TableViolation::Nondeterministic {
                            job,
                            first,
                            second,
                            first_time,
                            second_time,
                        });
                    }
                }
            }
        }

        // Requirement 3.
        for track in tracks.iter() {
            let assignment = Assignment::from_cube(&track.label());
            for &pid in track.processes() {
                if cpg.process(pid).kind().is_dummy() {
                    continue;
                }
                let job = Job::Process(pid);
                if self.activation_time(job, &assignment).is_none() {
                    violations.push(TableViolation::MissingActivation {
                        job,
                        track: track.label(),
                    });
                }
            }
            for cond in track.determined_conditions() {
                let job = Job::Broadcast(cond);
                if self.contains_job(job) && self.activation_time(job, &assignment).is_none() {
                    violations.push(TableViolation::MissingActivation {
                        job,
                        track: track.label(),
                    });
                }
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Renders the table in the style of the paper's Table 1: one row per
    /// job, one column per condition expression (named with the graph's
    /// condition names), cells holding activation times.
    #[must_use]
    pub fn render(&self, cpg: &Cpg) -> String {
        let mut columns: Vec<(usize, &Cube)> = self.columns.iter().enumerate().collect();
        columns.sort_by_key(|(_, cube)| (cube.len(), format!("{cube}")));

        let job_name = |job: Job| -> String {
            match job {
                Job::Process(pid) => cpg.process(pid).name().to_owned(),
                Job::Broadcast(cond) => format!("{} (broadcast)", cpg.condition_name(cond)),
            }
        };

        let mut header = vec!["process".to_owned()];
        header.extend(columns.iter().map(|(_, cube)| cpg.display_cube(cube)));
        let mut table_rows: Vec<Vec<String>> = vec![header];

        // Ordinary and communication processes first (by id), then broadcasts.
        let mut jobs: Vec<Job> = self.jobs().collect();
        jobs.sort_by_key(|job| match job {
            Job::Process(pid) => (0, pid.index()),
            Job::Broadcast(cond) => (1, cond.index()),
        });
        for job in jobs {
            let mut row = vec![job_name(job)];
            for &(index, _) in &columns {
                let cell = self
                    .cell(job, index)
                    .map_or(String::new(), |cell| cell.time.to_string());
                row.push(cell);
            }
            table_rows.push(row);
        }

        // Column widths.
        let width: Vec<usize> = (0..table_rows[0].len())
            .map(|c| table_rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (i, row) in table_rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:>width$}", width = width[c]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
            if i == 0 {
                let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
                out.push_str(&sep.join("-+-"));
                out.push('\n');
            }
        }
        out
    }

    #[inline]
    fn column_index(&self, column: &Cube) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    /// The insertion-order index of `column`, if the table has that column.
    #[inline]
    pub(crate) fn column_position(&self, column: &Cube) -> Option<usize> {
        self.column_index(column)
    }

    /// Visits the entries of the row of `job` in column-index order, passing
    /// the table-wide column index as a stable sort key.
    ///
    /// `#[inline]` (like on the other probe methods) so the merge walk's
    /// monomorphized hot loops can inline the scan across the crate boundary
    /// and devirtualize the visitor closure, matching the cost of direct
    /// slice iteration.
    #[inline]
    pub(crate) fn visit_keyed_entries(
        &self,
        job: Job,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        if let Some(row) = self.row(job) {
            for &(index, cell) in &row.entries {
                visit(
                    u64::from(index),
                    self.columns[index as usize],
                    cell.time,
                    cell.resource,
                );
            }
        }
    }

    /// Visits the entries of the row of `job` whose column is *compatible*
    /// with `probe`, passing the table-wide column index as a stable key.
    ///
    /// Served from the row's condition-partition index, so iteration order is
    /// mention-mask group order, not serial entry order — callers must either
    /// be order-independent or re-establish a deterministic order from the
    /// keys. A row whose aggregate union masks cannot exclude the probe is
    /// visited without testing a single cube; otherwise each group is either
    /// all-compatible (its union masks cannot exclude the probe) or tested
    /// member by member with the two-AND cube test.
    // lint: hot-path
    #[inline]
    pub(crate) fn visit_compatible_entries(
        &self,
        job: Job,
        probe: &Cube,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        let Some(row) = self.row(job) else { return };
        let index = &row.index;
        if index.stale {
            // A splice deferred index maintenance on this row: serve the
            // scan linearly from the serial entries, exactly as before the
            // index existed.
            for &(key, cell) in &row.entries {
                let column = self.columns[key as usize];
                if column.compatible(probe) {
                    visit(u64::from(key), column, cell.time, cell.resource);
                }
            }
            return;
        }
        let (probe_pos, probe_neg) = (probe.positive_mask(), probe.negative_mask());
        if probe_pos & index.neg_union == 0 && probe_neg & index.pos_union == 0 {
            // Nothing in the row can exclude the probe: visit everything.
            for &(key, column, cell) in &index.members {
                visit(u64::from(key), column, cell.time, cell.resource);
            }
            return;
        }
        for group in 0..index.groups.len() {
            let meta = &index.groups[group];
            let (start, end) = index.group_range(group);
            if probe_pos & meta.neg == 0 && probe_neg & meta.pos == 0 {
                for &(key, column, cell) in &index.members[start..end] {
                    visit(u64::from(key), column, cell.time, cell.resource);
                }
            } else {
                for &(key, column, cell) in &index.members[start..end] {
                    if column.compatible(probe) {
                        visit(u64::from(key), column, cell.time, cell.resource);
                    }
                }
            }
        }
    }

    /// Visits the entries of the row of `job` tabled at exactly `time`,
    /// passing the table-wide column index as a stable key. Served from the
    /// row's time bucketing: a direct binary search instead of a full-row
    /// filter. Iteration order within the bucket is column-index order.
    // lint: hot-path
    #[inline]
    pub(crate) fn visit_entries_at(
        &self,
        job: Job,
        time: Time,
        visit: &mut dyn FnMut(u64, Cube, Option<PeId>),
    ) {
        let Some(row) = self.row(job) else { return };
        if row.index.stale {
            for &(key, cell) in &row.entries {
                if cell.time == time {
                    visit(u64::from(key), self.columns[key as usize], cell.resource);
                }
            }
            return;
        }
        let times = &row.index.times;
        let start = times.partition_point(|&(t, ..)| t < time);
        for &(t, key, column, resource) in &times[start..] {
            if t != time {
                break;
            }
            visit(u64::from(key), column, resource);
        }
    }

    #[inline]
    fn column_index_or_insert(&mut self, column: Cube) -> usize {
        match self.column_index(&column) {
            Some(index) => index,
            None => {
                self.columns.push(column);
                self.columns.len() - 1
            }
        }
    }
}

impl fmt::Display for ScheduleTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule table with {} rows, {} columns, {} entries",
            self.num_rows(),
            self.num_columns(),
            self.num_entries()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{enumerate_tracks, examples, CondId, ProcessId};

    fn c(i: usize) -> CondId {
        CondId::new(i)
    }

    fn p(i: usize) -> Job {
        Job::Process(ProcessId::from_index(i))
    }

    #[test]
    fn set_get_remove_round_trip() {
        let mut table = ScheduleTable::new();
        assert!(table.is_empty());
        assert_eq!(table.set(p(1), Cube::top(), Time::new(0)), None);
        assert_eq!(
            table.set(p(1), Cube::top(), Time::new(2)),
            Some(Time::new(0))
        );
        assert_eq!(table.get(p(1), &Cube::top()), Some(Time::new(2)));
        assert_eq!(table.get(p(2), &Cube::top()), None);
        assert_eq!(table.remove(p(1), &Cube::top()), Some(Time::new(2)));
        assert!(table.is_empty());
        assert_eq!(table.remove(p(1), &Cube::top()), None);
    }

    #[test]
    fn columns_are_shared_between_rows() {
        let mut table = ScheduleTable::new();
        let col = Cube::from(c(0).is_true());
        table.set(p(1), col, Time::new(1));
        table.set(p(2), col, Time::new(2));
        table.set(p(2), Cube::top(), Time::new(0));
        assert_eq!(table.num_columns(), 2);
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.num_entries(), 3);
        assert_eq!(table.entries(p(2)).count(), 2);
        assert_eq!(table.jobs().count(), 2);
        assert!(table.contains_job(p(1)));
        assert!(!table.contains_job(p(9)));
        assert!(table.to_string().contains("3 entries"));
    }

    #[test]
    fn cells_carry_resource_provenance() {
        use cpg_arch::PeId;
        let mut table = ScheduleTable::new();
        let bus1 = PeId::from_index(3);
        let b = Job::Broadcast(c(0));
        let col = Cube::from(c(1).is_true());
        assert_eq!(table.set_on(b, col, Time::new(4), Some(bus1)), None);
        assert_eq!(table.get(b, &col), Some(Time::new(4)));
        assert_eq!(table.resource(b, &col), Some(bus1));
        // `set` records no provenance.
        table.set(b, Cube::from(c(1).is_false()), Time::new(9));
        assert_eq!(table.resource(b, &Cube::from(c(1).is_false())), None);
        let on: Vec<_> = table.entries_on(b).collect();
        assert_eq!(on.len(), 2);
        assert!(on.contains(&(col, Time::new(4), Some(bus1))));
        assert_eq!(table.all_entries_on().count(), 2);
        // The applicable resource follows the satisfied column.
        let mut asg = Assignment::new();
        asg.assign(c(1), true);
        assert_eq!(table.activation_resource(b, &asg), Some(bus1));
        asg.assign(c(1), false);
        assert_eq!(table.activation_resource(b, &asg), None);
    }

    #[test]
    fn activation_time_selects_the_satisfied_column() {
        let mut table = ScheduleTable::new();
        let dck: Cube = [c(0).is_true(), c(1).is_true(), c(2).is_true()]
            .into_iter()
            .collect();
        let dck_not: Cube = [c(0).is_true(), c(1).is_true(), c(2).is_false()]
            .into_iter()
            .collect();
        table.set(p(14), dck, Time::new(24));
        table.set(p(14), dck_not, Time::new(35));

        let mut asg = Assignment::new();
        asg.assign(c(0), true);
        asg.assign(c(1), true);
        asg.assign(c(2), true);
        assert_eq!(table.activation_time(p(14), &asg), Some(Time::new(24)));
        asg.assign(c(2), false);
        assert_eq!(table.activation_time(p(14), &asg), Some(Time::new(35)));
        asg.assign(c(1), false);
        assert_eq!(table.activation_time(p(14), &asg), None);
    }

    #[test]
    fn ambiguous_activation_yields_none() {
        let mut table = ScheduleTable::new();
        table.set(p(3), Cube::from(c(0).is_true()), Time::new(5));
        table.set(p(3), Cube::from(c(1).is_true()), Time::new(9));
        let mut asg = Assignment::new();
        asg.assign(c(0), true);
        asg.assign(c(1), true);
        assert_eq!(table.activation_time(p(3), &asg), None);
        // Same time in compatible columns is fine.
        let mut table = ScheduleTable::new();
        table.set(p(3), Cube::from(c(0).is_true()), Time::new(5));
        table.set(p(3), Cube::from(c(1).is_true()), Time::new(5));
        assert_eq!(table.activation_time(p(3), &asg), Some(Time::new(5)));
    }

    #[test]
    fn compatible_entries_reports_potential_conflicts() {
        let mut table = ScheduleTable::new();
        let d = Cube::from(c(1).is_true());
        let not_d = Cube::from(c(1).is_false());
        table.set(p(5), d, Time::new(3));
        table.set(p(5), not_d, Time::new(8));
        let probe = Cube::from(c(0).is_true());
        let conflicts: Vec<_> = table.compatible_entries(p(5), &probe).collect();
        assert_eq!(conflicts.len(), 2);
        let probe: Cube = [c(0).is_true(), c(1).is_true()].into_iter().collect();
        let conflicts: Vec<_> = table.compatible_entries(p(5), &probe).collect();
        assert_eq!(conflicts, vec![(d, Time::new(3))]);
    }

    #[test]
    fn verify_detects_guard_and_determinism_violations() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let cond = system.condition("C").unwrap();
        let hot = cpg.process_by_name("hot").unwrap();

        // Guard violation: `hot` (guard C) activated unconditionally.
        let mut table = ScheduleTable::new();
        table.set(Job::Process(hot), Cube::top(), Time::new(0));
        let violations = table.verify(cpg, &tracks).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, TableViolation::GuardViolated { .. })));

        // Determinism violation: two different times in compatible columns.
        let decide = cpg.process_by_name("decide").unwrap();
        let mut table = ScheduleTable::new();
        table.set(Job::Process(decide), Cube::top(), Time::new(0));
        table.set(
            Job::Process(decide),
            Cube::from(cond.is_true()),
            Time::new(4),
        );
        let violations = table.verify(cpg, &tracks).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, TableViolation::Nondeterministic { .. })));
    }

    #[test]
    fn verify_detects_missing_activations() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let table = ScheduleTable::new();
        let violations = table.verify(cpg, &tracks).unwrap_err();
        // Every schedulable process of every track is missing.
        assert!(violations
            .iter()
            .all(|v| matches!(v, TableViolation::MissingActivation { .. })));
        assert!(!violations.is_empty());
    }

    #[test]
    fn verify_accepts_a_complete_consistent_table() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let cond = system.condition("C").unwrap();
        let mut table = ScheduleTable::new();
        // Hand-written consistent table for the diamond example.
        for track in tracks.iter() {
            for &pid in track.processes() {
                if cpg.process(pid).kind().is_dummy() {
                    continue;
                }
                let column = if cpg.guard(pid).is_true() {
                    Cube::top()
                } else {
                    track.label()
                };
                // Use deterministic times: same process, same time everywhere.
                table.set(Job::Process(pid), column, Time::new(pid.index() as u64));
            }
        }
        table.verify(cpg, &tracks).unwrap();
        let delay = table.worst_case_delay(cpg, &tracks);
        assert!(delay > Time::ZERO);
        let _ = cond;
    }

    #[test]
    fn track_delay_uses_execution_times() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let decide = cpg.process_by_name("decide").unwrap();
        let mut table = ScheduleTable::new();
        table.set(Job::Process(decide), Cube::top(), Time::new(10));
        let label = tracks.tracks()[0].label();
        // decide takes 2 time units.
        assert_eq!(table.track_delay(cpg, &label), Time::new(12));
    }

    #[test]
    fn render_contains_headers_rows_and_times() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let cond = system.condition("C").unwrap();
        let decide = cpg.process_by_name("decide").unwrap();
        let hot = cpg.process_by_name("hot").unwrap();
        let mut table = ScheduleTable::new();
        table.set(Job::Process(decide), Cube::top(), Time::new(0));
        table.set(Job::Process(hot), Cube::from(cond.is_true()), Time::new(3));
        table.set(Job::Broadcast(cond), Cube::top(), Time::new(2));
        let rendered = table.render(cpg);
        assert!(rendered.contains("true"));
        assert!(rendered.contains('C'));
        assert!(rendered.contains("decide"));
        assert!(rendered.contains("hot"));
        assert!(rendered.contains("C (broadcast)"));
        assert!(rendered.contains('3'));
    }

    #[test]
    fn unknown_jobs_are_reported() {
        let system = examples::diamond();
        let cpg = system.cpg();
        let tracks = enumerate_tracks(cpg);
        let mut table = ScheduleTable::new();
        table.set(p(999), Cube::top(), Time::new(0));
        let violations = table.verify(cpg, &tracks).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, TableViolation::UnknownJob { .. })));
    }
}
