//! The schedule table of Eles et al. (DATE 1998): data structure, correctness
//! requirements and worst-case-delay evaluation.
//!
//! The table-generation algorithm of the `cpg-merge` crate fills a
//! [`ScheduleTable`]; this crate owns the table itself, the four correctness
//! requirements of Section 3 of the paper (checked by
//! [`ScheduleTable::verify`] for requirements 1–3 and by the `cpg-sim`
//! simulator for requirement 4), the computation of the guaranteed worst-case
//! delay `δ_max`, and a plain-text renderer that mirrors the paper's Table 1.
//!
//! # Example
//!
//! ```
//! use cpg::{Cube, ProcessId};
//! use cpg_arch::Time;
//! use cpg_path_sched::Job;
//! use cpg_table::ScheduleTable;
//!
//! let mut table = ScheduleTable::new();
//! table.set(Job::Process(ProcessId::from_index(1)), Cube::top(), Time::new(0));
//! assert_eq!(table.num_entries(), 1);
//! ```

#![forbid(unsafe_code)]

mod analysis;
mod dispatch;
mod error;
mod race_hooks;
mod table;
mod txn;

pub use analysis::{to_csv, utilization, ResourceLoad};
pub use dispatch::{per_processor_dispatch, DispatchEntry, DispatchTable};
pub use error::TableViolation;
pub use table::ScheduleTable;
pub use txn::{row_fingerprint, TableTxn, TableView, TxnLog};
