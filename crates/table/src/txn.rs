//! Optimistic write transactions over a [`ScheduleTable`].
//!
//! The parallel decision-tree walk of the `cpg-merge` crate runs sibling
//! subtrees speculatively: each subtree buffers its `place`/`repair_slip`
//! writes in a [`TableTxn`] layered over a frozen base view, together with a
//! read set over per-row write versions. When the subtrees join, the logs are
//! committed *in tree order*: the forward subtree's log first (its snapshot
//! was, by construction, exactly the state the serial walk would have seen,
//! so it commits unconditionally), then the back subtree's log — but only
//! after [`TxnLog::validate`] proves the speculation read nothing the forward
//! subtree changed. A back log that fails validation is discarded wholesale
//! and its branch re-runs non-speculatively against the updated table, which
//! keeps the merge output bit-identical to the serial walk.
//!
//! Two ingredients make the validation sound:
//!
//! * **Row versions** ([`ScheduleTable::row_version`]): every row carries a
//!   write counter; a transaction records `(job, version)` on *every* read
//!   and the log replays only if all recorded versions still match.
//! * **Column-creation tracking**: a transaction that creates a column keys
//!   it past the base's column bound, preserving the relative entry order the
//!   serial walk would produce. If a sibling committed the *same* column cube
//!   first, the global column order (and hence row-entry iteration order)
//!   would differ from the speculation's view, so [`TxnLog::validate`] also
//!   fails when any transaction-created column already exists in the base.
//!
//! Transactions nest: a [`TableTxn`] implements [`TableView`] itself, so a
//! deeper fork inside a speculative subtree simply layers further
//! transactions over it. Reads are recorded through a mutex because sibling
//! child transactions read through a shared `&TableTxn` from their worker
//! threads; the overlay rows themselves are only written through `&mut self`
//! and are therefore frozen while shared.

use std::sync::Mutex;

use cpg::Cube;
use cpg_arch::{PeId, Time};
use cpg_path_sched::Job;

use crate::ScheduleTable;

/// The table operations the merge walk needs, abstracted so the walk can run
/// against the real [`ScheduleTable`] or a speculative [`TableTxn`] overlay.
///
/// The trait is object-safe ([`TableTxn`] holds its base as
/// `&dyn TableView + Sync`, so arbitrarily deep nesting monomorphizes to a
/// single transaction type) and deliberately excludes `remove`: the walk only
/// ever adds or overwrites activation times.
pub trait TableView {
    /// The activation time of `job` in the column headed exactly by `column`.
    fn get(&self, job: Job, column: &Cube) -> Option<Time>;

    /// The resource recorded for `job` in the column headed exactly by
    /// `column`, when the cell exists and carries provenance.
    fn resource(&self, job: Job, column: &Cube) -> Option<PeId>;

    /// Records the activation time of `job` under `column` together with the
    /// resource provenance, creating the column when absent, and returns the
    /// previously stored time for that cell, if any.
    fn set_on(
        &mut self,
        job: Job,
        column: Cube,
        time: Time,
        resource: Option<PeId>,
    ) -> Option<Time>;

    /// Visits the `(key, column, time, resource)` entries of the row of
    /// `job`, ordered by `key` — a view-wide stand-in for the column
    /// insertion index, chosen so that the iteration order matches what the
    /// serial walk would observe on the real table.
    fn for_each_keyed_entry_on(
        &self,
        job: Job,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    );

    /// Visits the `(column, time, resource)` entries of the row of `job` in
    /// the view's column order.
    #[inline]
    fn for_each_entry_on(&self, job: Job, visit: &mut dyn FnMut(Cube, Time, Option<PeId>)) {
        self.for_each_keyed_entry_on(job, &mut |_, column, time, resource| {
            visit(column, time, resource);
        });
    }

    /// The write version of the row of `job` (0 when never written).
    fn row_version(&self, job: Job) -> u64;

    /// `true` when the view has a column headed exactly by `column`.
    fn has_column(&self, column: &Cube) -> bool;

    /// The sort key of `column` in this view, if the column exists.
    fn column_key(&self, column: &Cube) -> Option<u64>;

    /// The exclusive upper bound of the keys handed out so far; a
    /// transaction layered over this view keys its fresh columns from here.
    fn column_bound(&self) -> u64;
}

// The impl methods are `#[inline]`: the serial walk is monomorphized over
// `V = ScheduleTable`, and without cross-crate inlining every row probe of
// its hot loops would pay an opaque call plus a virtual visitor dispatch per
// entry (the closures devirtualize once the scan is inlined to where the
// concrete closure type is visible).
impl TableView for ScheduleTable {
    #[inline]
    fn get(&self, job: Job, column: &Cube) -> Option<Time> {
        ScheduleTable::get(self, job, column)
    }

    #[inline]
    fn resource(&self, job: Job, column: &Cube) -> Option<PeId> {
        ScheduleTable::resource(self, job, column)
    }

    #[inline]
    fn set_on(
        &mut self,
        job: Job,
        column: Cube,
        time: Time,
        resource: Option<PeId>,
    ) -> Option<Time> {
        ScheduleTable::set_on(self, job, column, time, resource)
    }

    #[inline]
    fn for_each_keyed_entry_on(
        &self,
        job: Job,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        self.visit_keyed_entries(job, visit);
    }

    #[inline]
    fn row_version(&self, job: Job) -> u64 {
        ScheduleTable::row_version(self, job)
    }

    #[inline]
    fn has_column(&self, column: &Cube) -> bool {
        self.column_position(column).is_some()
    }

    #[inline]
    fn column_key(&self, column: &Cube) -> Option<u64> {
        self.column_position(column).map(|index| index as u64)
    }

    #[inline]
    fn column_bound(&self) -> u64 {
        self.num_columns() as u64
    }
}

/// One buffered write of a transaction, replayed verbatim on commit.
#[derive(Debug, Clone, Copy)]
struct Write {
    job: Job,
    column: Cube,
    time: Time,
    resource: Option<PeId>,
}

/// One overlay row: the merged `(key, column, time, resource)` entries of the
/// base row plus this transaction's writes, sorted by key, together with the
/// number of writes the transaction applied to the row.
#[derive(Debug)]
struct TxnRow {
    job: Job,
    written: u64,
    entries: Vec<(u64, Cube, Time, Option<PeId>)>,
}

/// A speculative write overlay over a frozen [`TableView`].
///
/// Reads fall through to the base until the transaction first writes a row,
/// at which point the base row is cloned into the overlay; every read or
/// write records the base row's version into the read set. Fresh columns are
/// keyed past the base's [`TableView::column_bound`] in first-write order,
/// which is exactly the insertion order a serial replay of the write log
/// produces.
pub struct TableTxn<'b> {
    base: &'b (dyn TableView + Sync),
    /// [`TableView::column_bound`] of the base at creation time.
    base_bound: u64,
    /// Column cubes this transaction created, in first-write order.
    new_columns: Vec<Cube>,
    /// Overlay rows, sorted by job.
    rows: Vec<TxnRow>,
    /// `(job, base version observed)` for every row this transaction read,
    /// sorted by job. Behind a mutex because sibling child transactions read
    /// through a shared `&TableTxn` from their worker threads.
    reads: Mutex<Vec<(Job, u64)>>,
    /// Chronological write log, replayed by [`TxnLog::commit_into`].
    writes: Vec<Write>,
}

impl<'b> TableTxn<'b> {
    /// Opens a transaction over `base`, which must not change (other than
    /// through this transaction's eventual commit) while the transaction or
    /// its log is validated against it — the read set records versions at
    /// first touch.
    #[must_use]
    pub fn new(base: &'b (dyn TableView + Sync)) -> Self {
        Self {
            base_bound: base.column_bound(),
            base,
            new_columns: Vec::new(),
            rows: Vec::new(),
            reads: Mutex::new(Vec::new()),
            writes: Vec::new(),
        }
    }

    /// Records that the row of `job` was read, returning the base version.
    fn note_read(&self, job: Job) -> u64 {
        let version = self.base.row_version(job);
        let mut reads = self.reads.lock().expect("transaction read set poisoned");
        if let Err(at) = reads.binary_search_by_key(&job, |&(j, _)| j) {
            reads.insert(at, (job, version));
        }
        version
    }

    fn overlay(&self, job: Job) -> Option<&TxnRow> {
        self.rows
            .binary_search_by_key(&job, |row| row.job)
            .ok()
            .map(|at| &self.rows[at])
    }

    /// The key of `column` in this view: the base's key when the base has
    /// the column, else the transaction-local key when this transaction
    /// created it.
    fn key_of(&self, column: &Cube) -> Option<u64> {
        self.base.column_key(column).or_else(|| {
            self.new_columns
                .iter()
                .position(|c| c == column)
                .map(|at| self.base_bound + at as u64)
        })
    }

    fn key_or_insert(&mut self, column: Cube) -> u64 {
        match self.key_of(&column) {
            Some(key) => key,
            None => {
                self.new_columns.push(column);
                self.base_bound + (self.new_columns.len() - 1) as u64
            }
        }
    }

    /// Number of buffered writes.
    #[must_use]
    pub fn num_writes(&self) -> usize {
        self.writes.len()
    }

    /// Detaches the transaction from its base, yielding an owned log that
    /// can be validated against and committed into the (now again mutable)
    /// underlying view.
    #[must_use]
    pub fn into_log(self) -> TxnLog {
        TxnLog {
            reads: self
                .reads
                .into_inner()
                .expect("transaction read set poisoned"),
            new_columns: self.new_columns,
            writes: self.writes,
        }
    }
}

impl TableView for TableTxn<'_> {
    fn get(&self, job: Job, column: &Cube) -> Option<Time> {
        self.note_read(job);
        match self.overlay(job) {
            Some(row) => {
                let key = self.key_of(column)?;
                row.entries
                    .binary_search_by_key(&key, |&(k, ..)| k)
                    .ok()
                    .map(|at| row.entries[at].2)
            }
            None => self.base.get(job, column),
        }
    }

    fn resource(&self, job: Job, column: &Cube) -> Option<PeId> {
        self.note_read(job);
        match self.overlay(job) {
            Some(row) => {
                let key = self.key_of(column)?;
                row.entries
                    .binary_search_by_key(&key, |&(k, ..)| k)
                    .ok()
                    .and_then(|at| row.entries[at].3)
            }
            None => self.base.resource(job, column),
        }
    }

    fn set_on(
        &mut self,
        job: Job,
        column: Cube,
        time: Time,
        resource: Option<PeId>,
    ) -> Option<Time> {
        self.note_read(job);
        let key = self.key_or_insert(column);
        let at = match self.rows.binary_search_by_key(&job, |row| row.job) {
            Ok(at) => at,
            Err(at) => {
                // First write to this row: clone the base row into the
                // overlay so later reads see a complete merged row.
                let mut entries = Vec::new();
                self.base.for_each_keyed_entry_on(job, &mut |k, c, t, r| {
                    entries.push((k, c, t, r));
                });
                self.rows.insert(
                    at,
                    TxnRow {
                        job,
                        written: 0,
                        entries,
                    },
                );
                at
            }
        };
        self.writes.push(Write {
            job,
            column,
            time,
            resource,
        });
        let row = &mut self.rows[at];
        row.written += 1;
        match row.entries.binary_search_by_key(&key, |&(k, ..)| k) {
            Ok(slot) => {
                let previous = row.entries[slot].2;
                row.entries[slot] = (key, column, time, resource);
                Some(previous)
            }
            Err(slot) => {
                row.entries.insert(slot, (key, column, time, resource));
                None
            }
        }
    }

    fn for_each_keyed_entry_on(
        &self,
        job: Job,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        self.note_read(job);
        match self.overlay(job) {
            Some(row) => {
                for &(key, column, time, resource) in &row.entries {
                    visit(key, column, time, resource);
                }
            }
            None => self.base.for_each_keyed_entry_on(job, visit),
        }
    }

    fn row_version(&self, job: Job) -> u64 {
        let base = self.note_read(job);
        base + self.overlay(job).map_or(0, |row| row.written)
    }

    fn has_column(&self, column: &Cube) -> bool {
        self.base.has_column(column) || self.new_columns.contains(column)
    }

    fn column_key(&self, column: &Cube) -> Option<u64> {
        self.key_of(column)
    }

    fn column_bound(&self) -> u64 {
        self.base_bound + self.new_columns.len() as u64
    }
}

/// The owned outcome of a [`TableTxn`]: its read set, created columns and
/// chronological write log.
#[derive(Debug)]
pub struct TxnLog {
    reads: Vec<(Job, u64)>,
    new_columns: Vec<Cube>,
    writes: Vec<Write>,
}

impl TxnLog {
    /// `true` when the transaction buffered no writes (committing it would
    /// be a no-op).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// `true` when the speculation still holds against `base`: every row the
    /// transaction read is at the version it observed, and no column the
    /// transaction created has meanwhile been created in the base (which
    /// would give the replayed entries a different global order than the
    /// speculation assumed).
    #[must_use]
    pub fn validate<V: TableView + ?Sized>(&self, base: &V) -> bool {
        self.reads
            .iter()
            .all(|&(job, version)| base.row_version(job) == version)
            && self
                .new_columns
                .iter()
                .all(|column| !base.has_column(column))
    }

    /// Replays the buffered writes into `base` in their original order.
    ///
    /// Callers decide the policy: a forward-branch log commits
    /// unconditionally (its snapshot was the serial state), a back-branch
    /// log only after [`TxnLog::validate`].
    pub fn commit_into<V: TableView + ?Sized>(&self, base: &mut V) {
        for write in &self.writes {
            base.set_on(write.job, write.column, write.time, write.resource);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{CondId, ProcessId};

    fn p(i: usize) -> Job {
        Job::Process(ProcessId::from_index(i))
    }

    fn c(i: usize) -> CondId {
        CondId::new(i)
    }

    fn cube_t(i: usize) -> Cube {
        Cube::from(c(i).is_true())
    }

    fn cube_f(i: usize) -> Cube {
        Cube::from(c(i).is_false())
    }

    #[test]
    fn row_versions_count_writes_and_survive_removal() {
        let mut table = ScheduleTable::new();
        assert_eq!(table.row_version(p(1)), 0);
        table.set(p(1), Cube::top(), Time::new(1));
        assert_eq!(table.row_version(p(1)), 1);
        // Overwriting with the identical value still counts as a write.
        table.set(p(1), Cube::top(), Time::new(1));
        assert_eq!(table.row_version(p(1)), 2);
        table.remove(p(1), &Cube::top());
        assert!(!table.contains_job(p(1)));
        assert_eq!(table.row_version(p(1)), 3);
        // Removing an absent entry is not a write.
        table.remove(p(1), &Cube::top());
        assert_eq!(table.row_version(p(1)), 3);
        // Versions are bookkeeping, not content: a table with a different
        // write history but the same cells compares equal.
        let mut other = ScheduleTable::new();
        other.set(p(1), Cube::top(), Time::new(1));
        other.remove(p(1), &Cube::top());
        assert_eq!(table, other);
        assert_ne!(table.row_version(p(1)), other.row_version(p(1)));
    }

    #[test]
    fn reads_fall_through_and_writes_overlay() {
        let mut table = ScheduleTable::new();
        table.set_on(p(1), Cube::top(), Time::new(4), Some(PeId::from_index(0)));
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::new(base);
        // Read-through.
        assert_eq!(txn.get(p(1), &Cube::top()), Some(Time::new(4)));
        assert_eq!(txn.resource(p(1), &Cube::top()), Some(PeId::from_index(0)));
        assert_eq!(txn.get(p(2), &Cube::top()), None);
        // Overlay write: visible in the txn, invisible in the base.
        assert_eq!(
            txn.set_on(p(1), Cube::top(), Time::new(9), None),
            Some(Time::new(4))
        );
        assert_eq!(txn.get(p(1), &Cube::top()), Some(Time::new(9)));
        assert_eq!(txn.set_on(p(2), cube_t(0), Time::new(7), None), None);
        assert_eq!(txn.num_writes(), 2);
        assert_eq!(
            ScheduleTable::get(&table, p(1), &Cube::top()),
            Some(Time::new(4))
        );

        let log = txn.into_log();
        assert!(log.validate(&table));
        log.commit_into(&mut table);
        assert_eq!(
            ScheduleTable::get(&table, p(1), &Cube::top()),
            Some(Time::new(9))
        );
        assert_eq!(
            ScheduleTable::get(&table, p(2), &cube_t(0)),
            Some(Time::new(7))
        );
    }

    #[test]
    fn overlay_iteration_order_matches_a_serial_replay() {
        // Base has columns [top, c0]; the txn writes a fresh column c1 and
        // then another base column. After commit the real table's row must
        // iterate in the same relative order the overlay showed.
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        table.set(p(1), cube_t(0), Time::new(1));
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::new(base);
        txn.set_on(p(1), cube_t(1), Time::new(2), None);
        txn.set_on(p(1), cube_f(1), Time::new(3), None);
        let mut overlay_order = Vec::new();
        txn.for_each_entry_on(p(1), &mut |column, time, _| {
            overlay_order.push((column, time))
        });
        let log = txn.into_log();
        log.commit_into(&mut table);
        let replayed: Vec<_> = table.entries(p(1)).collect();
        assert_eq!(overlay_order, replayed);
    }

    #[test]
    fn validation_fails_when_a_read_row_changes() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let txn = TableTxn::new(base);
        // A pure read (even of an absent row) is a dependency.
        assert_eq!(txn.get(p(1), &Cube::top()), Some(Time::new(0)));
        assert_eq!(txn.get(p(2), &Cube::top()), None);
        let log = txn.into_log();
        assert!(log.validate(&table));
        // A sibling writes a row this txn read: speculation is stale.
        table.set(p(2), cube_t(0), Time::new(5));
        assert!(!log.validate(&table));
    }

    #[test]
    fn validation_fails_when_a_sibling_creates_the_same_column() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::new(base);
        // The txn creates column c0 and only touches row p(2).
        txn.set_on(p(2), cube_t(0), Time::new(3), None);
        let log = txn.into_log();
        assert!(log.validate(&table));
        // A sibling creates the *same* column in a row the txn never read:
        // no row version the txn saw changed, but the global column order
        // now differs from what the speculation assumed.
        table.set(p(3), cube_t(0), Time::new(8));
        assert!(!log.validate(&table));
    }

    #[test]
    fn nested_transactions_layer_and_conflict_like_flat_ones() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let mut outer = TableTxn::new(base);
        outer.set_on(p(2), cube_t(0), Time::new(2), None);

        // Inner forward/back pair over the frozen outer txn.
        let frozen: &(dyn TableView + Sync) = &outer;
        let mut inner_fwd = TableTxn::new(frozen);
        let inner_back = TableTxn::new(frozen);
        inner_fwd.set_on(p(2), cube_t(1), Time::new(4), None);
        // The back speculation reads the row the forward branch writes.
        assert_eq!(inner_back.get(p(2), &cube_t(0)), Some(Time::new(2)));
        let fwd_log = inner_fwd.into_log();
        let back_log = inner_back.into_log();
        fwd_log.commit_into(&mut outer);
        assert!(
            !back_log.validate(&outer),
            "conflicting read must invalidate"
        );

        // An independent back speculation survives the same commit.
        let frozen: &(dyn TableView + Sync) = &outer;
        let clean = TableTxn::new(frozen);
        assert_eq!(clean.get(p(1), &Cube::top()), Some(Time::new(0)));
        let clean_log = clean.into_log();
        assert!(clean_log.validate(&outer));

        // Outer commit replays everything, inner writes included.
        let outer_log = outer.into_log();
        assert!(!outer_log.is_empty());
        assert!(outer_log.validate(&table));
        outer_log.commit_into(&mut table);
        assert_eq!(
            ScheduleTable::get(&table, p(2), &cube_t(0)),
            Some(Time::new(2))
        );
        assert_eq!(
            ScheduleTable::get(&table, p(2), &cube_t(1)),
            Some(Time::new(4))
        );
    }

    #[test]
    fn row_version_of_a_txn_reflects_its_own_writes() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::new(base);
        assert_eq!(TableView::row_version(&txn, p(1)), 1);
        txn.set_on(p(1), cube_t(0), Time::new(3), None);
        assert_eq!(TableView::row_version(&txn, p(1)), 2);
        assert_eq!(TableView::row_version(&txn, p(9)), 0);
    }
}
