//! Optimistic write transactions over a [`ScheduleTable`].
//!
//! The parallel decision-tree walk of the `cpg-merge` crate runs sibling
//! subtrees speculatively: each subtree buffers its `place`/`repair_slip`
//! writes in a [`TableTxn`] layered over a frozen base view, together with a
//! read set over per-row write versions. When the subtrees join, the logs are
//! committed *in tree order*: the forward subtree's log first (its snapshot
//! was, by construction, exactly the state the serial walk would have seen,
//! so it commits unconditionally), then the back subtree's log — but only
//! after [`TxnLog::validate`] proves the speculation read nothing the forward
//! subtree changed. A back log that fails validation is discarded wholesale
//! and its branch re-runs non-speculatively against the updated table, which
//! keeps the merge output bit-identical to the serial walk.
//!
//! Two ingredients make the validation sound:
//!
//! * **Content-based read dependencies**: a point probe ([`TableView::get`] /
//!   [`TableView::resource`]) records the exact `(job, column)` cell and the
//!   value it observed; a row scan ([`TableView::for_each_keyed_entry_on`])
//!   records an order-sensitive FNV fingerprint of the full keyed entry list.
//!   [`TxnLog::validate`] re-probes the base and succeeds only if every
//!   recorded observation would be reproduced verbatim. This is strictly
//!   finer than the earlier per-row write counters: a sibling that rewrites a
//!   cell with the same value, or writes a *different* cell of a row this
//!   transaction only point-probed, no longer discards the speculation —
//!   which matters because every forward subtree writes the resolved
//!   condition's broadcast row, a row the back branch's rule-3 scan always
//!   touches. Entry additions to a scanned row still invalidate (the
//!   fingerprint covers keys, so ordering changes are caught too).
//! * **Column-creation tracking**: a transaction that creates a column keys
//!   it past the base's column bound, preserving the relative entry order the
//!   serial walk would produce. If a sibling committed the *same* column cube
//!   first, the global column order (and hence row-entry iteration order)
//!   would differ from the speculation's view, so [`TxnLog::validate`] also
//!   fails when any transaction-created column already exists in the base.
//!
//! Transactions nest: a [`TableTxn`] implements [`TableView`] itself, so a
//! deeper fork inside a speculative subtree simply layers further
//! transactions over it. Reads are recorded through a mutex because sibling
//! child transactions read through a shared `&TableTxn` from their worker
//! threads; the overlay rows themselves are only written through `&mut self`
//! and are therefore frozen while shared.
//!
//! A validated log is normally replayed with [`TableView::splice_log`]:
//! [`ScheduleTable`] overrides the write-by-write default with *column
//! splicing* — every distinct column cube of the log is grafted
//! (found-or-appended, renumbering the transaction-local keys past the
//! table's current column bound) exactly once, then the cells are written by
//! direct column index in chronological order, preserving the serial entry
//! order inside every row.

use std::hash::Hash;
use std::sync::Mutex;

use cpg::{Cube, FrontierHasher};
use cpg_arch::{PeId, Time};
use cpg_path_sched::Job;

use crate::race_hooks;
use crate::ScheduleTable;

/// Race-check commit boundary: a schedulable yield at the commit, plus the
/// protocol check the vector clocks cannot express — a log being committed
/// must still validate against the view it is committed into (commits are
/// always join-ordered, so a "back committed without validation" bug is
/// invisible to happens-before alone). Compiles to nothing without the
/// `race-check` feature and costs one thread-local read outside an active
/// exploration.
fn commit_hook<V: TableView + ?Sized>(view: &V, log: &TxnLog, site: &'static str) {
    if !race_hooks::active() {
        return;
    }
    race_hooks::yield_commit();
    if !log.holds_against(view) {
        race_hooks::stale_commit(site);
    }
}

/// Order-sensitive FNV-1a fingerprint of the keyed entry list of one row.
///
/// Two views whose rows fingerprint equal would feed a scan the exact same
/// `(key, column, time, resource)` sequence; [`TxnLog::validate`] uses this
/// to re-check recorded row scans by content instead of by write version.
#[must_use]
pub fn row_fingerprint<V: TableView + ?Sized>(view: &V, job: Job) -> u64 {
    let mut hasher = FrontierHasher::new();
    let mut entries = 0u64;
    view.for_each_keyed_entry_on(job, &mut |key, column, time, resource| {
        entries += 1;
        (key, column, time, resource).hash(&mut hasher);
    });
    entries.hash(&mut hasher);
    std::hash::Hasher::finish(&hasher)
}

/// The table operations the merge walk needs, abstracted so the walk can run
/// against the real [`ScheduleTable`] or a speculative [`TableTxn`] overlay.
///
/// The trait is object-safe ([`TableTxn`] holds its base as
/// `&dyn TableView + Sync`, so arbitrarily deep nesting monomorphizes to a
/// single transaction type) and deliberately excludes `remove`: the walk only
/// ever adds or overwrites activation times.
pub trait TableView {
    /// The activation time of `job` in the column headed exactly by `column`.
    fn get(&self, job: Job, column: &Cube) -> Option<Time>;

    /// The resource recorded for `job` in the column headed exactly by
    /// `column`, when the cell exists and carries provenance.
    fn resource(&self, job: Job, column: &Cube) -> Option<PeId>;

    /// Records the activation time of `job` under `column` together with the
    /// resource provenance, creating the column when absent, and returns the
    /// previously stored time for that cell, if any.
    fn set_on(
        &mut self,
        job: Job,
        column: Cube,
        time: Time,
        resource: Option<PeId>,
    ) -> Option<Time>;

    /// Visits the `(key, column, time, resource)` entries of the row of
    /// `job`, ordered by `key` — a view-wide stand-in for the column
    /// insertion index, chosen so that the iteration order matches what the
    /// serial walk would observe on the real table.
    fn for_each_keyed_entry_on(
        &self,
        job: Job,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    );

    /// Visits the `(column, time, resource)` entries of the row of `job` in
    /// the view's column order.
    #[inline]
    fn for_each_entry_on(&self, job: Job, visit: &mut dyn FnMut(Cube, Time, Option<PeId>)) {
        self.for_each_keyed_entry_on(job, &mut |_, column, time, resource| {
            visit(column, time, resource);
        });
    }

    /// Visits the `(key, column, time, resource)` entries of the row of `job`
    /// whose column is *compatible* with (not excluded by) `probe`.
    ///
    /// **Iteration order is unspecified** — [`ScheduleTable`] serves this
    /// from its per-row condition-partition index in mention-mask group
    /// order. Callers must be order-independent or re-establish a
    /// deterministic order from the keys. The default filters a keyed scan,
    /// so it visits in key order and records the same read dependencies a
    /// keyed scan would.
    #[inline]
    fn for_each_compatible_entry_on(
        &self,
        job: Job,
        probe: &Cube,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        self.for_each_keyed_entry_on(job, &mut |key, column, time, resource| {
            if column.compatible(probe) {
                visit(key, column, time, resource);
            }
        });
    }

    /// Visits the `(key, column, resource)` entries of the row of `job`
    /// tabled at exactly `time`.
    ///
    /// **Iteration order is unspecified** — [`ScheduleTable`] serves this
    /// from its per-row time bucketing. The default filters a keyed scan.
    #[inline]
    fn for_each_entry_at_on(
        &self,
        job: Job,
        time: Time,
        visit: &mut dyn FnMut(u64, Cube, Option<PeId>),
    ) {
        self.for_each_keyed_entry_on(job, &mut |key, column, tabled, resource| {
            if tabled == time {
                visit(key, column, resource);
            }
        });
    }

    /// The write version of the row of `job` (0 when never written).
    fn row_version(&self, job: Job) -> u64;

    /// `true` when the view has a column headed exactly by `column`.
    fn has_column(&self, column: &Cube) -> bool;

    /// The sort key of `column` in this view, if the column exists.
    fn column_key(&self, column: &Cube) -> Option<u64>;

    /// The exclusive upper bound of the keys handed out so far; a
    /// transaction layered over this view keys its fresh columns from here.
    fn column_bound(&self) -> u64;

    /// Replays a committed log into this view in its original write order.
    ///
    /// The default replays write-by-write through [`TableView::set_on`];
    /// [`ScheduleTable`] overrides it with column splicing (each distinct
    /// column cube resolved to an index exactly once, then direct-index cell
    /// writes), so both the cold walk and an incremental re-merge replaying
    /// cached logs take the fast path on the real table.
    fn splice_log(&mut self, log: &TxnLog) {
        commit_hook(self, log, "TableView::splice_log");
        for write in &log.writes {
            self.set_on(write.job, write.column, write.time, write.resource);
        }
    }
}

// The impl methods are `#[inline]`: the serial walk is monomorphized over
// `V = ScheduleTable`, and without cross-crate inlining every row probe of
// its hot loops would pay an opaque call plus a virtual visitor dispatch per
// entry (the closures devirtualize once the scan is inlined to where the
// concrete closure type is visible).
impl TableView for ScheduleTable {
    #[inline]
    fn get(&self, job: Job, column: &Cube) -> Option<Time> {
        race_hooks::read_cell(job, column, "ScheduleTable::get");
        ScheduleTable::get(self, job, column)
    }

    #[inline]
    fn resource(&self, job: Job, column: &Cube) -> Option<PeId> {
        race_hooks::read_cell(job, column, "ScheduleTable::resource");
        ScheduleTable::resource(self, job, column)
    }

    #[inline]
    fn set_on(
        &mut self,
        job: Job,
        column: Cube,
        time: Time,
        resource: Option<PeId>,
    ) -> Option<Time> {
        if race_hooks::active() {
            if self.column_position(&column).is_none() {
                race_hooks::write_columns("ScheduleTable::set_on");
            }
            race_hooks::write_cell(job, &column, "ScheduleTable::set_on");
        }
        ScheduleTable::set_on(self, job, column, time, resource)
    }

    #[inline]
    fn for_each_keyed_entry_on(
        &self,
        job: Job,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        race_hooks::read_row(job, "ScheduleTable::for_each_keyed_entry_on");
        self.visit_keyed_entries(job, visit);
    }

    // The index-served scans report the same row-level read the linear scan
    // did: which entries qualify is a function of the whole row, so the race
    // detector's dependency is the row, not the visited subset.
    #[inline]
    fn for_each_compatible_entry_on(
        &self,
        job: Job,
        probe: &Cube,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        race_hooks::read_row(job, "ScheduleTable::for_each_compatible_entry_on");
        self.visit_compatible_entries(job, probe, visit);
    }

    #[inline]
    fn for_each_entry_at_on(
        &self,
        job: Job,
        time: Time,
        visit: &mut dyn FnMut(u64, Cube, Option<PeId>),
    ) {
        race_hooks::read_row(job, "ScheduleTable::for_each_entry_at_on");
        self.visit_entries_at(job, time, visit);
    }

    #[inline]
    fn row_version(&self, job: Job) -> u64 {
        race_hooks::read_row(job, "ScheduleTable::row_version");
        ScheduleTable::row_version(self, job)
    }

    #[inline]
    fn has_column(&self, column: &Cube) -> bool {
        race_hooks::read_columns("ScheduleTable::has_column");
        self.column_position(column).is_some()
    }

    #[inline]
    fn column_key(&self, column: &Cube) -> Option<u64> {
        race_hooks::read_columns("ScheduleTable::column_key");
        self.column_position(column).map(|index| index as u64)
    }

    #[inline]
    fn column_bound(&self) -> u64 {
        race_hooks::read_columns("ScheduleTable::column_bound");
        self.num_columns() as u64
    }

    #[inline]
    fn splice_log(&mut self, log: &TxnLog) {
        commit_hook(self, log, "ScheduleTable::splice_log");
        if race_hooks::active() {
            // splice_writes bypasses set_on, so the detector's write records
            // are produced here: one column-structure write when any fresh
            // column is grafted, and a cell write per log entry.
            if log
                .new_columns
                .iter()
                .any(|column| self.column_position(column).is_none())
            {
                race_hooks::write_columns("ScheduleTable::splice_log");
            }
            for write in &log.writes {
                race_hooks::write_cell(write.job, &write.column, "ScheduleTable::splice_log");
            }
        }
        self.splice_writes(&log.writes);
    }
}

/// One buffered write of a transaction, replayed verbatim on commit.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Write {
    pub(crate) job: Job,
    pub(crate) column: Cube,
    pub(crate) time: Time,
    pub(crate) resource: Option<PeId>,
}

/// The content-based read set of a transaction: what was observed, so
/// validation can re-check that the base would still serve the same answers.
#[derive(Debug, Default)]
struct ReadSet {
    /// `(job, column, observed time)` for every point probe of a row the
    /// transaction never wrote, sorted by `(job, column)`, first probe wins
    /// (the base is frozen, so later probes observe the same value).
    time_probes: Vec<(Job, Cube, Option<Time>)>,
    /// `(job, column, observed resource)` for every resource probe of an
    /// unwritten row, sorted like `time_probes`.
    resource_probes: Vec<(Job, Cube, Option<PeId>)>,
    /// `(job, fingerprint)` for every row the transaction scanned (or cloned
    /// into its overlay on first write), sorted by job.
    row_scans: Vec<(Job, u64)>,
}

impl ReadSet {
    fn note_time(&mut self, job: Job, column: Cube, observed: Option<Time>) {
        if let Err(at) = self
            .time_probes
            .binary_search_by(|&(j, c, _)| (j, c).cmp(&(job, column)))
        {
            self.time_probes.insert(at, (job, column, observed));
        }
    }

    fn note_resource(&mut self, job: Job, column: Cube, observed: Option<PeId>) {
        if let Err(at) = self
            .resource_probes
            .binary_search_by(|&(j, c, _)| (j, c).cmp(&(job, column)))
        {
            self.resource_probes.insert(at, (job, column, observed));
        }
    }

    fn has_row_scan(&self, job: Job) -> bool {
        self.row_scans
            .binary_search_by_key(&job, |&(j, _)| j)
            .is_ok()
    }

    fn note_row_scan(&mut self, job: Job, fingerprint: u64) {
        if let Err(at) = self.row_scans.binary_search_by_key(&job, |&(j, _)| j) {
            self.row_scans.insert(at, (job, fingerprint));
        }
    }
}

/// One overlay row: the merged `(key, column, time, resource)` entries of the
/// base row plus this transaction's writes, sorted by key, together with the
/// number of writes the transaction applied to the row.
///
/// The union masks are the transaction-local delta of the base table's
/// condition-partition index: they are kept current as base entries are
/// cloned in and overlay writes land, so a compatibility scan over the
/// overlay can take the same "nothing here can exclude the probe" fast path
/// the indexed base row takes.
#[derive(Debug)]
struct TxnRow {
    job: Job,
    written: u64,
    entries: Vec<(u64, Cube, Time, Option<PeId>)>,
    /// Union of the positive masks over every column of the merged row.
    pos_union: u64,
    /// Union of the negative masks over every column of the merged row.
    neg_union: u64,
}

/// A speculative write overlay over a frozen [`TableView`].
///
/// Reads fall through to the base until the transaction first writes a row,
/// at which point the base row is cloned into the overlay (recording a
/// content fingerprint of the base row); point probes of unwritten rows
/// record the observed value per `(job, column)` cell. Fresh columns are
/// keyed past the base's [`TableView::column_bound`] in first-write order,
/// which is exactly the insertion order a serial replay of the write log
/// produces.
pub struct TableTxn<'b> {
    base: &'b (dyn TableView + Sync),
    /// [`TableView::column_bound`] of the base at creation time.
    base_bound: u64,
    /// Column cubes this transaction created, in first-write order.
    new_columns: Vec<Cube>,
    /// Overlay rows, sorted by job.
    rows: Vec<TxnRow>,
    /// `false` for replay overlays ([`TableTxn::readless`]): no read is ever
    /// recorded and no row is fingerprinted, because the log of such an
    /// overlay is only spliced (writes), never validated.
    record_reads: bool,
    /// Content-based read dependencies. Behind a mutex because sibling child
    /// transactions read through a shared `&TableTxn` from their worker
    /// threads.
    reads: Mutex<ReadSet>,
    /// Chronological write log, replayed by [`TxnLog::commit_into`].
    writes: Vec<Write>,
}

impl<'b> TableTxn<'b> {
    /// Opens a transaction over `base`, which must not change (other than
    /// through this transaction's eventual commit) while the transaction or
    /// its log is validated against it — the read set records observations at
    /// first touch.
    #[must_use]
    pub fn new(base: &'b (dyn TableView + Sync)) -> Self {
        Self {
            base_bound: base.column_bound(),
            base,
            new_columns: Vec::new(),
            rows: Vec::new(),
            record_reads: true,
            reads: Mutex::new(ReadSet::default()),
            writes: Vec::new(),
        }
    }

    /// Opens an overlay that records **no** read dependencies.
    ///
    /// For replaying already-validated (or about-to-be-validated) logs: the
    /// overlay only has to answer reads consistently — base plus the writes
    /// committed into it so far — while its own log is never validated, so
    /// fingerprinting rows and noting probes would be pure overhead. Its
    /// [`TxnLog::validate`] trivially succeeds; never use it for speculation.
    #[must_use]
    pub fn readless(base: &'b (dyn TableView + Sync)) -> Self {
        Self {
            record_reads: false,
            ..Self::new(base)
        }
    }

    fn reads(&self) -> std::sync::MutexGuard<'_, ReadSet> {
        self.reads.lock().expect("transaction read set poisoned")
    }

    /// Records a scan dependency on the base row of `job`, fingerprinting it
    /// unless a scan was already recorded.
    fn note_base_row_scan(&self, job: Job) {
        if !self.record_reads || self.reads().has_row_scan(job) {
            return;
        }
        let fingerprint = row_fingerprint(self.base, job);
        self.reads().note_row_scan(job, fingerprint);
    }

    fn overlay(&self, job: Job) -> Option<&TxnRow> {
        self.rows
            .binary_search_by_key(&job, |row| row.job)
            .ok()
            .map(|at| &self.rows[at])
    }

    /// The key of `column` in this view: the base's key when the base has
    /// the column, else the transaction-local key when this transaction
    /// created it.
    fn key_of(&self, column: &Cube) -> Option<u64> {
        self.base.column_key(column).or_else(|| {
            self.new_columns
                .iter()
                .position(|c| c == column)
                .map(|at| self.base_bound + at as u64)
        })
    }

    fn key_or_insert(&mut self, column: Cube) -> u64 {
        match self.key_of(&column) {
            Some(key) => key,
            None => {
                self.new_columns.push(column);
                self.base_bound + (self.new_columns.len() - 1) as u64
            }
        }
    }

    /// Number of buffered writes.
    #[must_use]
    pub fn num_writes(&self) -> usize {
        self.writes.len()
    }

    /// Detaches the transaction from its base, yielding an owned log that
    /// can be validated against and committed into the (now again mutable)
    /// underlying view.
    #[must_use]
    pub fn into_log(self) -> TxnLog {
        TxnLog {
            reads: self
                .reads
                .into_inner()
                .expect("transaction read set poisoned"),
            new_columns: self.new_columns,
            writes: self.writes,
        }
    }
}

impl TableView for TableTxn<'_> {
    #[inline]
    fn get(&self, job: Job, column: &Cube) -> Option<Time> {
        match self.overlay(job) {
            // Overlay rows need no recording: the base row was fingerprinted
            // when it was cloned in, and the overlay itself is private.
            Some(row) => {
                let key = self.key_of(column)?;
                row.entries
                    .binary_search_by_key(&key, |&(k, ..)| k)
                    .ok()
                    .map(|at| row.entries[at].2)
            }
            None => {
                let observed = self.base.get(job, column);
                if self.record_reads {
                    self.reads().note_time(job, *column, observed);
                }
                observed
            }
        }
    }

    #[inline]
    fn resource(&self, job: Job, column: &Cube) -> Option<PeId> {
        match self.overlay(job) {
            Some(row) => {
                let key = self.key_of(column)?;
                row.entries
                    .binary_search_by_key(&key, |&(k, ..)| k)
                    .ok()
                    .and_then(|at| row.entries[at].3)
            }
            None => {
                let observed = self.base.resource(job, column);
                if self.record_reads {
                    self.reads().note_resource(job, *column, observed);
                }
                observed
            }
        }
    }

    #[inline]
    fn set_on(
        &mut self,
        job: Job,
        column: Cube,
        time: Time,
        resource: Option<PeId>,
    ) -> Option<Time> {
        // The speculative overlay write is a scheduling point: it is where
        // an explored interleaving can squeeze sibling work between a
        // branch's read of the base and its buffered write.
        race_hooks::yield_spec_write();
        let key = self.key_or_insert(column);
        let at = match self.rows.binary_search_by_key(&job, |row| row.job) {
            Ok(at) => at,
            Err(at) => {
                // First write to this row: clone the base row into the
                // overlay so later reads see a complete merged row, and
                // record a content dependency on the base state that was
                // cloned (fingerprinted in the same pass). The union masks
                // of the cloned columns are accumulated in the same pass,
                // seeding the overlay's index delta.
                let mut entries = Vec::new();
                let mut pos_union = 0u64;
                let mut neg_union = 0u64;
                if self.record_reads {
                    let mut hasher = FrontierHasher::new();
                    self.base.for_each_keyed_entry_on(job, &mut |k, c, t, r| {
                        (k, c, t, r).hash(&mut hasher);
                        pos_union |= c.positive_mask();
                        neg_union |= c.negative_mask();
                        entries.push((k, c, t, r));
                    });
                    (entries.len() as u64).hash(&mut hasher);
                    self.reads()
                        .note_row_scan(job, std::hash::Hasher::finish(&hasher));
                } else {
                    self.base.for_each_keyed_entry_on(job, &mut |k, c, t, r| {
                        pos_union |= c.positive_mask();
                        neg_union |= c.negative_mask();
                        entries.push((k, c, t, r));
                    });
                }
                self.rows.insert(
                    at,
                    TxnRow {
                        job,
                        written: 0,
                        entries,
                        pos_union,
                        neg_union,
                    },
                );
                at
            }
        };
        self.writes.push(Write {
            job,
            column,
            time,
            resource,
        });
        let row = &mut self.rows[at];
        row.written += 1;
        row.pos_union |= column.positive_mask();
        row.neg_union |= column.negative_mask();
        match row.entries.binary_search_by_key(&key, |&(k, ..)| k) {
            Ok(slot) => {
                let previous = row.entries[slot].2;
                row.entries[slot] = (key, column, time, resource);
                Some(previous)
            }
            Err(slot) => {
                row.entries.insert(slot, (key, column, time, resource));
                None
            }
        }
    }

    #[inline]
    fn for_each_keyed_entry_on(
        &self,
        job: Job,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        match self.overlay(job) {
            Some(row) => {
                for &(key, column, time, resource) in &row.entries {
                    visit(key, column, time, resource);
                }
            }
            None if !self.record_reads || self.reads().has_row_scan(job) => {
                self.base.for_each_keyed_entry_on(job, visit);
            }
            None => {
                // Fingerprint the base row in the same pass that serves the
                // scan.
                let mut hasher = FrontierHasher::new();
                let mut entries = 0u64;
                self.base.for_each_keyed_entry_on(job, &mut |k, c, t, r| {
                    entries += 1;
                    (k, c, t, r).hash(&mut hasher);
                    visit(k, c, t, r);
                });
                entries.hash(&mut hasher);
                self.reads()
                    .note_row_scan(job, std::hash::Hasher::finish(&hasher));
            }
        }
    }

    #[inline]
    fn for_each_compatible_entry_on(
        &self,
        job: Job,
        probe: &Cube,
        visit: &mut dyn FnMut(u64, Cube, Time, Option<PeId>),
    ) {
        match self.overlay(job) {
            Some(row) => {
                // Same fast path as the indexed base row: when the merged
                // row's union masks cannot exclude the probe, every entry is
                // compatible and no cube is tested.
                if probe.positive_mask() & row.neg_union == 0
                    && probe.negative_mask() & row.pos_union == 0
                {
                    for &(key, column, time, resource) in &row.entries {
                        visit(key, column, time, resource);
                    }
                } else {
                    for &(key, column, time, resource) in &row.entries {
                        if column.compatible(probe) {
                            visit(key, column, time, resource);
                        }
                    }
                }
            }
            None if !self.record_reads || self.reads().has_row_scan(job) => {
                // Scan dependency already recorded (or never recorded):
                // serve straight from the base's indexed scan.
                self.base.for_each_compatible_entry_on(job, probe, visit);
            }
            None => {
                // Which entries qualify is a function of the whole row, so
                // the dependency is the full row fingerprint — recorded in
                // the same pass that serves the scan, exactly like a keyed
                // scan would.
                let mut hasher = FrontierHasher::new();
                let mut entries = 0u64;
                self.base.for_each_keyed_entry_on(job, &mut |k, c, t, r| {
                    entries += 1;
                    (k, c, t, r).hash(&mut hasher);
                    if c.compatible(probe) {
                        visit(k, c, t, r);
                    }
                });
                entries.hash(&mut hasher);
                self.reads()
                    .note_row_scan(job, std::hash::Hasher::finish(&hasher));
            }
        }
    }

    #[inline]
    fn for_each_entry_at_on(
        &self,
        job: Job,
        time: Time,
        visit: &mut dyn FnMut(u64, Cube, Option<PeId>),
    ) {
        match self.overlay(job) {
            Some(row) => {
                for &(key, column, tabled, resource) in &row.entries {
                    if tabled == time {
                        visit(key, column, resource);
                    }
                }
            }
            None if !self.record_reads || self.reads().has_row_scan(job) => {
                self.base.for_each_entry_at_on(job, time, visit);
            }
            None => {
                let mut hasher = FrontierHasher::new();
                let mut entries = 0u64;
                self.base.for_each_keyed_entry_on(job, &mut |k, c, t, r| {
                    entries += 1;
                    (k, c, t, r).hash(&mut hasher);
                    if t == time {
                        visit(k, c, r);
                    }
                });
                entries.hash(&mut hasher);
                self.reads()
                    .note_row_scan(job, std::hash::Hasher::finish(&hasher));
            }
        }
    }

    #[inline]
    fn row_version(&self, job: Job) -> u64 {
        // Version numbers leak write history, not content; treat the call as
        // a full row dependency so validation stays conservative here.
        self.note_base_row_scan(job);
        self.base.row_version(job) + self.overlay(job).map_or(0, |row| row.written)
    }

    #[inline]
    fn has_column(&self, column: &Cube) -> bool {
        self.base.has_column(column) || self.new_columns.contains(column)
    }

    #[inline]
    fn column_key(&self, column: &Cube) -> Option<u64> {
        self.key_of(column)
    }

    #[inline]
    fn column_bound(&self) -> u64 {
        self.base_bound + self.new_columns.len() as u64
    }
}

/// The owned outcome of a [`TableTxn`]: its read set, created columns and
/// chronological write log.
#[derive(Debug)]
pub struct TxnLog {
    reads: ReadSet,
    new_columns: Vec<Cube>,
    writes: Vec<Write>,
}

impl TxnLog {
    /// `true` when the transaction buffered no writes (committing it would
    /// be a no-op).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Number of buffered writes.
    #[must_use]
    pub fn num_writes(&self) -> usize {
        self.writes.len()
    }

    /// The column cubes this log writes under, in write order (duplicates
    /// possible). An incremental re-merge uses them to bound which
    /// alternative paths a changed table region can affect.
    pub fn written_columns(&self) -> impl Iterator<Item = Cube> + '_ {
        self.writes.iter().map(|write| write.column)
    }

    /// `true` when the speculation still holds against `base`: every point
    /// probe would observe the value it recorded, every scanned row still
    /// fingerprints to the recorded content, and no column the transaction
    /// created has meanwhile been created in the base (which would give the
    /// replayed entries a different global order than the speculation
    /// assumed).
    #[must_use]
    pub fn validate<V: TableView + ?Sized>(&self, base: &V) -> bool {
        race_hooks::yield_validate();
        self.holds_against(base)
    }

    /// The validation predicate itself, shared between [`TxnLog::validate`]
    /// (which adds the race-check scheduling point) and the commit hook's
    /// re-validation (which must not yield again mid-commit).
    fn holds_against<V: TableView + ?Sized>(&self, base: &V) -> bool {
        self.reads
            .time_probes
            .iter()
            .all(|&(job, column, observed)| base.get(job, &column) == observed)
            && self
                .reads
                .resource_probes
                .iter()
                .all(|&(job, column, observed)| base.resource(job, &column) == observed)
            && self
                .reads
                .row_scans
                .iter()
                .all(|&(job, fingerprint)| row_fingerprint(base, job) == fingerprint)
            && self
                .new_columns
                .iter()
                .all(|column| !base.has_column(column))
    }

    /// Replays the buffered writes into `base` in their original order.
    ///
    /// Callers decide the policy: a forward-branch log commits
    /// unconditionally (its snapshot was the serial state), a back-branch
    /// log only after [`TxnLog::validate`].
    pub fn commit_into<V: TableView + ?Sized>(&self, base: &mut V) {
        commit_hook(base, self, "TxnLog::commit_into");
        for write in &self.writes {
            base.set_on(write.job, write.column, write.time, write.resource);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{CondId, ProcessId};

    fn p(i: usize) -> Job {
        Job::Process(ProcessId::from_index(i))
    }

    fn c(i: usize) -> CondId {
        CondId::new(i)
    }

    fn cube_t(i: usize) -> Cube {
        Cube::from(c(i).is_true())
    }

    fn cube_f(i: usize) -> Cube {
        Cube::from(c(i).is_false())
    }

    #[test]
    fn row_versions_count_writes_and_survive_removal() {
        let mut table = ScheduleTable::new();
        assert_eq!(table.row_version(p(1)), 0);
        table.set(p(1), Cube::top(), Time::new(1));
        assert_eq!(table.row_version(p(1)), 1);
        // Overwriting with the identical value still counts as a write.
        table.set(p(1), Cube::top(), Time::new(1));
        assert_eq!(table.row_version(p(1)), 2);
        table.remove(p(1), &Cube::top());
        assert!(!table.contains_job(p(1)));
        assert_eq!(table.row_version(p(1)), 3);
        // Removing an absent entry is not a write.
        table.remove(p(1), &Cube::top());
        assert_eq!(table.row_version(p(1)), 3);
        // Versions are bookkeeping, not content: a table with a different
        // write history but the same cells compares equal.
        let mut other = ScheduleTable::new();
        other.set(p(1), Cube::top(), Time::new(1));
        other.remove(p(1), &Cube::top());
        assert_eq!(table, other);
        assert_ne!(table.row_version(p(1)), other.row_version(p(1)));
    }

    #[test]
    fn reads_fall_through_and_writes_overlay() {
        let mut table = ScheduleTable::new();
        table.set_on(p(1), Cube::top(), Time::new(4), Some(PeId::from_index(0)));
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::new(base);
        // Read-through.
        assert_eq!(txn.get(p(1), &Cube::top()), Some(Time::new(4)));
        assert_eq!(txn.resource(p(1), &Cube::top()), Some(PeId::from_index(0)));
        assert_eq!(txn.get(p(2), &Cube::top()), None);
        // Overlay write: visible in the txn, invisible in the base.
        assert_eq!(
            txn.set_on(p(1), Cube::top(), Time::new(9), None),
            Some(Time::new(4))
        );
        assert_eq!(txn.get(p(1), &Cube::top()), Some(Time::new(9)));
        assert_eq!(txn.set_on(p(2), cube_t(0), Time::new(7), None), None);
        assert_eq!(txn.num_writes(), 2);
        assert_eq!(
            ScheduleTable::get(&table, p(1), &Cube::top()),
            Some(Time::new(4))
        );

        let log = txn.into_log();
        assert!(log.validate(&table));
        log.commit_into(&mut table);
        assert_eq!(
            ScheduleTable::get(&table, p(1), &Cube::top()),
            Some(Time::new(9))
        );
        assert_eq!(
            ScheduleTable::get(&table, p(2), &cube_t(0)),
            Some(Time::new(7))
        );
    }

    #[test]
    fn readless_overlays_record_no_dependencies_and_always_validate() {
        let mut table = ScheduleTable::new();
        table.set_on(p(1), Cube::top(), Time::new(4), Some(PeId::from_index(0)));
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::readless(base);
        // Reads answer exactly like a recording overlay would...
        assert_eq!(txn.get(p(1), &Cube::top()), Some(Time::new(4)));
        assert_eq!(txn.get(p(2), &Cube::top()), None);
        txn.set_on(p(2), cube_t(0), Time::new(7), None);
        assert_eq!(txn.get(p(2), &cube_t(0)), Some(Time::new(7)));
        let log = txn.into_log();
        assert_eq!(log.written_columns().collect::<Vec<_>>(), vec![cube_t(0)]);
        // ...but none of them became a dependency: the log still validates
        // after every observed cell changed under it.
        table.set(p(1), Cube::top(), Time::new(9));
        table.set(p(2), Cube::top(), Time::new(1));
        assert!(log.validate(&table));

        // A recording overlay with the same history catches the change.
        let mut other = ScheduleTable::new();
        other.set_on(p(1), Cube::top(), Time::new(4), Some(PeId::from_index(0)));
        let base: &(dyn TableView + Sync) = &other;
        let txn = TableTxn::new(base);
        assert_eq!(txn.get(p(1), &Cube::top()), Some(Time::new(4)));
        let recorded = txn.into_log();
        other.set(p(1), Cube::top(), Time::new(9));
        assert!(!recorded.validate(&other));
    }

    #[test]
    fn overlay_iteration_order_matches_a_serial_replay() {
        // Base has columns [top, c0]; the txn writes a fresh column c1 and
        // then another base column. After commit the real table's row must
        // iterate in the same relative order the overlay showed.
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        table.set(p(1), cube_t(0), Time::new(1));
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::new(base);
        txn.set_on(p(1), cube_t(1), Time::new(2), None);
        txn.set_on(p(1), cube_f(1), Time::new(3), None);
        let mut overlay_order = Vec::new();
        txn.for_each_entry_on(p(1), &mut |column, time, _| {
            overlay_order.push((column, time));
        });
        let log = txn.into_log();
        log.commit_into(&mut table);
        let replayed: Vec<_> = table.entries(p(1)).collect();
        assert_eq!(overlay_order, replayed);
    }

    #[test]
    fn validation_is_per_cell_and_content_based() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let txn = TableTxn::new(base);
        // A point probe (even of an absent cell) is a dependency on that
        // cell's content.
        assert_eq!(txn.get(p(1), &Cube::top()), Some(Time::new(0)));
        assert_eq!(txn.get(p(2), &Cube::top()), None);
        let log = txn.into_log();
        assert!(log.validate(&table));
        // A sibling writing a *different* cell of a probed row no longer
        // discards the speculation (the old per-row versions did).
        table.set(p(2), cube_t(0), Time::new(5));
        assert!(log.validate(&table));
        // Neither does rewriting a probed cell with the same value.
        table.set(p(1), Cube::top(), Time::new(0));
        assert!(log.validate(&table));
        // Changing the probed value does.
        table.set(p(1), Cube::top(), Time::new(9));
        assert!(!log.validate(&table));
    }

    #[test]
    fn validation_fails_when_a_probed_absent_cell_appears() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let txn = TableTxn::new(base);
        assert_eq!(txn.get(p(2), &Cube::top()), None);
        let log = txn.into_log();
        assert!(log.validate(&table));
        table.set(p(2), Cube::top(), Time::new(5));
        assert!(!log.validate(&table));
    }

    #[test]
    fn validation_fails_when_a_scanned_row_gains_an_entry() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let txn = TableTxn::new(base);
        let mut seen = 0;
        txn.for_each_entry_on(p(1), &mut |_, _, _| seen += 1);
        assert_eq!(seen, 1);
        let log = txn.into_log();
        assert!(log.validate(&table));
        // Same content rewrite of the scanned row: fingerprint unchanged.
        table.set(p(1), Cube::top(), Time::new(0));
        assert!(log.validate(&table));
        // A new entry in the scanned row changes what the scan would feed.
        table.set(p(1), cube_t(0), Time::new(3));
        assert!(!log.validate(&table));
    }

    #[test]
    fn validation_fails_when_a_sibling_creates_the_same_column() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::new(base);
        // The txn creates column c0 and only touches row p(2).
        txn.set_on(p(2), cube_t(0), Time::new(3), None);
        let log = txn.into_log();
        assert!(log.validate(&table));
        // A sibling creates the *same* column in a row the txn never read:
        // no row version the txn saw changed, but the global column order
        // now differs from what the speculation assumed.
        table.set(p(3), cube_t(0), Time::new(8));
        assert!(!log.validate(&table));
    }

    #[test]
    fn nested_transactions_layer_and_conflict_like_flat_ones() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let mut outer = TableTxn::new(base);
        outer.set_on(p(2), cube_t(0), Time::new(2), None);

        // Inner forward/back pair over the frozen outer txn.
        let frozen: &(dyn TableView + Sync) = &outer;
        let mut inner_fwd = TableTxn::new(frozen);
        let inner_back = TableTxn::new(frozen);
        inner_fwd.set_on(p(2), cube_t(1), Time::new(4), None);
        // The back speculation probes the very cell the forward branch
        // writes.
        assert_eq!(inner_back.get(p(2), &cube_t(1)), None);
        let fwd_log = inner_fwd.into_log();
        let back_log = inner_back.into_log();
        fwd_log.commit_into(&mut outer);
        assert!(
            !back_log.validate(&outer),
            "conflicting read must invalidate"
        );

        // An independent back speculation survives the same commit.
        let frozen: &(dyn TableView + Sync) = &outer;
        let clean = TableTxn::new(frozen);
        assert_eq!(clean.get(p(1), &Cube::top()), Some(Time::new(0)));
        let clean_log = clean.into_log();
        assert!(clean_log.validate(&outer));

        // Outer commit replays everything, inner writes included.
        let outer_log = outer.into_log();
        assert!(!outer_log.is_empty());
        assert!(outer_log.validate(&table));
        outer_log.commit_into(&mut table);
        assert_eq!(
            ScheduleTable::get(&table, p(2), &cube_t(0)),
            Some(Time::new(2))
        );
        assert_eq!(
            ScheduleTable::get(&table, p(2), &cube_t(1)),
            Some(Time::new(4))
        );
    }

    #[test]
    fn splice_log_matches_a_write_by_write_commit() {
        let mut seed = ScheduleTable::new();
        seed.set(p(1), Cube::top(), Time::new(0));
        seed.set(p(1), cube_t(0), Time::new(1));
        let mut spliced = seed.clone();
        let mut replayed = seed.clone();

        let base: &(dyn TableView + Sync) = &seed;
        let mut txn = TableTxn::new(base);
        // Fresh columns, an overwrite of a retained column, and an
        // interleaved second fresh column exercise the graft/renumber path.
        txn.set_on(p(2), cube_t(1), Time::new(2), Some(PeId::from_index(0)));
        txn.set_on(p(1), cube_t(0), Time::new(7), None);
        txn.set_on(p(2), cube_f(1), Time::new(3), None);
        txn.set_on(p(3), cube_t(1), Time::new(4), None);
        let log = txn.into_log();

        log.commit_into(&mut replayed);
        spliced.splice_log(&log);
        assert_eq!(spliced, replayed);
        let order: Vec<_> = spliced.entries(p(2)).collect();
        let replayed_order: Vec<_> = replayed.entries(p(2)).collect();
        assert_eq!(order, replayed_order);
        for job in [p(1), p(2), p(3)] {
            assert_eq!(spliced.row_version(job), replayed.row_version(job));
        }
    }

    #[test]
    fn graft_column_retains_and_renumbers() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        table.set(p(1), cube_t(0), Time::new(1));
        // Retained columns keep their index; a fresh cube is appended past
        // the current bound.
        assert_eq!(table.graft_column(Cube::top()), 0);
        assert_eq!(table.graft_column(cube_t(0)), 1);
        assert_eq!(table.graft_column(cube_t(1)), 2);
        assert_eq!(table.graft_column(cube_t(1)), 2);
        assert_eq!(table.num_columns(), 3);
    }

    #[test]
    fn row_version_of_a_txn_reflects_its_own_writes() {
        let mut table = ScheduleTable::new();
        table.set(p(1), Cube::top(), Time::new(0));
        let base: &(dyn TableView + Sync) = &table;
        let mut txn = TableTxn::new(base);
        assert_eq!(TableView::row_version(&txn, p(1)), 1);
        txn.set_on(p(1), cube_t(0), Time::new(3), None);
        assert_eq!(TableView::row_version(&txn, p(1)), 2);
        assert_eq!(TableView::row_version(&txn, p(9)), 0);
    }
}
