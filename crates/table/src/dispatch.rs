//! Per-processor dispatch tables: the run-time view of the schedule table.
//!
//! The schedule table "contains all information needed by a distributed run
//! time scheduler to take decisions on activation of processes" (Section 3 of
//! the paper): during execution, a very simple non-preemptive scheduler on
//! each programmable processor and bus activates processes depending on the
//! actual condition values. This module splits a [`ScheduleTable`] into that
//! per-resource form and renders it as the pseudo-code such a scheduler would
//! execute — the last step of the synthesis flow the paper targets.

use std::fmt::Write as _;

use cpg::{Cpg, Cube};
use cpg_arch::{Architecture, PeId, Time};
use cpg_path_sched::Job;

use crate::table::ScheduleTable;

/// One activation decision of a local run-time scheduler: "when the condition
/// values `column` are observed, activate `job` at time `start`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchEntry {
    job: Job,
    column: Cube,
    start: Time,
}

impl DispatchEntry {
    /// The job to activate.
    #[must_use]
    pub const fn job(&self) -> Job {
        self.job
    }

    /// The conjunction of condition values under which this entry applies.
    #[must_use]
    pub const fn column(&self) -> Cube {
        self.column
    }

    /// The activation time.
    #[must_use]
    pub const fn start(&self) -> Time {
        self.start
    }
}

/// The dispatch table of one processing element: every activation decision
/// its local scheduler may have to take, in activation-time order.
///
/// # Example
///
/// ```
/// use cpg::examples;
/// use cpg_merge::{generate_schedule_table, MergeConfig};
/// use cpg_table::per_processor_dispatch;
///
/// let system = examples::fig1();
/// let result = generate_schedule_table(
///     system.cpg(),
///     system.arch(),
///     &MergeConfig::new(system.broadcast_time()),
/// );
/// let dispatch = per_processor_dispatch(result.table(), system.cpg(), system.arch());
/// assert_eq!(dispatch.len(), system.arch().len());
/// let total: usize = dispatch.iter().map(|d| d.entries().len()).sum();
/// assert_eq!(total, result.table().num_entries());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchTable {
    pe: PeId,
    entries: Vec<DispatchEntry>,
}

impl DispatchTable {
    /// The processing element this dispatch table belongs to.
    #[must_use]
    pub const fn pe(&self) -> PeId {
        self.pe
    }

    /// The activation decisions, sorted by activation time.
    #[must_use]
    pub fn entries(&self) -> &[DispatchEntry] {
        &self.entries
    }

    /// `true` when no job is ever dispatched on this processing element.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the dispatch table as the pseudo-code of the local
    /// non-preemptive scheduler.
    #[must_use]
    pub fn render_pseudocode(&self, cpg: &Cpg, arch: &Architecture) -> String {
        let mut out = String::new();
        let pe = arch.pe(self.pe);
        let _ = writeln!(out, "// dispatch table for {} ({})", pe.name(), pe.kind());
        let _ = writeln!(out, "loop_forever {{");
        let _ = writeln!(out, "  wait_for_system_activation();");
        for entry in &self.entries {
            let what = match entry.job() {
                Job::Process(pid) => format!("start_process({})", cpg.process(pid).name()),
                Job::Broadcast(cond) => {
                    format!("broadcast_condition({})", cpg.condition_name(cond))
                }
            };
            if entry.column().is_top() {
                let _ = writeln!(out, "  at t={}: {what};", entry.start());
            } else {
                let _ = writeln!(
                    out,
                    "  at t={} if observed({}): {what};",
                    entry.start(),
                    cpg.display_cube(&entry.column())
                );
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

/// Splits a schedule table into one dispatch table per processing element.
///
/// Process rows go to the processing element the process is mapped to;
/// condition-broadcast entries go to the bus recorded with the entry when its
/// time was tabled (the bus the generating schedule actually occupied),
/// falling back to the first broadcast-capable bus for tables without
/// provenance. Every entry of the schedule table appears in exactly one
/// dispatch table; processing elements with no work get an empty dispatch
/// table so that code can be emitted for every resource uniformly.
#[must_use]
pub fn per_processor_dispatch(
    table: &ScheduleTable,
    cpg: &Cpg,
    arch: &Architecture,
) -> Vec<DispatchTable> {
    let broadcast_bus = arch.broadcast_buses().next();
    let mut dispatch: Vec<DispatchTable> = arch
        .ids()
        .map(|pe| DispatchTable {
            pe,
            entries: Vec::new(),
        })
        .collect();
    for (job, column, start, resource) in table.all_entries_on() {
        let pe = match job {
            Job::Process(pid) => cpg.mapping(pid),
            Job::Broadcast(_) => resource.or(broadcast_bus),
        };
        let Some(pe) = pe else { continue };
        dispatch[pe.index()]
            .entries
            .push(DispatchEntry { job, column, start });
    }
    for table in &mut dispatch {
        table
            .entries
            .sort_by_key(|e| (e.start, e.job, e.column.len()));
    }
    dispatch
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{examples, ProcessId};

    fn sample() -> (examples::ExampleSystem, ScheduleTable) {
        let system = examples::diamond();
        let cpg = system.cpg();
        let c = system.condition("C").unwrap();
        let mut table = ScheduleTable::new();
        let decide = cpg.process_by_name("decide").unwrap();
        let hot = cpg.process_by_name("hot").unwrap();
        let cold = cpg.process_by_name("cold").unwrap();
        table.set(Job::Process(decide), Cube::top(), Time::ZERO);
        table.set(Job::Broadcast(c), Cube::top(), Time::new(2));
        table.set(Job::Process(hot), Cube::from(c.is_true()), Time::new(4));
        table.set(Job::Process(cold), Cube::from(c.is_false()), Time::new(2));
        (system.clone(), table)
    }

    #[test]
    fn every_entry_lands_on_exactly_one_processing_element() {
        let (system, table) = sample();
        let dispatch = per_processor_dispatch(&table, system.cpg(), system.arch());
        assert_eq!(dispatch.len(), system.arch().len());
        let total: usize = dispatch.iter().map(|d| d.entries().len()).sum();
        assert_eq!(total, table.num_entries());
        // Process entries sit on the processor the process is mapped to.
        for d in &dispatch {
            for entry in d.entries() {
                if let Some(pid) = entry.job().as_process() {
                    assert_eq!(system.cpg().mapping(pid), Some(d.pe()));
                }
            }
        }
    }

    #[test]
    fn broadcast_entries_go_to_the_broadcast_bus() {
        let (system, table) = sample();
        let dispatch = per_processor_dispatch(&table, system.cpg(), system.arch());
        let bus = system.arch().broadcast_buses().next().unwrap();
        let bus_dispatch = dispatch.iter().find(|d| d.pe() == bus).unwrap();
        assert!(bus_dispatch
            .entries()
            .iter()
            .any(|e| e.job().is_broadcast()));
    }

    #[test]
    fn entries_are_sorted_by_activation_time() {
        let (system, table) = sample();
        for d in per_processor_dispatch(&table, system.cpg(), system.arch()) {
            for pair in d.entries().windows(2) {
                assert!(pair[0].start() <= pair[1].start());
            }
        }
    }

    #[test]
    fn pseudocode_mentions_processes_conditions_and_guards() {
        let (system, table) = sample();
        let dispatch = per_processor_dispatch(&table, system.cpg(), system.arch());
        let rendered: String = dispatch
            .iter()
            .map(|d| d.render_pseudocode(system.cpg(), system.arch()))
            .collect();
        assert!(rendered.contains("start_process(decide)"));
        assert!(rendered.contains("broadcast_condition(C)"));
        assert!(rendered.contains("if observed(C)"));
        assert!(rendered.contains("if observed(!C)"));
        assert!(rendered.contains("dispatch table for cpu0"));
        // Unconditional activations carry no guard.
        assert!(rendered.contains("at t=0: start_process(decide);"));
    }

    #[test]
    fn idle_processing_elements_get_an_empty_dispatch_table() {
        let system = examples::diamond();
        let table = ScheduleTable::new();
        let dispatch = per_processor_dispatch(&table, system.cpg(), system.arch());
        assert!(dispatch.iter().all(DispatchTable::is_empty));
        let _ = ProcessId::from_index(0);
    }

    #[test]
    fn accessors_expose_the_entry_fields() {
        let (system, table) = sample();
        let dispatch = per_processor_dispatch(&table, system.cpg(), system.arch());
        let entry = dispatch
            .iter()
            .flat_map(|d| d.entries().iter())
            .find(|e| e.job().is_broadcast())
            .unwrap();
        assert_eq!(entry.start(), Time::new(2));
        assert!(entry.column().is_top());
    }
}
