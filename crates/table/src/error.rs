//! Violations of the schedule-table correctness requirements.

use std::error::Error;
use std::fmt;

use cpg::Cube;
use cpg_arch::Time;
use cpg_path_sched::Job;

/// A violation of one of the four correctness requirements that a schedule
/// table must satisfy (Section 3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TableViolation {
    /// Requirement 1: an activation time is placed in a column whose
    /// expression does not imply the guard of the process — the process could
    /// be activated although the conditions required for its execution are
    /// not fulfilled.
    GuardViolated {
        /// The offending row.
        job: Job,
        /// The offending column expression.
        column: Cube,
    },
    /// Requirement 2: two different activation times of the same process are
    /// placed in columns that can be true simultaneously — the run-time
    /// scheduler could not take a deterministic decision.
    Nondeterministic {
        /// The offending row.
        job: Job,
        /// First column expression.
        first: Cube,
        /// Second, compatible column expression.
        second: Cube,
        /// Activation time in the first column.
        first_time: Time,
        /// Activation time in the second column.
        second_time: Time,
    },
    /// Requirement 3: a process whose guard becomes true during some execution
    /// has no applicable activation time in the table for that execution.
    MissingActivation {
        /// The offending row.
        job: Job,
        /// The label of the execution (alternative path) with no applicable
        /// column.
        track: Cube,
    },
    /// A row refers to a process or condition that does not exist in the
    /// graph the table is checked against.
    UnknownJob {
        /// The offending row.
        job: Job,
    },
}

impl fmt::Display for TableViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableViolation::GuardViolated { job, column } => {
                write!(f, "activation of {job} in column `{column}` violates its guard")
            }
            TableViolation::Nondeterministic {
                job,
                first,
                second,
                first_time,
                second_time,
            } => write!(
                f,
                "activation of {job} is ambiguous: {first_time} under `{first}` but {second_time} under `{second}`"
            ),
            TableViolation::MissingActivation { job, track } => {
                write!(f, "{job} has no activation time applicable to execution `{track}`")
            }
            TableViolation::UnknownJob { job } => {
                write!(f, "row {job} does not correspond to the graph being checked")
            }
        }
    }
}

impl Error for TableViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::ProcessId;

    #[test]
    fn violations_format_with_context() {
        let v = TableViolation::GuardViolated {
            job: Job::Process(ProcessId::from_index(4)),
            column: Cube::top(),
        };
        assert!(v.to_string().contains("P4"));
        let v = TableViolation::MissingActivation {
            job: Job::Process(ProcessId::from_index(1)),
            track: Cube::top(),
        };
        assert!(v.to_string().contains("no activation"));
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TableViolation>();
    }
}
