//! Implementation architectures of the OAM block.
//!
//! The paper evaluates the OAM block on architectures built from one or two
//! processors (486DX2/80 or Pentium/120), one or two memory modules and an
//! internal bus (Fig. 7b and Table 2). Memory modules are exclusive resources
//! accessed by dedicated memory-access processes; we model them as additional
//! sequential processing elements so that accesses to the same module
//! serialize while accesses to different modules overlap.

use std::fmt;

use cpg_arch::Architecture;

/// A processor model of the OAM experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuModel {
    /// Intel 486DX2 at 80 MHz (the slow processor of the paper).
    I486,
    /// Intel Pentium at 120 MHz (the fast processor of the paper).
    Pentium,
}

impl CpuModel {
    /// Scales a base (486) execution time to this processor.
    ///
    /// The published mode-2 delays (1732 ns on the 486 versus 1167 ns on the
    /// Pentium) give a speed ratio of roughly 0.67; computation processes are
    /// scaled by that factor while communication and memory-access times are
    /// architecture-independent.
    #[must_use]
    pub fn scale(self, base: u64) -> u64 {
        match self {
            CpuModel::I486 => base,
            CpuModel::Pentium => ((base as f64) * 0.67).round().max(1.0) as u64,
        }
    }

    /// Short label used in architecture names ("486" / "Pent").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CpuModel::I486 => "486",
            CpuModel::Pentium => "Pent",
        }
    }
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuModel::I486 => f.write_str("486DX2/80"),
            CpuModel::Pentium => f.write_str("Pentium/120"),
        }
    }
}

/// One implementation architecture of the OAM block: its processors and the
/// number of memory modules.
///
/// # Example
///
/// ```
/// use cpg_atm::{CpuModel, OamPlatform};
///
/// let platform = OamPlatform::new(vec![CpuModel::I486, CpuModel::Pentium], 2);
/// assert_eq!(platform.name(), "2P/2M (486+Pent)");
/// assert_eq!(platform.processors().len(), 2);
/// let arch = platform.architecture();
/// assert_eq!(arch.processors().count(), 4); // 2 CPUs + 2 memory modules
/// assert_eq!(arch.buses().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OamPlatform {
    processors: Vec<CpuModel>,
    memory_modules: usize,
}

impl OamPlatform {
    /// Creates a platform from its processors and memory-module count.
    ///
    /// # Panics
    ///
    /// Panics if there is no processor or no memory module.
    #[must_use]
    pub fn new(processors: Vec<CpuModel>, memory_modules: usize) -> Self {
        assert!(
            !processors.is_empty(),
            "a platform needs at least one processor"
        );
        assert!(
            memory_modules >= 1,
            "a platform needs at least one memory module"
        );
        // Put the faster processor first so that the mapping heuristics place
        // the critical chains on it.
        let mut processors = processors;
        processors.sort_by_key(|cpu| match cpu {
            CpuModel::Pentium => 0,
            CpuModel::I486 => 1,
        });
        OamPlatform {
            processors,
            memory_modules,
        }
    }

    /// The processors of the platform, fastest first.
    #[must_use]
    pub fn processors(&self) -> &[CpuModel] {
        &self.processors
    }

    /// Number of memory modules.
    #[must_use]
    pub fn memory_modules(&self) -> usize {
        self.memory_modules
    }

    /// The name used by the paper's Table 2, e.g. `1P/1M (486)` or
    /// `2P/2M (2xPent)`.
    #[must_use]
    pub fn name(&self) -> String {
        let cpus = match self.processors.as_slice() {
            [single] => single.label().to_owned(),
            [a, b] if a == b => format!("2x{}", a.label()),
            [a, b] => format!("{}+{}", b.label(), a.label()),
            more => format!("{}P", more.len()),
        };
        format!(
            "{}P/{}M ({})",
            self.processors.len(),
            self.memory_modules,
            cpus
        )
    }

    /// Builds the target architecture: the processors, the memory modules
    /// (modelled as sequential processing elements) and the internal bus.
    #[must_use]
    pub fn architecture(&self) -> Architecture {
        let mut builder = Architecture::builder();
        for (i, _) in self.processors.iter().enumerate() {
            builder = builder.processor(format!("cpu{i}"));
        }
        for m in 0..self.memory_modules {
            builder = builder.processor(format!("mem{m}"));
        }
        builder = builder.bus("internal-bus");
        builder
            .build()
            .expect("OAM platforms always form a valid architecture")
    }

    /// The ten architecture variants evaluated in the paper's Table 2:
    /// 1P/1M, 1P/2M, 2P/1M and 2P/2M with 486 and Pentium processors (and
    /// the mixed 486+Pentium case for the two-processor variants).
    #[must_use]
    pub fn paper_platforms() -> Vec<OamPlatform> {
        use CpuModel::{Pentium, I486};
        vec![
            OamPlatform::new(vec![I486], 1),
            OamPlatform::new(vec![Pentium], 1),
            OamPlatform::new(vec![I486], 2),
            OamPlatform::new(vec![Pentium], 2),
            OamPlatform::new(vec![I486, I486], 1),
            OamPlatform::new(vec![Pentium, Pentium], 1),
            OamPlatform::new(vec![I486, Pentium], 1),
            OamPlatform::new(vec![I486, I486], 2),
            OamPlatform::new(vec![Pentium, Pentium], 2),
            OamPlatform::new(vec![I486, Pentium], 2),
        ]
    }
}

impl fmt::Display for OamPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_is_faster_than_the_486() {
        assert!(CpuModel::Pentium.scale(300) < CpuModel::I486.scale(300));
        assert_eq!(CpuModel::I486.scale(100), 100);
        assert_eq!(CpuModel::Pentium.scale(100), 67);
        assert!(CpuModel::Pentium.scale(1) >= 1);
    }

    #[test]
    fn platform_names_match_the_papers_notation() {
        use CpuModel::{Pentium, I486};
        assert_eq!(OamPlatform::new(vec![I486], 1).name(), "1P/1M (486)");
        assert_eq!(OamPlatform::new(vec![Pentium], 2).name(), "1P/2M (Pent)");
        assert_eq!(
            OamPlatform::new(vec![I486, I486], 1).name(),
            "2P/1M (2x486)"
        );
        assert_eq!(
            OamPlatform::new(vec![I486, Pentium], 2).name(),
            "2P/2M (486+Pent)"
        );
    }

    #[test]
    fn architecture_contains_cpus_memories_and_bus() {
        let platform = OamPlatform::new(vec![CpuModel::I486, CpuModel::I486], 2);
        let arch = platform.architecture();
        assert_eq!(arch.processors().count(), 4);
        assert_eq!(arch.buses().count(), 1);
        assert!(arch.pe_by_name("cpu0").is_some());
        assert!(arch.pe_by_name("cpu1").is_some());
        assert!(arch.pe_by_name("mem1").is_some());
    }

    #[test]
    fn paper_platforms_cover_the_ten_table_columns() {
        let platforms = OamPlatform::paper_platforms();
        assert_eq!(platforms.len(), 10);
        let names: Vec<String> = platforms.iter().map(OamPlatform::name).collect();
        assert!(names.contains(&"1P/1M (486)".to_owned()));
        assert!(names.contains(&"2P/2M (2xPent)".to_owned()));
        assert!(names.contains(&"2P/1M (486+Pent)".to_owned()));
        // All names are distinct.
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_platform_is_rejected() {
        let _ = OamPlatform::new(vec![], 1);
    }

    #[test]
    fn display_uses_the_name() {
        let platform = OamPlatform::new(vec![CpuModel::Pentium], 1);
        assert_eq!(platform.to_string(), platform.name());
    }
}
