//! The three operating modes of the OAM block, modelled as conditional
//! process graphs.
//!
//! The paper specifies the functionality of the OAM block (F4 level of the
//! ATM protocol layer) as interacting VHDL processes and identifies three
//! independent operating modes with the following published characteristics
//! (Table 2):
//!
//! | mode | processes | alternative paths | potential parallelism |
//! |------|-----------|-------------------|-----------------------|
//! | 1    | 32        | 6                 | yes, incl. parallel memory accesses |
//! | 2    | 23        | 3                 | none (purely sequential) |
//! | 3    | 42        | 8                 | yes, but communication heavy |
//!
//! The original VHDL models are not public, so the graphs built here are
//! synthetic reconstructions with exactly those characteristics; execution
//! times are base 486 values in nanoseconds, scaled per processor model.

use cpg::{expand_communications, BusPolicy, Cpg, CpgBuilder, ProcessId};
use cpg_arch::{Architecture, PeId, Time};

use crate::platform::OamPlatform;

/// Communication time (ns) charged when two processes mapped to different
/// processing elements exchange data over the internal bus.
const COMM_NS: u64 = 60;
/// Communication time (ns) of the heavy data transfers of mode 3.
const HEAVY_COMM_NS: u64 = 170;
/// Time (ns) of one memory access (independent of the processor model).
const MEMORY_ACCESS_NS: u64 = 150;
/// Condition broadcast time `τ0` (ns) on the internal bus.
pub const BROADCAST_NS: u64 = 20;

/// One of the three operating modes of the OAM block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OamMode {
    /// Mode 1: cell monitoring with fork/join parallelism and parallel
    /// memory accesses (32 processes, 6 alternative paths).
    Monitoring,
    /// Mode 2: fault-management bookkeeping, a purely sequential decision
    /// chain (23 processes, 3 alternative paths).
    FaultManagement,
    /// Mode 3: performance reporting with communication-heavy parallel
    /// sections (42 processes, 8 alternative paths).
    PerformanceReporting,
}

impl OamMode {
    /// All three modes, in the order of the paper's Table 2.
    #[must_use]
    pub fn all() -> [OamMode; 3] {
        [
            OamMode::Monitoring,
            OamMode::FaultManagement,
            OamMode::PerformanceReporting,
        ]
    }

    /// The mode number used by the paper (1, 2 or 3).
    #[must_use]
    pub fn number(self) -> usize {
        match self {
            OamMode::Monitoring => 1,
            OamMode::FaultManagement => 2,
            OamMode::PerformanceReporting => 3,
        }
    }

    /// Number of processes of the published model.
    #[must_use]
    pub fn process_count(self) -> usize {
        match self {
            OamMode::Monitoring => 32,
            OamMode::FaultManagement => 23,
            OamMode::PerformanceReporting => 42,
        }
    }

    /// Number of alternative paths of the published model.
    #[must_use]
    pub fn path_count(self) -> usize {
        match self {
            OamMode::Monitoring => 6,
            OamMode::FaultManagement => 3,
            OamMode::PerformanceReporting => 8,
        }
    }
}

impl std::fmt::Display for OamMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mode {}", self.number())
    }
}

/// How the OAM processes are assigned to the processors of the platform.
///
/// The paper assigns processes "taking into consideration the potential
/// parallelism of the process graphs and the amount of communication between
/// processes"; the evaluation of this crate tries both strategies and keeps
/// the better one, which reproduces that design decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingStrategy {
    /// Map every computation process to the (fastest) first processor;
    /// memory accesses still go to the memory modules.
    SingleProcessor,
    /// Distribute parallel sections over the available processors.
    Balanced,
}

impl MappingStrategy {
    /// Both strategies.
    #[must_use]
    pub fn all() -> [MappingStrategy; 2] {
        [MappingStrategy::SingleProcessor, MappingStrategy::Balanced]
    }
}

/// Builds the conditional process graph of one OAM mode for a platform and a
/// mapping strategy. The returned graph already contains its communication
/// processes (every transfer uses the internal bus).
///
/// # Example
///
/// ```
/// use cpg::enumerate_tracks;
/// use cpg_atm::{build_mode_graph, CpuModel, MappingStrategy, OamMode, OamPlatform};
///
/// let platform = OamPlatform::new(vec![CpuModel::I486], 1);
/// let arch = platform.architecture();
/// let cpg = build_mode_graph(OamMode::FaultManagement, &platform, &arch, MappingStrategy::SingleProcessor);
/// assert_eq!(cpg.ordinary_processes().count(), 23);
/// assert_eq!(enumerate_tracks(&cpg).len(), 3);
/// ```
///
/// # Panics
///
/// Panics if `arch` was not produced by [`OamPlatform::architecture`] for the
/// same platform.
#[must_use]
pub fn build_mode_graph(
    mode: OamMode,
    platform: &OamPlatform,
    arch: &Architecture,
    strategy: MappingStrategy,
) -> Cpg {
    let mut ctx = Ctx::new(platform, arch, strategy);
    match mode {
        OamMode::Monitoring => mode1(&mut ctx),
        OamMode::FaultManagement => mode2(&mut ctx),
        OamMode::PerformanceReporting => mode3(&mut ctx),
    }
    let cpg = ctx
        .builder
        .build(arch)
        .expect("OAM mode graphs are structurally valid");
    expand_communications(&cpg, arch, BusPolicy::FirstBus).expect("OAM mode graphs expand cleanly")
}

struct Ctx<'a> {
    builder: CpgBuilder,
    platform: &'a OamPlatform,
    strategy: MappingStrategy,
    cpus: Vec<PeId>,
    memories: Vec<PeId>,
    created: usize,
    memory_round_robin: usize,
}

impl<'a> Ctx<'a> {
    fn new(platform: &'a OamPlatform, arch: &Architecture, strategy: MappingStrategy) -> Self {
        let cpus: Vec<PeId> = (0..platform.processors().len())
            .map(|i| {
                arch.pe_by_name(&format!("cpu{i}"))
                    .expect("architecture must come from OamPlatform::architecture")
            })
            .collect();
        let memories: Vec<PeId> = (0..platform.memory_modules())
            .map(|m| {
                arch.pe_by_name(&format!("mem{m}"))
                    .expect("architecture must come from OamPlatform::architecture")
            })
            .collect();
        Ctx {
            builder: CpgBuilder::new(),
            platform,
            strategy,
            cpus,
            memories,
            created: 0,
            memory_round_robin: 0,
        }
    }

    /// A computation process with a base (486) execution time, mapped
    /// according to the strategy: `lane` selects the processor of parallel
    /// sections.
    fn compute(&mut self, base_ns: u64, lane: usize) -> ProcessId {
        let cpu_index = match self.strategy {
            MappingStrategy::SingleProcessor => 0,
            MappingStrategy::Balanced => lane % self.cpus.len(),
        };
        let model = self.platform.processors()[cpu_index];
        let name = format!("op{}", self.created);
        self.created += 1;
        self.builder
            .process(name, Time::new(model.scale(base_ns)), self.cpus[cpu_index])
    }

    /// A memory-access process, mapped round-robin over the memory modules;
    /// its duration does not depend on the processor model.
    fn memory_access(&mut self) -> ProcessId {
        let module = self.memories[self.memory_round_robin % self.memories.len()];
        self.memory_round_robin += 1;
        let name = format!("mem_access{}", self.created);
        self.created += 1;
        self.builder
            .process(name, Time::new(MEMORY_ACCESS_NS), module)
    }

    fn seq(&mut self, from: ProcessId, to: ProcessId, comm_ns: u64) {
        self.builder.simple_edge(from, to, Time::new(comm_ns));
    }

    /// A sequential chain of `n` computation processes.
    fn chain(
        &mut self,
        n: usize,
        base_ns: u64,
        lane: usize,
        comm_ns: u64,
    ) -> (ProcessId, ProcessId) {
        assert!(n > 0);
        let first = self.compute(base_ns, lane);
        let mut last = first;
        for _ in 1..n {
            let next = self.compute(base_ns, lane);
            self.seq(last, next, comm_ns);
            last = next;
        }
        (first, last)
    }

    /// A chain of three processes whose middle element is a memory access.
    fn chain_with_memory(&mut self, base_ns: u64, lane: usize) -> (ProcessId, ProcessId) {
        let first = self.compute(base_ns, lane);
        let access = self.memory_access();
        let last = self.compute(base_ns, lane);
        self.seq(first, access, COMM_NS);
        self.seq(access, last, COMM_NS);
        (first, last)
    }
}

/// Mode 1 — 32 processes, 6 alternative paths, fork/join parallelism and
/// parallel memory accesses.
fn mode1(ctx: &mut Ctx<'_>) {
    // Stage 1: header classification (condition a, 2 alternatives).
    let a = ctx.builder.condition("a");
    let d1 = ctx.compute(120, 0);

    let fork1 = ctx.compute(80, 0);
    ctx.builder
        .conditional_edge(d1, fork1, a.is_true(), Time::new(COMM_NS));
    let (a1_first, a1_last) = ctx.chain_with_memory(320, 0);
    let (a2_first, a2_last) = ctx.chain_with_memory(300, 1);
    ctx.seq(fork1, a1_first, COMM_NS);
    ctx.seq(fork1, a2_first, COMM_NS);
    let gather1 = ctx.compute(90, 0);
    ctx.seq(a1_last, gather1, COMM_NS);
    ctx.seq(a2_last, gather1, COMM_NS);

    let (b_first, b_last) = ctx.chain(4, 190, 0, COMM_NS);
    ctx.builder
        .conditional_edge(d1, b_first, a.is_false(), Time::new(COMM_NS));

    let join1 = ctx.compute(80, 0);
    ctx.builder.mark_conjunction(join1);
    ctx.seq(gather1, join1, COMM_NS);
    ctx.seq(b_last, join1, COMM_NS);

    // Stage 2: cell accounting (condition b with a nested condition c,
    // 3 alternatives).
    let b = ctx.builder.condition("b");
    let c = ctx.builder.condition("c");
    let d2 = ctx.compute(120, 0);
    ctx.seq(join1, d2, COMM_NS);

    let fork2 = ctx.compute(80, 0);
    ctx.builder
        .conditional_edge(d2, fork2, b.is_true(), Time::new(COMM_NS));
    let (c1_first, c1_last) = ctx.chain_with_memory(320, 0);
    let (c2_first, c2_last) = ctx.chain_with_memory(300, 1);
    ctx.seq(fork2, c1_first, COMM_NS);
    ctx.seq(fork2, c2_first, COMM_NS);
    let gather2 = ctx.compute(90, 0);
    ctx.seq(c1_last, gather2, COMM_NS);
    ctx.seq(c2_last, gather2, COMM_NS);

    let d3 = ctx.compute(120, 0);
    ctx.builder
        .conditional_edge(d2, d3, b.is_false(), Time::new(COMM_NS));
    let (e_first, e_last) = ctx.chain(3, 200, 0, COMM_NS);
    ctx.builder
        .conditional_edge(d3, e_first, c.is_true(), Time::new(COMM_NS));
    let (f_first, f_last) = ctx.chain(2, 250, 0, COMM_NS);
    ctx.builder
        .conditional_edge(d3, f_first, c.is_false(), Time::new(COMM_NS));
    let join3 = ctx.compute(80, 0);
    ctx.builder.mark_conjunction(join3);
    ctx.seq(e_last, join3, COMM_NS);
    ctx.seq(f_last, join3, COMM_NS);

    let join2 = ctx.compute(80, 0);
    ctx.builder.mark_conjunction(join2);
    ctx.seq(gather2, join2, COMM_NS);
    ctx.seq(join3, join2, COMM_NS);

    // Final report towards the management system.
    let report = ctx.compute(100, 0);
    ctx.seq(join2, report, COMM_NS);
}

/// Mode 2 — 23 processes, 3 alternative paths, no potential parallelism.
fn mode2(ctx: &mut Ctx<'_>) {
    let a = ctx.builder.condition("a");
    let b = ctx.builder.condition("b");

    let d1 = ctx.compute(150, 0);
    let (a_first, a_last) = ctx.chain(8, 180, 0, 0);
    ctx.builder
        .conditional_edge(d1, a_first, a.is_true(), Time::new(COMM_NS));

    let d2 = ctx.compute(150, 0);
    ctx.builder
        .conditional_edge(d1, d2, a.is_false(), Time::new(COMM_NS));
    let (b_first, b_last) = ctx.chain(6, 200, 0, 0);
    ctx.builder
        .conditional_edge(d2, b_first, b.is_true(), Time::new(COMM_NS));
    let (c_first, c_last) = ctx.chain(5, 220, 0, 0);
    ctx.builder
        .conditional_edge(d2, c_first, b.is_false(), Time::new(COMM_NS));

    let inner_join = ctx.compute(100, 0);
    ctx.builder.mark_conjunction(inner_join);
    ctx.seq(b_last, inner_join, 0);
    ctx.seq(c_last, inner_join, 0);

    let outer_join = ctx.compute(100, 0);
    ctx.builder.mark_conjunction(outer_join);
    ctx.seq(a_last, outer_join, 0);
    ctx.seq(inner_join, outer_join, 0);
}

/// Mode 3 — 42 processes, 8 alternative paths, parallel sections with heavy
/// communication.
fn mode3(ctx: &mut Ctx<'_>) {
    let init = ctx.compute(100, 0);
    let mut previous = init;
    for stage in 0..3 {
        let cond = ctx.builder.condition(format!("s{stage}"));
        let d = ctx.compute(130, 0);
        ctx.seq(previous, d, COMM_NS);

        // True branch: two parallel chains with heavy data exchange.
        let fork = ctx.compute(70, 0);
        ctx.builder
            .conditional_edge(d, fork, cond.is_true(), Time::new(HEAVY_COMM_NS));
        let (p_first, p_last) = ctx.chain(3, 220, 0, HEAVY_COMM_NS);
        let (q_first, q_last) = ctx.chain(3, 220, 1, HEAVY_COMM_NS);
        ctx.seq(fork, p_first, HEAVY_COMM_NS);
        ctx.seq(fork, q_first, HEAVY_COMM_NS);
        let gather = ctx.compute(90, 0);
        ctx.seq(p_last, gather, HEAVY_COMM_NS);
        ctx.seq(q_last, gather, HEAVY_COMM_NS);

        // False branch: a sequential bookkeeping chain.
        let (r_first, r_last) = ctx.chain(3, 240, 0, COMM_NS);
        ctx.builder
            .conditional_edge(d, r_first, cond.is_false(), Time::new(COMM_NS));

        let join = ctx.compute(80, 0);
        ctx.builder.mark_conjunction(join);
        ctx.seq(gather, join, COMM_NS);
        ctx.seq(r_last, join, COMM_NS);
        previous = join;
    }
    let summarize = ctx.compute(150, 0);
    ctx.seq(previous, summarize, COMM_NS);
    let emit = ctx.compute(100, 0);
    ctx.seq(summarize, emit, COMM_NS);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CpuModel;
    use cpg::enumerate_tracks;

    fn platform_1p() -> OamPlatform {
        OamPlatform::new(vec![CpuModel::I486], 1)
    }

    fn platform_2p2m() -> OamPlatform {
        OamPlatform::new(vec![CpuModel::I486, CpuModel::I486], 2)
    }

    #[test]
    fn modes_have_the_published_process_and_path_counts() {
        for platform in [platform_1p(), platform_2p2m()] {
            let arch = platform.architecture();
            for mode in OamMode::all() {
                for strategy in MappingStrategy::all() {
                    let cpg = build_mode_graph(mode, &platform, &arch, strategy);
                    assert_eq!(
                        cpg.ordinary_processes().count(),
                        mode.process_count(),
                        "{mode} on {platform} with {strategy:?}"
                    );
                    assert_eq!(
                        enumerate_tracks(&cpg).len(),
                        mode.path_count(),
                        "{mode} on {platform} with {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn mode_metadata_matches_the_paper() {
        assert_eq!(OamMode::Monitoring.number(), 1);
        assert_eq!(OamMode::FaultManagement.process_count(), 23);
        assert_eq!(OamMode::PerformanceReporting.path_count(), 8);
        assert_eq!(OamMode::all().len(), 3);
        assert_eq!(OamMode::Monitoring.to_string(), "mode 1");
    }

    #[test]
    fn only_mode1_uses_the_memory_modules() {
        let platform = platform_2p2m();
        let arch = platform.architecture();
        let uses_memory = |mode: OamMode| {
            let cpg = build_mode_graph(mode, &platform, &arch, MappingStrategy::Balanced);
            let any = cpg.ordinary_processes().any(|p| {
                let pe = cpg.mapping(p).unwrap();
                arch.pe(pe).name().starts_with("mem")
            });
            any
        };
        assert!(uses_memory(OamMode::Monitoring));
        assert!(!uses_memory(OamMode::FaultManagement));
        assert!(!uses_memory(OamMode::PerformanceReporting));
    }

    #[test]
    fn balanced_mapping_uses_both_processors_in_parallel_modes() {
        let platform = platform_2p2m();
        let arch = platform.architecture();
        let cpg = build_mode_graph(
            OamMode::Monitoring,
            &platform,
            &arch,
            MappingStrategy::Balanced,
        );
        let cpus_used: std::collections::HashSet<_> = cpg
            .ordinary_processes()
            .map(|p| cpg.mapping(p).unwrap())
            .filter(|pe| arch.pe(*pe).name().starts_with("cpu"))
            .collect();
        assert_eq!(cpus_used.len(), 2);

        let single = build_mode_graph(
            OamMode::Monitoring,
            &platform,
            &arch,
            MappingStrategy::SingleProcessor,
        );
        let cpus_used: std::collections::HashSet<_> = single
            .ordinary_processes()
            .map(|p| single.mapping(p).unwrap())
            .filter(|pe| arch.pe(*pe).name().starts_with("cpu"))
            .collect();
        assert_eq!(cpus_used.len(), 1);
    }

    #[test]
    fn pentium_graphs_have_shorter_execution_times() {
        let slow = OamPlatform::new(vec![CpuModel::I486], 1);
        let fast = OamPlatform::new(vec![CpuModel::Pentium], 1);
        let slow_cpg = build_mode_graph(
            OamMode::FaultManagement,
            &slow,
            &slow.architecture(),
            MappingStrategy::SingleProcessor,
        );
        let fast_cpg = build_mode_graph(
            OamMode::FaultManagement,
            &fast,
            &fast.architecture(),
            MappingStrategy::SingleProcessor,
        );
        assert!(fast_cpg.total_execution_time() < slow_cpg.total_execution_time());
    }
}
