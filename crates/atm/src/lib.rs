//! Real-life example of the paper's Section 6: the operation-and-maintenance
//! (OAM) block of an ATM switch, F4 level.
//!
//! The paper models the three operating modes of the OAM block as conditional
//! process graphs, generates a schedule table for each mode and compares the
//! worst-case delays obtained on architectures with one or two processors
//! (486DX2/80 or Pentium/120) and one or two memory modules (Table 2). The
//! original VHDL process models are not public; this crate builds synthetic
//! graphs with the published characteristics (process counts, alternative
//! path counts, presence or absence of potential parallelism and of parallel
//! memory accesses) so that the architecture-exploration experiment can be
//! reproduced end to end.
//!
//! # Example
//!
//! ```
//! use cpg_atm::{evaluate, CpuModel, OamMode, OamPlatform};
//!
//! let one_486 = OamPlatform::new(vec![CpuModel::I486], 1);
//! let one_pentium = OamPlatform::new(vec![CpuModel::Pentium], 1);
//! let slow = evaluate(OamMode::FaultManagement, &one_486);
//! let fast = evaluate(OamMode::FaultManagement, &one_pentium);
//! assert!(fast.delay() < slow.delay());
//! ```

#![forbid(unsafe_code)]

mod evaluate;
mod modes;
mod platform;

pub use evaluate::{evaluate, schedule_mode, table2, OamEvaluation};
pub use modes::{build_mode_graph, MappingStrategy, OamMode, BROADCAST_NS};
pub use platform::{CpuModel, OamPlatform};
