//! Worst-case-delay evaluation of the OAM block on candidate architectures
//! (the experiment behind the paper's Table 2).

use std::fmt;

use cpg_arch::Time;
use cpg_merge::{generate_schedule_table, MergeConfig, MergeResult};

use crate::modes::{build_mode_graph, MappingStrategy, OamMode, BROADCAST_NS};
use crate::platform::OamPlatform;

/// The evaluation of one OAM mode on one platform: the schedule table is
/// generated for every candidate process mapping and the best worst-case
/// delay is kept, mirroring the paper's procedure of assigning processes to
/// processors "taking into consideration the potential parallelism … and the
/// amount of communication".
#[derive(Debug, Clone)]
pub struct OamEvaluation {
    mode: OamMode,
    platform: OamPlatform,
    best_strategy: MappingStrategy,
    best_delay: Time,
    candidates: Vec<(MappingStrategy, Time)>,
}

impl OamEvaluation {
    /// The evaluated mode.
    #[must_use]
    pub fn mode(&self) -> OamMode {
        self.mode
    }

    /// The evaluated platform.
    #[must_use]
    pub fn platform(&self) -> &OamPlatform {
        &self.platform
    }

    /// The worst-case delay of the best mapping (the value reported in
    /// Table 2).
    #[must_use]
    pub fn delay(&self) -> Time {
        self.best_delay
    }

    /// The mapping strategy that achieved the best worst-case delay.
    #[must_use]
    pub fn strategy(&self) -> MappingStrategy {
        self.best_strategy
    }

    /// The worst-case delay of every candidate mapping.
    #[must_use]
    pub fn candidates(&self) -> &[(MappingStrategy, Time)] {
        &self.candidates
    }
}

impl fmt::Display for OamEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} ns ({:?})",
            self.mode,
            self.platform.name(),
            self.best_delay,
            self.best_strategy
        )
    }
}

/// Generates the schedule table of one OAM mode on one platform for a fixed
/// mapping strategy.
#[must_use]
pub fn schedule_mode(
    mode: OamMode,
    platform: &OamPlatform,
    strategy: MappingStrategy,
) -> MergeResult {
    let arch = platform.architecture();
    let cpg = build_mode_graph(mode, platform, &arch, strategy);
    generate_schedule_table(&cpg, &arch, &MergeConfig::new(Time::new(BROADCAST_NS)))
}

/// Evaluates one OAM mode on one platform: tries every mapping strategy and
/// keeps the best worst-case delay.
#[must_use]
pub fn evaluate(mode: OamMode, platform: &OamPlatform) -> OamEvaluation {
    let strategies: Vec<MappingStrategy> = if platform.processors().len() > 1 {
        MappingStrategy::all().to_vec()
    } else {
        vec![MappingStrategy::SingleProcessor]
    };
    let mut candidates = Vec::with_capacity(strategies.len());
    for strategy in strategies {
        let result = schedule_mode(mode, platform, strategy);
        candidates.push((strategy, result.delta_max()));
    }
    let &(best_strategy, best_delay) = candidates
        .iter()
        .min_by_key(|&&(_, delay)| delay)
        .expect("at least one mapping strategy is evaluated");
    OamEvaluation {
        mode,
        platform: platform.clone(),
        best_strategy,
        best_delay,
        candidates,
    }
}

/// Evaluates every mode on every platform of the paper's Table 2 and returns
/// the rows in `(mode, platform, delay)` order.
#[must_use]
pub fn table2() -> Vec<OamEvaluation> {
    let mut rows = Vec::new();
    for mode in OamMode::all() {
        for platform in OamPlatform::paper_platforms() {
            rows.push(evaluate(mode, &platform));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CpuModel;

    fn p(cpus: Vec<CpuModel>, memories: usize) -> OamPlatform {
        OamPlatform::new(cpus, memories)
    }

    #[test]
    fn schedule_tables_of_all_modes_are_correct() {
        let platform = p(vec![CpuModel::I486, CpuModel::Pentium], 2);
        for mode in OamMode::all() {
            for strategy in MappingStrategy::all() {
                let result = schedule_mode(mode, &platform, strategy);
                let arch = platform.architecture();
                let cpg = build_mode_graph(mode, &platform, &arch, strategy);
                result.table().verify(&cpg, result.tracks()).unwrap();
                assert_eq!(result.stats().unrepaired_conflicts, 0);
            }
        }
    }

    #[test]
    fn faster_processor_always_reduces_the_delay() {
        for mode in OamMode::all() {
            for memories in [1, 2] {
                let slow = evaluate(mode, &p(vec![CpuModel::I486], memories));
                let fast = evaluate(mode, &p(vec![CpuModel::Pentium], memories));
                assert!(
                    fast.delay() < slow.delay(),
                    "{mode}: Pentium {} should beat 486 {}",
                    fast.delay(),
                    slow.delay()
                );
            }
        }
    }

    #[test]
    fn mode2_is_insensitive_to_processor_count_and_memory() {
        // Mode 2 has no potential parallelism: adding a processor or a memory
        // module never changes its delay (Table 2, row 2).
        let single = evaluate(OamMode::FaultManagement, &p(vec![CpuModel::I486], 1));
        for platform in [
            p(vec![CpuModel::I486], 2),
            p(vec![CpuModel::I486, CpuModel::I486], 1),
            p(vec![CpuModel::I486, CpuModel::I486], 2),
        ] {
            let other = evaluate(OamMode::FaultManagement, &platform);
            assert_eq!(other.delay(), single.delay(), "{}", platform.name());
        }
    }

    #[test]
    fn mode1_benefits_from_a_second_processor() {
        // Table 2, row 1: using two processors always improves mode 1.
        for cpu in [CpuModel::I486, CpuModel::Pentium] {
            let one = evaluate(OamMode::Monitoring, &p(vec![cpu], 1));
            let two = evaluate(OamMode::Monitoring, &p(vec![cpu, cpu], 1));
            assert!(
                two.delay() < one.delay(),
                "2x{cpu:?} {} should beat 1x{cpu:?} {}",
                two.delay(),
                one.delay()
            );
        }
    }

    #[test]
    fn second_processor_never_hurts() {
        // The evaluation keeps the single-processor mapping when spreading
        // work does not pay off, so adding hardware can never increase the
        // delay.
        for mode in OamMode::all() {
            for cpu in [CpuModel::I486, CpuModel::Pentium] {
                let one = evaluate(mode, &p(vec![cpu], 1));
                let two = evaluate(mode, &p(vec![cpu, cpu], 1));
                assert!(two.delay() <= one.delay(), "{mode} 2x{cpu:?}");
            }
        }
    }

    #[test]
    fn mixed_platform_is_between_the_homogeneous_ones() {
        let mode = OamMode::Monitoring;
        let slow = evaluate(mode, &p(vec![CpuModel::I486, CpuModel::I486], 1));
        let fast = evaluate(mode, &p(vec![CpuModel::Pentium, CpuModel::Pentium], 1));
        let mixed = evaluate(mode, &p(vec![CpuModel::I486, CpuModel::Pentium], 1));
        assert!(mixed.delay() <= slow.delay());
        assert!(mixed.delay() >= fast.delay());
    }

    #[test]
    fn table2_produces_thirty_rows() {
        // 3 modes x 10 platforms. This is the full experiment, so it runs the
        // merge 30+ times; keep assertions coarse.
        let rows = table2();
        assert_eq!(rows.len(), 30);
        for row in &rows {
            assert!(row.delay() > Time::ZERO);
            assert!(!row.candidates().is_empty());
        }
    }
}
