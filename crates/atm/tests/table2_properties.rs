//! Cross-cutting properties of the Table 2 reproduction that hold across the
//! whole platform space (complementing the per-finding unit tests of the
//! crate).

use cpg_atm::{evaluate, schedule_mode, CpuModel, MappingStrategy, OamMode, OamPlatform};
use cpg_sim::Simulator;

#[test]
fn mode_delays_are_ordered_like_their_workload_sizes() {
    // Mode 3 (42 processes) is the heaviest, mode 2 (23 processes, fully
    // sequential but short chains) the lightest — on every platform.
    for platform in OamPlatform::paper_platforms() {
        let mode1 = evaluate(OamMode::Monitoring, &platform).delay();
        let mode2 = evaluate(OamMode::FaultManagement, &platform).delay();
        let mode3 = evaluate(OamMode::PerformanceReporting, &platform).delay();
        assert!(mode3 > mode1, "{}", platform.name());
        assert!(mode1 > mode2, "{}", platform.name());
    }
}

#[test]
fn single_processor_platforms_always_use_the_single_processor_mapping() {
    for cpu in [CpuModel::I486, CpuModel::Pentium] {
        for memories in [1, 2] {
            let platform = OamPlatform::new(vec![cpu], memories);
            for mode in OamMode::all() {
                let evaluation = evaluate(mode, &platform);
                assert_eq!(evaluation.strategy(), MappingStrategy::SingleProcessor);
                assert_eq!(evaluation.candidates().len(), 1);
            }
        }
    }
}

#[test]
fn two_processor_platforms_consider_both_mappings() {
    let platform = OamPlatform::new(vec![CpuModel::I486, CpuModel::I486], 1);
    for mode in OamMode::all() {
        let evaluation = evaluate(mode, &platform);
        assert_eq!(evaluation.candidates().len(), 2);
        // The reported delay is the minimum over the candidates.
        let min = evaluation
            .candidates()
            .iter()
            .map(|&(_, delay)| delay)
            .min()
            .unwrap();
        assert_eq!(evaluation.delay(), min);
    }
}

#[test]
fn oam_schedule_tables_execute_cleanly_for_every_mode_and_platform() {
    // End-to-end validation of the Table 2 pipeline: the generated tables are
    // simulated for every combination of condition values on a representative
    // subset of platforms.
    let platforms = [
        OamPlatform::new(vec![CpuModel::I486], 1),
        OamPlatform::new(vec![CpuModel::Pentium, CpuModel::Pentium], 2),
        OamPlatform::new(vec![CpuModel::I486, CpuModel::Pentium], 1),
    ];
    for platform in &platforms {
        let arch = platform.architecture();
        for mode in OamMode::all() {
            for strategy in MappingStrategy::all() {
                let cpg = cpg_atm::build_mode_graph(mode, platform, &arch, strategy);
                let result = schedule_mode(mode, platform, strategy);
                let simulator = Simulator::new(
                    &cpg,
                    &arch,
                    result.table(),
                    cpg_arch::Time::new(cpg_atm::BROADCAST_NS),
                );
                for report in simulator.run_all(result.tracks()) {
                    assert!(
                        report.is_ok(),
                        "{mode} on {} ({strategy:?}): {:?}",
                        platform.name(),
                        report.violations()
                    );
                }
            }
        }
    }
}

#[test]
fn memory_modules_never_increase_any_delay() {
    for mode in OamMode::all() {
        for cpus in [
            vec![CpuModel::I486],
            vec![CpuModel::Pentium],
            vec![CpuModel::I486, CpuModel::I486],
            vec![CpuModel::Pentium, CpuModel::Pentium],
        ] {
            let one = evaluate(mode, &OamPlatform::new(cpus.clone(), 1)).delay();
            let two = evaluate(mode, &OamPlatform::new(cpus.clone(), 2)).delay();
            assert!(two <= one, "{mode} with {cpus:?}: {two} > {one}");
        }
    }
}
