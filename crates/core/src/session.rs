//! Incremental re-merge sessions: edit-scoped subtree invalidation and
//! cached-log replay over the merge stack.
//!
//! A [`MergeSession`] owns a system (graph + architecture + configuration)
//! and keeps the explored decision tree of its last merge as a cache. The
//! cache unit is the **forward chain**: the maximal run of decision-tree
//! nodes that keeps the same current schedule (a back-step selects a new
//! track and therefore starts a new chain). Per chain the session retains
//!
//! * the committed [`TxnLog`] of every placement segment (the writes between
//!   two condition resolutions, plus the content-based read set the segment
//!   observed while producing them),
//! * the per-segment work counters and traced steps, and
//! * a [`FrontierHasher`] fingerprint of the chain's track frontier (label,
//!   delay and every scheduled job of the individual optimal schedule).
//!
//! After a [`SystemEdit`] the session re-merges *incrementally*
//! ([`MergeSession::merge`]): the table is rebuilt from scratch, but a chain
//! whose track is outside the edit scope ([`SystemEdit::scope`]), whose
//! frontier hash is unchanged and whose cached logs still validate against
//! the partially rebuilt table is **replayed** — its writes are spliced into
//! the table column-wise ([`TableView::splice_log`]) without running the
//! scheduler at all. Only the invalidated region of the tree is re-walked,
//! speculatively over transactional overlays when the thread budget allows
//! (the same machinery as the cold walk). Every validation failure degrades
//! to a re-walk, never to a wrong table: the result is bit-identical to a
//! cold [`generate_schedule_table`](crate::generate_schedule_table) of the
//! edited system, for every thread count.
//!
//! Why replay is sound: a cached segment log replays the exact writes the
//! recording merge committed at that point of the serial order. Its read set
//! is validated content-wise against the table rebuilt so far, so if every
//! ancestor segment replayed or re-recorded to identical content (induction
//! over the serial order, base case: the empty table), the recorded decisions
//! are the decisions a cold walk would take and the spliced writes land
//! byte-identically — including the column creation order, which
//! [`TxnLog`] captures as write order.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use cpg::{
    enumerate_tracks, Assignment, CondId, Cpg, Cube, EditError, EditScope, FrontierHasher,
    SystemEdit, Track, TrackSet,
};
use cpg_arch::{Architecture, Time};
use cpg_path_sched::{ListScheduler, LockSet, PathSchedule, RunScratch};
use cpg_table::{ScheduleTable, TableTxn, TableView, TxnLog};

use crate::config::MergeConfig;
use crate::merge::{ContextCache, MergeShared, WalkState};
use crate::result::{MergeResult, MergeStats, MergeStep};

/// Counters describing how much of the cached decision tree the last
/// [`MergeSession::merge`] reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct ReuseStats {
    /// Forward chains replayed from their cached logs (no scheduler runs).
    pub chains_replayed: usize,
    /// Forward chains recorded by walking the decision tree.
    pub chains_recorded: usize,
    /// Placement segments spliced from cached logs.
    pub segments_replayed: usize,
    /// Placement segments recorded by running the placement phase.
    pub segments_recorded: usize,
}

/// One placement segment of a forward chain: the walk outputs produced
/// between two condition resolutions. The table effects of all segments live
/// in the chain-level [`SessionChain::log`] — replay is all-or-nothing per
/// chain, so per-segment write logs would only multiply the row bookkeeping.
struct ChainSeg {
    /// Work-counter delta of the segment.
    stats: MergeStats,
    /// Traced steps of the segment (empty unless tracing is on).
    steps: Vec<MergeStep>,
    /// Whether an adjustment inside the segment reported a slipped lock.
    saw_slip: bool,
    /// The condition resolution that ended the segment: `(condition, value
    /// on the current path, resolution time)`; `None` for the last segment
    /// of the chain (the schedule ran out).
    resolution: Option<(CondId, bool, Time)>,
}

/// A cached forward chain of the decision tree: the maximal run of nodes
/// sharing one current schedule, plus the back-step children hanging off its
/// resolutions (deepest first in walk order).
struct SessionChain {
    /// The track whose schedule is current along this chain.
    track_idx: usize,
    /// Frontier fingerprint of the track at record time (label, delay and
    /// scheduled jobs of the individual optimal schedule).
    track_hash: u64,
    /// The chain's writes and content-based reads, recorded in one
    /// transaction spanning every segment: reads are base observations at
    /// first touch (a later segment reading what an earlier one wrote hits
    /// the overlay and records nothing), so the log validates directly
    /// against the table state at the chain's serial entry point.
    log: TxnLog,
    /// The placement segments, in serial order. The last has no resolution.
    segs: Vec<ChainSeg>,
    /// Back-step subtree per resolution (`children[i]` flips the `i`-th
    /// resolution); `None` when no reachable path takes the flipped value.
    children: Vec<Option<Box<SessionChain>>>,
}

impl SessionChain {
    /// The resolutions of this chain, in forward order.
    fn resolutions(&self) -> Vec<(CondId, bool, Time)> {
        self.segs.iter().filter_map(|seg| seg.resolution).collect()
    }
}

/// How a chain is entered: at the tree root with the optimal schedule of the
/// selected track, or through a back-step that must first inherit the
/// ancestor locks from the table and adjust the newly selected schedule.
#[derive(Clone, Copy)]
enum ChainEntry {
    /// The root chain: current schedule is the optimal schedule of the
    /// selected track, no inherited locks.
    Root,
    /// A back-step entry: `condition` was flipped at `resolved_at`;
    /// `node_cube` is the tree path to the node without the flipped
    /// condition (what the traced back-step records).
    Back {
        condition: CondId,
        resolved_at: Time,
        node_cube: Cube,
    },
}

/// One back-step child prepared for speculative processing: everything the
/// child walk needs, snapshotted at its serial entry point.
struct ChildTask {
    /// Index into the parent's `children` array (the resolution it flips).
    index: usize,
    /// The track selected for the back-step.
    back_idx: usize,
    entry: ChainEntry,
    /// The decided conditions at the child's entry (ancestors plus the
    /// flipped condition).
    decided: Assignment,
    /// The cached subtree to try replaying (taken by the speculation).
    cached: Mutex<Option<Box<SessionChain>>>,
    /// Reachable-path count: the cost proxy for budget splitting.
    cost: u64,
}

/// The per-merge re-walk driver: the shared walk inputs plus the
/// invalidation state of this merge.
struct Rewalk<'a> {
    shared: &'a MergeShared<'a>,
    /// Frontier hash per track, recomputed from this merge's optimal
    /// schedules.
    track_hashes: &'a [u64],
    /// Tracks inside the scope of an edit applied since the last merge.
    dirty: &'a [bool],
    trace: bool,
    /// `false` while every chain visited so far (in serial order) replayed
    /// its cached log; flips to `true` at the first re-record. While clear,
    /// the rebuilt table is byte-identical to the recording merge's table at
    /// the current serial point (induction over the deterministic splice), so
    /// replays skip content validation entirely.
    diverged: AtomicBool,
    /// Whether to accumulate `changed`: off when no per-track delay cache
    /// exists to invalidate (the first merge and after structural edits).
    note_changes: bool,
    /// Column cubes of every table cell that may differ from the previous
    /// merge's table: the writes of re-recorded chains (old and new) and of
    /// dropped subtrees. Replayed chains splice byte-identical content and
    /// note nothing. The per-track delay cache invalidates exactly the
    /// tracks whose label is compatible with a noted column.
    changed: Mutex<Vec<Cube>>,
    reuse: Mutex<ReuseStats>,
}

impl Rewalk<'_> {
    /// Notes the columns a write log touches (cells added, replaced or
    /// dropped versus the previous merge's table). Over-approximation is
    /// sound — discarded speculative writes may be noted too.
    fn note_changed_log(&self, log: &TxnLog) {
        if !self.note_changes {
            return;
        }
        let mut changed = self.changed.lock().expect("changed columns poisoned");
        changed.extend(log.written_columns());
    }

    /// Notes every column a dropped subtree wrote: its cells were in the
    /// previous merge's table and are absent from the rebuilt one (until a
    /// re-record happens to restore them — which notes its own columns).
    fn note_changed_chain(&self, chain: &SessionChain) {
        if !self.note_changes {
            return;
        }
        self.note_changed_log(&chain.log);
        for child in chain.children.iter().flatten() {
            self.note_changed_chain(child);
        }
    }

    /// Replays a cached chain if it is still valid at this position,
    /// otherwise records a fresh one. `decided` must be at the chain's entry
    /// state and is returned to it.
    #[allow(clippy::too_many_arguments)]
    fn visit_chain<V: TableView + Sync>(
        &self,
        st: &mut WalkState,
        view: &mut V,
        budget: usize,
        direct: bool,
        cached: Option<Box<SessionChain>>,
        entry: ChainEntry,
        track_idx: usize,
        decided: &mut Assignment,
    ) -> Box<SessionChain> {
        let mut stale = None;
        if let Some(mut chain) = cached {
            if chain.track_idx == track_idx
                && self.replay_chain(st, view, budget, direct, &mut chain, decided)
            {
                return chain;
            }
            stale = Some(chain);
        }
        self.record_chain(st, view, budget, direct, stale, entry, track_idx, decided)
    }

    /// Walks one forward chain, recording every placement segment as a
    /// transactional log committed (column-spliced) into `view`, then
    /// processes the back-step children deepest-first — exactly the serial
    /// walk's order and decisions.
    #[allow(clippy::too_many_arguments)]
    fn record_chain<V: TableView + Sync>(
        &self,
        st: &mut WalkState,
        view: &mut V,
        budget: usize,
        direct: bool,
        stale: Option<Box<SessionChain>>,
        entry: ChainEntry,
        track_idx: usize,
        decided: &mut Assignment,
    ) -> Box<SessionChain> {
        // From this serial point on, the rebuilt table may differ from the
        // recording merge's: every later replay must validate its reads.
        self.diverged.store(true, Ordering::Relaxed);
        if let Some(stale) = &stale {
            // The stale chain's own cells are about to be replaced; its
            // cached subtrees are re-seeded below and note themselves if
            // they end up dropped or re-recorded.
            self.note_changed_log(&stale.log);
        }
        let shared = self.shared;
        let mut segs: Vec<ChainSeg> = Vec::new();

        let mut schedule = match entry {
            ChainEntry::Root => shared.optimal[track_idx].clone(),
            ChainEntry::Back { .. } => st.schedule_pool.pop().unwrap_or_default(),
        };
        let mut fixed = st
            .lock_pool
            .pop()
            .unwrap_or_else(|| LockSet::for_graph(shared.cpg));
        fixed.clear();

        // One transaction spans the whole chain: later segments read earlier
        // segments' writes through the overlay (recording no base dependency
        // on them), so the detached log validates — and splices — against the
        // table exactly as the per-segment serial commits would, while the
        // row bookkeeping is paid once per chain instead of once per segment.
        let log = {
            let frozen: &(dyn TableView + Sync) = &*view;
            let mut txn = TableTxn::new(frozen);
            let mut first = true;
            loop {
                let stats_before = st.stats;
                let steps_before = st.steps.len();
                let slip_outer = st.saw_slip;
                st.saw_slip = false;
                // Depth reached by this segment's own node bookkeeping.
                // Depths are absolute (decided conditions at the node), so
                // caching the per-segment maximum — instead of the delta the
                // counter subtraction below would give — lets a replay absorb
                // it by `max` in any order and still reconstruct the cold
                // walk's value exactly.
                let mut seg_depth = 0;

                if first {
                    first = false;
                    if let ChainEntry::Back {
                        condition,
                        resolved_at,
                        node_cube,
                    } = entry
                    {
                        // The back-step bookkeeping belongs to the first
                        // segment: the inherited locks and the adjustment read
                        // the table, so replaying the chain revalidates them.
                        shared
                            .locks_from_table_into(&txn, &mut fixed, track_idx, decided, condition);
                        shared.adjust_into(
                            st,
                            &mut txn,
                            track_idx,
                            &mut fixed,
                            decided,
                            &mut schedule,
                        );
                        // `decided` already carries the flipped condition
                        // (depth = length).
                        st.stats.tree_nodes += 1;
                        seg_depth = seg_depth.max(decided.len());
                        st.stats.adjustments += 1;
                        if self.trace {
                            st.steps.push(MergeStep {
                                decided: node_cube,
                                condition,
                                resolved_at,
                                current_path: shared.tracks.tracks()[track_idx].label(),
                                back_step: true,
                            });
                        }
                    }
                }

                let next =
                    shared.place_phase(st, &mut txn, track_idx, &mut schedule, decided, &mut fixed);

                // The forward-node bookkeeping belongs to the segment that
                // resolved the condition (it precedes the next segment in the
                // serial order).
                let resolution = next.map(|(condition, resolved_at)| {
                    let label = shared.tracks.tracks()[track_idx].label();
                    let value = label
                        .polarity_of(condition)
                        .expect("a condition resolved on a path appears in its label");
                    // The resolved condition is assigned below, after the
                    // segment closes (depth = length + 1).
                    st.stats.tree_nodes += 1;
                    seg_depth = seg_depth.max(decided.len() + 1);
                    if self.trace {
                        st.steps.push(MergeStep {
                            decided: decided.to_cube(),
                            condition,
                            resolved_at,
                            current_path: label,
                            back_step: false,
                        });
                    }
                    (condition, value, resolved_at)
                });

                st.stats.max_walk_depth = st.stats.max_walk_depth.max(seg_depth);
                let mut seg_stats = stats_delta(stats_before, st.stats);
                // Replace the meaningless max-delta with the segment's own
                // absolute maximum (see `seg_depth` above).
                seg_stats.max_walk_depth = seg_depth;
                segs.push(ChainSeg {
                    stats: seg_stats,
                    steps: st.steps[steps_before..].to_vec(),
                    saw_slip: st.saw_slip,
                    resolution,
                });
                st.saw_slip |= slip_outer;

                match resolution {
                    Some((condition, value, _)) => decided.assign(condition, value),
                    None => break,
                }
            }
            txn.into_log()
        };
        view.splice_log(&log);
        self.note_changed_log(&log);
        st.schedule_pool.push(schedule);
        st.lock_pool.push(fixed);

        {
            let mut reuse = self.reuse.lock().expect("reuse counters poisoned");
            reuse.chains_recorded += 1;
            reuse.segments_recorded += segs.len();
        }

        let resolutions: Vec<(CondId, bool, Time)> =
            segs.iter().filter_map(|seg| seg.resolution).collect();
        let mut children: Vec<Option<Box<SessionChain>>> = Vec::new();
        children.resize_with(resolutions.len(), || None);
        // A re-recorded chain does not orphan its cached subtrees: wherever
        // the fresh chain resolves the same condition to the same value at
        // the same position, the stale chain's child sits at the same
        // decision node and stays a replay candidate (it re-validates on its
        // own when visited).
        if let Some(stale) = stale {
            let stale_resolutions = stale.resolutions();
            for (i, child) in stale.children.into_iter().enumerate() {
                let matched = matches!(
                    (resolutions.get(i), stale_resolutions.get(i)),
                    (Some(new), Some(old)) if (new.0, new.1) == (old.0, old.1)
                );
                match child {
                    Some(child) if matched => children[i] = Some(child),
                    // The subtree hangs off a resolution the fresh chain no
                    // longer makes: its cells are gone from the table.
                    Some(child) => self.note_changed_chain(&child),
                    None => {}
                }
            }
        }
        self.process_children(
            st,
            view,
            budget,
            direct,
            &resolutions,
            &mut children,
            decided,
        );

        Box::new(SessionChain {
            track_idx,
            track_hash: self.track_hashes[track_idx],
            log,
            segs,
            children,
        })
    }

    /// Replays a cached chain: validates and splices its segment logs, then
    /// recurses into the children. Returns `false` — leaving `view`, `st`
    /// and `decided` untouched — when the chain's track is dirty, its
    /// frontier hash changed, or any cached read no longer matches the
    /// rebuilt table.
    fn replay_chain<V: TableView + Sync>(
        &self,
        st: &mut WalkState,
        view: &mut V,
        budget: usize,
        direct: bool,
        chain: &mut SessionChain,
        decided: &mut Assignment,
    ) -> bool {
        let idx = chain.track_idx;
        if self.dirty[idx] || self.track_hashes[idx] != chain.track_hash {
            return false;
        }
        let resolutions = chain.resolutions();
        if chain.children.len() != resolutions.len() {
            return false;
        }
        if direct && !self.diverged.load(Ordering::Relaxed) {
            // Serial-order fast path: no chain before this one (in serial
            // order) re-recorded, so the rebuilt table is byte-identical to
            // the recording merge's table at this point and every cached read
            // would validate by construction — the log splices straight into
            // the table, no validation, no fingerprinting. Only taken on the
            // live table: a speculative overlay must keep recording read
            // dependencies for its own commit-time validation.
            view.splice_log(&chain.log);
        } else {
            // The chain log's reads are base observations at the chain's
            // serial entry point, so it validates directly against the
            // rebuilt table. A failed validation leaves the table untouched
            // and the caller re-records from the chain's entry state.
            let valid = chain.log.validate(&*view);
            // Mutation self-test hook: splice the stale cached chain anyway.
            // The warm-vs-cold oracle must flag the diverging re-merge
            // (tests/adversarial_corpus.rs).
            #[cfg(any(test, feature = "test-util"))]
            let valid = valid || crate::merge::sabotage::skip_splice_validation();
            if !valid {
                return false;
            }
            view.splice_log(&chain.log);
        }
        for seg in &chain.segs {
            st.stats.absorb(seg.stats);
            st.saw_slip |= seg.saw_slip;
            if self.trace {
                st.steps.extend(seg.steps.iter().cloned());
            }
        }
        {
            let mut reuse = self.reuse.lock().expect("reuse counters poisoned");
            reuse.chains_replayed += 1;
            reuse.segments_replayed += chain.segs.len();
        }

        for &(condition, value, _) in &resolutions {
            decided.assign(condition, value);
        }
        let mut children = std::mem::take(&mut chain.children);
        self.process_children(
            st,
            view,
            budget,
            direct,
            &resolutions,
            &mut children,
            decided,
        );
        chain.children = children;
        true
    }

    /// Processes the back-step children of a chain deepest-first (the serial
    /// walk's order), replaying cached subtrees where possible. `decided`
    /// must carry every resolution of the chain (forward values) and is
    /// returned to the chain's entry state.
    #[allow(clippy::too_many_arguments)]
    fn process_children<V: TableView + Sync>(
        &self,
        st: &mut WalkState,
        view: &mut V,
        budget: usize,
        direct: bool,
        resolutions: &[(CondId, bool, Time)],
        children: &mut [Option<Box<SessionChain>>],
        decided: &mut Assignment,
    ) {
        debug_assert_eq!(resolutions.len(), children.len());
        if budget > 1 && resolutions.len() > 1 {
            self.process_children_spec(st, view, budget, direct, resolutions, children, decided);
            return;
        }
        for i in (0..resolutions.len()).rev() {
            let (condition, value, resolved_at) = resolutions[i];
            decided.unassign(condition);
            let node_cube = decided.to_cube();
            decided.assign(condition, !value);
            match self.shared.select_track(decided) {
                Some(back_idx) => {
                    let cached = children[i].take();
                    let entry = ChainEntry::Back {
                        condition,
                        resolved_at,
                        node_cube,
                    };
                    children[i] =
                        Some(self.visit_chain(
                            st, view, budget, direct, cached, entry, back_idx, decided,
                        ));
                }
                None => {
                    // No reachable path takes the flipped value: a cached
                    // subtree here is dead and its cells leave the table.
                    if let Some(old) = children[i].take() {
                        self.note_changed_chain(&old);
                    }
                }
            }
            decided.unassign(condition);
        }
    }

    /// The speculative variant of [`process_children`](Self::process_children):
    /// every child replays-or-records over its own transactional overlay of
    /// the frozen table, concurrently; the logs then commit in serial
    /// (deepest-first) order, each only after validation proves it read
    /// nothing an earlier sibling changed. A failed speculation is dropped
    /// wholesale and the child re-runs against the live table — so the
    /// result is bit-identical to the serial order for every budget.
    #[allow(clippy::too_many_arguments)]
    fn process_children_spec<V: TableView + Sync>(
        &self,
        st: &mut WalkState,
        view: &mut V,
        budget: usize,
        direct: bool,
        resolutions: &[(CondId, bool, Time)],
        children: &mut [Option<Box<SessionChain>>],
        decided: &mut Assignment,
    ) {
        // Snapshot each child's entry state, deepest-first (= serial order).
        let mut tasks: Vec<ChildTask> = Vec::new();
        for i in (0..resolutions.len()).rev() {
            let (condition, value, resolved_at) = resolutions[i];
            decided.unassign(condition);
            let node_cube = decided.to_cube();
            decided.assign(condition, !value);
            if let Some(back_idx) = self.shared.select_track(decided) {
                tasks.push(ChildTask {
                    index: i,
                    back_idx,
                    entry: ChainEntry::Back {
                        condition,
                        resolved_at,
                        node_cube,
                    },
                    decided: decided.clone(),
                    cached: Mutex::new(children[i].take()),
                    cost: self.shared.reachable_count(decided) as u64,
                });
            } else {
                // No reachable path takes the flipped value: a cached
                // subtree here is dead and its cells leave the table.
                if let Some(old) = children[i].take() {
                    self.note_changed_chain(&old);
                }
            }
            decided.unassign(condition);
        }
        if tasks.len() <= 1 {
            // Nothing to overlap: run the lone child (if any) directly
            // against the live table with the full budget.
            for task in tasks {
                let mut child_decided = task.decided;
                let cached = task.cached.into_inner().expect("child cache poisoned");
                children[task.index] = Some(self.visit_chain(
                    st,
                    view,
                    budget,
                    direct,
                    cached,
                    task.entry,
                    task.back_idx,
                    &mut child_decided,
                ));
            }
            return;
        }

        // Speculate: each child over its own overlay of the frozen table,
        // with a fresh walk state and its snapshotted entry assignment. The
        // transactions detach into owned logs inside the task, so the frozen
        // borrow ends with the fan-out.
        let specs: Vec<(TxnLog, WalkState, Box<SessionChain>)> = {
            let frozen: &(dyn TableView + Sync) = &*view;
            fj::map_with_cost(
                budget,
                &tasks,
                |_, task| task.cost,
                || (),
                |(), _, task| {
                    let mut txn = TableTxn::new(frozen);
                    let mut child_state = WalkState::new();
                    let mut child_decided = task.decided.clone();
                    let cached = task.cached.lock().expect("child cache poisoned").take();
                    // Speculative overlays never take the serial fast path:
                    // their commit-time validation needs the read
                    // dependencies the overlay records.
                    let chain = self.visit_chain(
                        &mut child_state,
                        &mut txn,
                        1,
                        false,
                        cached,
                        task.entry,
                        task.back_idx,
                        &mut child_decided,
                    );
                    (txn.into_log(), child_state, chain)
                },
            )
        };

        // Commit in serial order; a stale speculation re-runs live.
        for (task, (log, child_state, chain)) in tasks.iter().zip(specs) {
            if log.validate(view) {
                view.splice_log(&log);
                st.absorb_output(child_state);
                children[task.index] = Some(chain);
            } else {
                st.spec_discards += 1;
                drop(child_state);
                // The speculation consumed the cached subtree: wherever its
                // output replayed the cache, the dropped writes are last
                // merge's cells, gone until the live re-record lands.
                self.note_changed_chain(&chain);
                drop(chain);
                // The speculation consumed the cached subtree; record from
                // scratch (its children were speculative output, not cache).
                let mut child_decided = task.decided.clone();
                children[task.index] = Some(self.record_chain(
                    st,
                    view,
                    budget,
                    direct,
                    None,
                    task.entry,
                    task.back_idx,
                    &mut child_decided,
                ));
            }
        }
    }
}

/// Field-wise difference of two counter snapshots (`after - before`).
///
/// Meaningful for the summable counters only: `max_walk_depth` is a running
/// maximum, so [`record_chain`](Rewalk::record_chain) overwrites it with the
/// segment's absolute maximum after taking the delta.
fn stats_delta(before: MergeStats, after: MergeStats) -> MergeStats {
    MergeStats {
        tree_nodes: after.tree_nodes - before.tree_nodes,
        adjustments: after.adjustments - before.adjustments,
        conflicts_repaired: after.conflicts_repaired - before.conflicts_repaired,
        unrepaired_conflicts: after.unrepaired_conflicts - before.unrepaired_conflicts,
        slip_repairs: after.slip_repairs - before.slip_repairs,
        lock_slips: after.lock_slips - before.lock_slips,
        max_walk_depth: after.max_walk_depth - before.max_walk_depth,
        repair_rounds: after.repair_rounds - before.repair_rounds,
    }
}

/// Frontier fingerprint of a track: its label plus the complete individual
/// optimal schedule (job, start, end and resource of every scheduled job,
/// and the condition resolutions). Start/end pairs pin the execution times
/// of every process on the track and the resources pin the mapping, so an
/// unchanged hash means the chain's own scheduling inputs are unchanged.
fn track_hash(track: &Track, optimal: &PathSchedule) -> u64 {
    let mut h = FrontierHasher::new();
    track.label().hash(&mut h);
    optimal.delay().hash(&mut h);
    for sj in optimal.jobs() {
        sj.job().hash(&mut h);
        sj.start().hash(&mut h);
        sj.end().hash(&mut h);
        sj.pe().hash(&mut h);
    }
    for &(condition, time) in optimal.resolutions() {
        condition.hash(&mut h);
        time.hash(&mut h);
    }
    h.finish()
}

/// A persistent, incrementally re-mergeable scheduling session.
///
/// The session owns a copy of the system and caches the decision tree its
/// last merge explored. [`apply_edit`](Self::apply_edit) mutates the system
/// and marks the alternative paths inside the edit's scope; the next
/// [`merge`](Self::merge) replays every cached subtree the edit provably
/// cannot affect (validating its recorded reads against the rebuilt table)
/// and re-walks only the invalidated region. The produced [`MergeResult`]
/// is bit-identical to a cold merge of the edited system for every thread
/// count.
///
/// # Example
///
/// ```
/// use cpg_arch::Time;
/// use cpg::{examples, SystemEdit};
/// use cpg_merge::{generate_schedule_table, MergeConfig, MergeSession};
///
/// let system = examples::fig1();
/// let config = MergeConfig::new(system.broadcast_time()).with_threads(1);
/// let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
/// let first = session.merge();
///
/// // Tweak one worst-case execution time and re-merge incrementally.
/// let p = system.cpg().ordinary_processes().next().unwrap();
/// session
///     .apply_edit(&SystemEdit::ExecTime { process: p, time: Time::new(9) })
///     .unwrap();
/// let warm = session.merge();
///
/// // The warm result is identical to a cold merge of the edited system.
/// let mut edited = system.cpg().clone();
/// edited.set_exec_time(p, Time::new(9)).unwrap();
/// let cold = generate_schedule_table(&edited, system.arch(), &config);
/// assert_eq!(warm.table(), cold.table());
/// assert_eq!(warm.delta_max(), cold.delta_max());
/// assert!(first.delta_max() >= first.delta_m());
/// ```
pub struct MergeSession {
    cpg: Cpg,
    arch: Architecture,
    config: MergeConfig,
    tracks: TrackSet,
    /// Tracks inside the scope of an edit applied since the last merge.
    dirty: Vec<bool>,
    /// A structural (guard) edit invalidates the whole cache and the track
    /// enumeration itself.
    structural: bool,
    /// The cached decision tree of the last merge (`None` before the first).
    root: Option<Box<SessionChain>>,
    /// Per-track optimal schedules of the last merge, aligned with `tracks`
    /// (empty before the first merge). A clean track's individual schedule
    /// depends only on its own jobs' execution times and mappings — which the
    /// dirty set covers by construction — so a re-merge re-schedules dirty
    /// tracks only.
    optimal: Vec<PathSchedule>,
    /// Frontier hashes aligned with `optimal`.
    track_hashes: Vec<u64>,
    /// Cached residual (realizability-sweep) replays, aligned with `tracks`:
    /// per track, the fingerprint of the final tabled locks the replay was
    /// computed under, plus the realized schedule. A replay depends only on
    /// the track's optimal schedule and those locks, so a clean track with an
    /// unchanged lock fingerprint reuses it without running the scheduler.
    realized: Vec<Option<(u64, PathSchedule)>>,
    /// Per-track worst-case delays of the last merge's table, aligned with
    /// `tracks` (empty before the first merge). A track's delay reads only
    /// the table cells whose column is compatible with its label, plus the
    /// execution times of its own processes — so a clean track with no
    /// compatible changed column reuses the cached value and `delta_max`
    /// costs nothing on a pure replay.
    track_delays: Vec<Time>,
    /// Reuse counters of the last merge.
    reuse: ReuseStats,
}

impl MergeSession {
    /// Creates a session for the given system. The graph must already
    /// contain its communication processes (see
    /// [`cpg::expand_communications`]); the session clones the inputs so
    /// later edits do not alias the caller's graph.
    #[must_use]
    pub fn new(cpg: &Cpg, arch: &Architecture, config: &MergeConfig) -> Self {
        let tracks = enumerate_tracks(cpg);
        let num_tracks = tracks.len();
        MergeSession {
            cpg: cpg.clone(),
            arch: arch.clone(),
            config: *config,
            tracks,
            dirty: vec![false; num_tracks],
            structural: false,
            root: None,
            optimal: Vec::new(),
            track_hashes: Vec::new(),
            realized: Vec::new(),
            track_delays: Vec::new(),
            reuse: ReuseStats::default(),
        }
    }

    /// The session's current (edited) graph.
    #[must_use]
    pub fn cpg(&self) -> &Cpg {
        &self.cpg
    }

    /// The target architecture.
    #[must_use]
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The merge configuration the session was created with.
    #[must_use]
    pub fn config(&self) -> &MergeConfig {
        &self.config
    }

    /// The alternative paths of the current graph.
    #[must_use]
    pub fn tracks(&self) -> &TrackSet {
        &self.tracks
    }

    /// How much of the cached decision tree the last [`merge`](Self::merge)
    /// reused. All zeros before the first merge.
    #[must_use]
    pub fn reuse_stats(&self) -> ReuseStats {
        self.reuse
    }

    /// Applies an edit to the session's graph and widens the invalidation
    /// scope of the next [`merge`](Self::merge) accordingly. Returns the
    /// edit's scope.
    ///
    /// # Errors
    ///
    /// Returns an error when the edit cannot be applied (unknown process,
    /// dummy source/sink, unmapped process); the session is unchanged then.
    pub fn apply_edit(&mut self, edit: &SystemEdit) -> Result<EditScope, EditError> {
        // Scope against the pre-edit graph (the guard consulted for
        // WCET/mapping scoping is not changed by those edits).
        let scope = edit.scope(&self.cpg, &self.tracks);
        edit.apply(&mut self.cpg)?;
        match &scope {
            EditScope::Structural => self.structural = true,
            EditScope::Tracks(affected) => {
                for &idx in affected {
                    self.dirty[idx] = true;
                }
            }
        }
        Ok(scope)
    }

    /// Drops the cached decision tree, schedules and residual replays: the
    /// next [`merge`](Self::merge) is a full cold walk.
    pub fn invalidate_all(&mut self) {
        self.root = None;
        self.optimal.clear();
        self.track_hashes.clear();
        self.realized.clear();
        self.track_delays.clear();
    }

    /// Re-merges the (possibly edited) system, replaying every cached
    /// decision subtree the edits since the last merge provably cannot
    /// affect. The result is bit-identical to
    /// [`generate_schedule_table`](crate::generate_schedule_table) on the
    /// current graph, for every thread count.
    pub fn merge(&mut self) -> MergeResult {
        if self.structural {
            // A guard edit may have changed the set of alternative paths:
            // nothing survives.
            self.tracks = enumerate_tracks(&self.cpg);
            self.root = None;
            self.optimal.clear();
            self.track_hashes.clear();
            self.realized.clear();
            self.track_delays.clear();
            self.structural = false;
            self.dirty = vec![false; self.tracks.len()];
        }
        let dirty = std::mem::take(&mut self.dirty);
        let cached_root = self.root.take();
        // A dirty track's optimal schedule is about to change, so any cached
        // residual replay of it is stale — even if this merge ends up never
        // running the realizability sweep.
        if self.realized.len() == self.tracks.len() {
            for (idx, is_dirty) in dirty.iter().enumerate() {
                if *is_dirty {
                    self.realized[idx] = None;
                }
            }
        } else {
            self.realized = vec![None; self.tracks.len()];
        }

        let threads = self.config.effective_threads();
        let scheduler = ListScheduler::new(&self.cpg, &self.arch, self.config.broadcast_time());
        // Contexts are built lazily: a warm merge only needs them for the
        // tracks it re-schedules, re-walks or re-sweeps; a merge that replays
        // everything needs none at all. (The cold path eagerly prefills the
        // same cache inside its parallel fan-out.)
        let contexts = ContextCache::new(scheduler, &self.tracks);
        // Optimal schedules are the scheduling inputs the frontier hashes
        // fingerprint; a clean track's schedule cannot have changed, so only
        // the dirty tracks are re-run. The first merge (and the one after a
        // structural edit) rebuilds every track through the same parallel
        // fan-out as the cold path.
        let (optimal, track_hashes) = if self.optimal.len() == self.tracks.len() {
            let mut optimal = std::mem::take(&mut self.optimal);
            let mut hashes = std::mem::take(&mut self.track_hashes);
            let mut scratch = RunScratch::new();
            for (idx, track) in self.tracks.tracks().iter().enumerate() {
                if dirty[idx] {
                    optimal[idx] = contexts.get(idx).schedule_with(&mut scratch);
                    hashes[idx] = track_hash(track, &optimal[idx]);
                }
            }
            (optimal, hashes)
        } else {
            let optimal: Vec<PathSchedule> = fj::map_with(
                threads,
                self.tracks.tracks(),
                RunScratch::new,
                |scratch, idx, _| contexts.get(idx).schedule_with(scratch),
            );
            let hashes = self
                .tracks
                .tracks()
                .iter()
                .zip(&optimal)
                .map(|(track, schedule)| track_hash(track, schedule))
                .collect();
            (optimal, hashes)
        };
        let delta_m = optimal
            .iter()
            .map(PathSchedule::delay)
            .max()
            .unwrap_or(Time::ZERO);

        let shared = MergeShared {
            cpg: &self.cpg,
            config: &self.config,
            threads,
            contexts: &contexts,
            tracks: &self.tracks,
            optimal: &optimal,
        };
        let have_delays = self.track_delays.len() == self.tracks.len();
        let rewalk = Rewalk {
            shared: &shared,
            track_hashes: &track_hashes,
            dirty: &dirty,
            trace: self.config.trace(),
            diverged: AtomicBool::new(false),
            note_changes: have_delays,
            changed: Mutex::new(Vec::new()),
            reuse: Mutex::new(ReuseStats::default()),
        };

        let mut state = WalkState::new();
        let mut table = ScheduleTable::new();
        let mut decided = Assignment::new();
        let root_idx = shared
            .select_track(&decided)
            .expect("a valid graph has at least one alternative path");
        let new_root = rewalk.visit_chain(
            &mut state,
            &mut table,
            threads,
            true,
            cached_root,
            ChainEntry::Root,
            root_idx,
            &mut decided,
        );

        let mut stats = state.stats;
        // Same sweep condition as the cold path: any back-step adjustment
        // may have published entries into columns applicable to tracks that
        // were never rescheduled against the final lock set, so observing no
        // walk-time slip does not prove the table realizable. (And the same
        // slip-repair mutant bypass — see `merge`.)
        #[allow(unused_mut)]
        let mut run_sweep = state.saw_slip || stats.adjustments > 0;
        #[cfg(any(test, feature = "test-util"))]
        {
            run_sweep = run_sweep && !crate::merge::sabotage::skip_slip_repair();
        }
        let realized = if run_sweep {
            // Same realizability sweep as the cold path
            // ([`MergeShared::residual_replays`]), with a per-track replay
            // cache: the replay is a function of the track's optimal schedule
            // and its final tabled locks, so a clean track whose lock
            // fingerprint is unchanged reuses the cached schedule instead of
            // re-running the scheduler. (Dirty tracks had their cache entry
            // cleared above.)
            let cached = std::mem::take(&mut self.realized);
            let replays: Vec<(u64, PathSchedule)> = fj::map_with(
                threads,
                self.tracks.tracks(),
                RunScratch::new,
                |scratch, idx, track| {
                    let assignment = Assignment::from_cube(&track.label());
                    let mut locks = LockSet::for_graph(&self.cpg);
                    let mut h = FrontierHasher::new();
                    for job in shared.track_jobs(track) {
                        if let Some(time) = table.activation_time(job, &assignment) {
                            let pe = table.activation_resource(job, &assignment);
                            job.hash(&mut h);
                            time.hash(&mut h);
                            pe.hash(&mut h);
                            locks.insert_pinned(job, time, pe);
                        }
                    }
                    let fingerprint = h.finish();
                    if let Some((fp, schedule)) = &cached[idx] {
                        if *fp == fingerprint {
                            return (fingerprint, schedule.clone());
                        }
                    }
                    let replay = contexts
                        .get(idx)
                        .reschedule_with(scratch, &optimal[idx], &locks);
                    (fingerprint, replay)
                },
            );
            stats.lock_slips = replays
                .iter()
                .map(|(_, replay)| replay.slipped_locks().len())
                .sum();
            self.realized = replays
                .iter()
                .map(|(fp, schedule)| Some((*fp, schedule.clone())))
                .collect();
            Some(
                replays
                    .into_iter()
                    .map(|(_, schedule)| schedule)
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };
        // `worst_case_delay` decomposes as a max of per-track delays, and a
        // track's delay reads only the cells in columns compatible with its
        // label plus the execution times of its own processes (guard-implied
        // by the label, so the dirty set covers every edit to them). The
        // re-walk noted the column of every cell that may differ from the
        // previous table; clean tracks with no compatible changed column
        // keep last merge's value.
        let cached_delays = std::mem::take(&mut self.track_delays);
        let mut changed_columns =
            std::mem::take(&mut *rewalk.changed.lock().expect("changed columns poisoned"));
        changed_columns.sort_unstable();
        changed_columns.dedup();
        // Union masks over the changed columns: when nothing in the changed
        // set can exclude a label (the same aggregate test the table's
        // partition index uses per row), `any(compatible)` is simply
        // non-emptiness and the per-track scan is skipped; only labels some
        // changed column *can* exclude fall back to the linear test.
        let (mut changed_pos, mut changed_neg) = (0u64, 0u64);
        for col in &changed_columns {
            changed_pos |= col.positive_mask();
            changed_neg |= col.negative_mask();
        }
        let any_changed_compatible = |label: &Cube| {
            if changed_columns.is_empty() {
                return false;
            }
            if label.positive_mask() & changed_neg == 0 && label.negative_mask() & changed_pos == 0
            {
                return true;
            }
            changed_columns.iter().any(|col| col.compatible(label))
        };
        self.track_delays = self
            .tracks
            .tracks()
            .iter()
            .enumerate()
            .map(|(idx, track)| {
                let label = track.label();
                if have_delays && !dirty[idx] && !any_changed_compatible(&label) {
                    cached_delays[idx]
                } else {
                    table.track_delay(&self.cpg, &label)
                }
            })
            .collect();
        let delta_max = self
            .track_delays
            .iter()
            .copied()
            .max()
            .unwrap_or(Time::ZERO);

        self.reuse = rewalk.reuse.into_inner().expect("reuse counters poisoned");
        self.root = Some(new_root);
        self.dirty = vec![false; self.tracks.len()];
        self.optimal = optimal;
        self.track_hashes = track_hashes;

        MergeResult {
            table,
            tracks: self.tracks.clone(),
            path_schedules: match realized {
                Some(replays) => replays,
                None => self.optimal.clone(),
            },
            delta_m,
            delta_max,
            steps: state.steps,
            stats,
            spec_discards: state.spec_discards,
        }
    }

    /// Variant of [`MergeSession::new`] that validates the system first and
    /// returns a typed [`MergeError`](crate::MergeError) instead of hitting
    /// an index panic on the first merge of a pathological input (see
    /// [`validate_system`](crate::validate_system) for the checks).
    pub fn try_new(
        cpg: &Cpg,
        arch: &Architecture,
        config: &MergeConfig,
    ) -> Result<Self, crate::MergeError> {
        // Same entry-validation mutant bypass as
        // [`try_generate_schedule_table`](crate::try_generate_schedule_table).
        #[cfg(any(test, feature = "test-util"))]
        let checked = !crate::merge::sabotage::skip_entry_validation();
        #[cfg(not(any(test, feature = "test-util")))]
        let checked = true;
        if checked {
            crate::error::validate_system(cpg, arch)?;
        }
        Ok(MergeSession::new(cpg, arch, config))
    }

    /// Variant of [`merge`](Self::merge) that re-validates the (edited)
    /// system before walking. [`apply_edit`](Self::apply_edit) keeps a
    /// well-formed system well-formed, but a session built with
    /// [`MergeSession::new`] on unvalidated input — or one whose
    /// architecture the caller constructed smaller than the graph's mappings
    /// — fails here with a typed error instead of panicking mid-walk.
    pub fn try_merge(&mut self) -> Result<MergeResult, crate::MergeError> {
        crate::error::validate_system(&self.cpg, &self.arch)?;
        Ok(self.merge())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_schedule_table;
    use cpg::examples;
    use cpg::Guard;

    fn assert_identical(a: &MergeResult, b: &MergeResult, context: &str) {
        assert_eq!(a.table(), b.table(), "table diverged ({context})");
        assert_eq!(a.tracks(), b.tracks(), "tracks diverged ({context})");
        assert_eq!(
            a.path_schedules(),
            b.path_schedules(),
            "path schedules diverged ({context})"
        );
        assert_eq!(a.delta_m(), b.delta_m(), "delta_m diverged ({context})");
        assert_eq!(
            a.delta_max(),
            b.delta_max(),
            "delta_max diverged ({context})"
        );
        assert_eq!(a.steps(), b.steps(), "steps diverged ({context})");
        assert_eq!(a.stats(), b.stats(), "stats diverged ({context})");
    }

    #[test]
    fn cold_session_merge_matches_the_production_walk() {
        let system = examples::fig1();
        let config = MergeConfig::new(system.broadcast_time())
            .with_threads(1)
            .with_trace(true);
        let cold = generate_schedule_table(system.cpg(), system.arch(), &config);
        let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
        let first = session.merge();
        assert_identical(&cold, &first, "cold session merge");
        assert!(session.reuse_stats().chains_recorded > 0);
        assert_eq!(session.reuse_stats().chains_replayed, 0);
    }

    #[test]
    fn editless_remerge_replays_the_whole_tree() {
        let system = examples::fig1();
        let config = MergeConfig::new(system.broadcast_time()).with_threads(1);
        let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
        let first = session.merge();
        let second = session.merge();
        assert_identical(&first, &second, "edit-less re-merge");
        let reuse = session.reuse_stats();
        assert_eq!(
            reuse.chains_recorded, 0,
            "an unchanged system must replay every chain: {reuse:?}"
        );
        assert!(reuse.chains_replayed > 0);
    }

    #[test]
    fn warm_merge_after_a_wcet_edit_matches_a_cold_merge() {
        let system = examples::fig1();
        let config = MergeConfig::new(system.broadcast_time())
            .with_threads(1)
            .with_trace(true);
        let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
        session.merge();

        // Edit a guarded process (so the scope excludes some tracks).
        let p = system
            .cpg()
            .ordinary_processes()
            .find(|&p| !system.cpg().guard(p).is_true())
            .expect("fig1 has guarded processes");
        let edit = SystemEdit::ExecTime {
            process: p,
            time: Time::new(11),
        };
        let scope = session.apply_edit(&edit).unwrap();
        assert!(matches!(scope, EditScope::Tracks(_)));
        let warm = session.merge();

        let mut edited = system.cpg().clone();
        edited.set_exec_time(p, Time::new(11)).unwrap();
        let cold = generate_schedule_table(&edited, system.arch(), &config);
        assert_identical(&cold, &warm, "warm re-merge after WCET edit");
    }

    #[test]
    fn warm_merges_are_bit_identical_across_thread_counts() {
        let system = examples::fig1();
        let p = system
            .cpg()
            .ordinary_processes()
            .find(|&p| !system.cpg().guard(p).is_true())
            .unwrap();
        let base = MergeConfig::new(system.broadcast_time()).with_trace(true);
        let serial = {
            let config = base.with_threads(1);
            let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
            session.merge();
            session
                .apply_edit(&SystemEdit::ExecTime {
                    process: p,
                    time: Time::new(13),
                })
                .unwrap();
            session.merge()
        };
        for threads in [2usize, 4] {
            let config = base.with_threads(threads);
            let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
            session.merge();
            session
                .apply_edit(&SystemEdit::ExecTime {
                    process: p,
                    time: Time::new(13),
                })
                .unwrap();
            let warm = session.merge();
            assert_identical(&serial, &warm, &format!("{threads} threads"));
        }
    }

    #[test]
    fn structural_edits_drop_the_cache_and_still_match_cold() {
        let system = examples::fig1();
        let config = MergeConfig::new(system.broadcast_time()).with_threads(1);
        let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
        session.merge();

        // Tighten a guard: a structural edit, the track set may change.
        let p = system
            .cpg()
            .ordinary_processes()
            .find(|&p| !system.cpg().guard(p).is_true())
            .unwrap();
        let guard = system.cpg().guard(p).clone();
        let edit = SystemEdit::Guard { process: p, guard };
        assert_eq!(session.apply_edit(&edit).unwrap(), EditScope::Structural);
        let warm = session.merge();
        assert_eq!(session.reuse_stats().chains_replayed, 0);

        let mut edited = system.cpg().clone();
        edited.set_guard(p, system.cpg().guard(p).clone()).unwrap();
        let cold = generate_schedule_table(&edited, system.arch(), &config);
        assert_identical(&cold, &warm, "re-merge after structural edit");
    }

    #[test]
    fn rejected_edits_leave_the_session_untouched() {
        let system = examples::diamond();
        let config = MergeConfig::new(system.broadcast_time()).with_threads(1);
        let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
        let first = session.merge();
        let err = session
            .apply_edit(&SystemEdit::ExecTime {
                process: session.cpg().source(),
                time: Time::new(1),
            })
            .unwrap_err();
        assert!(matches!(err, EditError::DummyProcess(_)));
        let second = session.merge();
        assert_identical(&first, &second, "re-merge after rejected edit");
        assert_eq!(session.reuse_stats().chains_recorded, 0);
    }

    #[test]
    fn invalidate_all_forces_a_full_record() {
        let system = examples::diamond();
        let config = MergeConfig::new(system.broadcast_time()).with_threads(1);
        let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
        let first = session.merge();
        session.invalidate_all();
        let second = session.merge();
        assert_identical(&first, &second, "re-merge after invalidate_all");
        assert_eq!(session.reuse_stats().chains_replayed, 0);
        assert!(session.reuse_stats().chains_recorded > 0);
    }

    #[test]
    fn mapping_edits_re_merge_identically_to_cold() {
        let system = examples::fig1();
        let config = MergeConfig::new(system.broadcast_time()).with_threads(1);
        let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
        session.merge();

        let p = system.cpg().ordinary_processes().next().unwrap();
        let old = system.cpg().mapping(p).unwrap();
        let target = system
            .arch()
            .processors()
            .find(|&pe| pe != old)
            .expect("fig1 has several processors");
        session
            .apply_edit(&SystemEdit::Mapping {
                process: p,
                pe: target,
            })
            .unwrap();
        let warm = session.merge();

        let mut edited = system.cpg().clone();
        edited.set_mapping(p, target).unwrap();
        let cold = generate_schedule_table(&edited, system.arch(), &config);
        assert_identical(&cold, &warm, "warm re-merge after mapping edit");
    }

    #[test]
    fn a_session_survives_a_sequence_of_edits() {
        let system = examples::fig1();
        let config = MergeConfig::new(system.broadcast_time()).with_threads(1);
        let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
        session.merge();
        let mut reference = system.cpg().clone();

        let processes: Vec<_> = system.cpg().ordinary_processes().take(4).collect();
        for (step, &p) in processes.iter().enumerate() {
            let time = Time::new(3 + step as u64);
            session
                .apply_edit(&SystemEdit::ExecTime { process: p, time })
                .unwrap();
            reference.set_exec_time(p, time).unwrap();
            let warm = session.merge();
            let cold = generate_schedule_table(&reference, system.arch(), &config);
            assert_identical(&cold, &warm, &format!("edit step {step}"));
        }
    }

    #[test]
    fn never_guard_edit_keeps_session_and_cold_in_lockstep() {
        // A guard that can never fire removes the process from every track:
        // the structural path must re-enumerate and still match cold.
        let system = examples::sensor_actuator();
        let config = MergeConfig::new(system.broadcast_time()).with_threads(1);
        let mut session = MergeSession::new(system.cpg(), system.arch(), &config);
        session.merge();

        let p = system
            .cpg()
            .ordinary_processes()
            .find(|&p| !system.cpg().guard(p).is_true())
            .expect("sensor_actuator has guarded processes");
        session
            .apply_edit(&SystemEdit::Guard {
                process: p,
                guard: Guard::never(),
            })
            .unwrap();
        let warm = session.merge();

        let mut edited = system.cpg().clone();
        edited.set_guard(p, Guard::never()).unwrap();
        let cold = generate_schedule_table(&edited, system.arch(), &config);
        assert_identical(&cold, &warm, "never-guard structural edit");
    }
}
