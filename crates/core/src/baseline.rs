//! Condition-oblivious baseline scheduler.
//!
//! The paper's contribution is to exploit the control flow captured by the
//! conditional process graph. The natural baseline — what one obtains with a
//! classical data-flow-only scheduler — is to ignore the conditions
//! altogether: every process is assumed to execute on every activation of the
//! system and is scheduled at a single, unconditional start time. The
//! resulting table is trivially deterministic (one column, `true`), but its
//! worst-case delay is pessimistic because mutually exclusive branches are
//! serialized on shared resources.
//!
//! The benchmark harness compares this baseline against the schedule tables
//! produced by [`generate_schedule_table`](crate::generate_schedule_table) to
//! quantify the benefit of condition-aware scheduling.

use std::collections::HashMap;

use cpg::{enumerate_tracks, Cpg, CpgBuilder, Cube, ProcessId, ProcessKind};
use cpg_arch::{Architecture, Time};
use cpg_path_sched::{Job, ListScheduler, PathSchedule};
use cpg_table::ScheduleTable;

/// Result of the condition-oblivious baseline.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    table: ScheduleTable,
    schedule: PathSchedule,
    delay: Time,
}

impl BaselineResult {
    /// The single-column schedule table of the baseline.
    #[must_use]
    pub fn table(&self) -> &ScheduleTable {
        &self.table
    }

    /// The underlying unconditional schedule (start times over the stripped,
    /// condition-free copy of the graph).
    #[must_use]
    pub fn schedule(&self) -> &PathSchedule {
        &self.schedule
    }

    /// The worst-case delay of the baseline: the completion time of its
    /// unconditional schedule.
    #[must_use]
    pub fn delay(&self) -> Time {
        self.delay
    }
}

/// Schedules the graph while ignoring its control flow: every conditional
/// edge is treated as a plain data-flow edge and every process is activated
/// unconditionally.
///
/// The start times refer to the processes of `cpg` (identifiers are
/// translated back from the internal condition-free copy), so the returned
/// table can be compared entry by entry with the output of
/// [`generate_schedule_table`](crate::generate_schedule_table).
///
/// # Panics
///
/// Panics if `cpg` was not produced by [`cpg::CpgBuilder`] /
/// [`cpg::expand_communications`] (such graphs always rebuild cleanly).
#[must_use]
pub fn condition_oblivious_baseline(
    cpg: &Cpg,
    arch: &Architecture,
    broadcast_time: Time,
) -> BaselineResult {
    // Rebuild the graph without conditions.
    let mut builder = CpgBuilder::new();
    let mut translated: HashMap<ProcessId, ProcessId> = HashMap::new();
    let mut reverse: HashMap<ProcessId, ProcessId> = HashMap::new();
    for id in cpg.process_ids() {
        let process = cpg.process(id);
        let new_id = match process.kind() {
            ProcessKind::Ordinary => builder.process(
                process.name().to_owned(),
                process.exec_time(),
                process.mapping().expect("ordinary processes are mapped"),
            ),
            ProcessKind::Communication => builder.communication(
                process.name().to_owned(),
                process.exec_time(),
                process
                    .mapping()
                    .expect("communication processes are mapped"),
            ),
            ProcessKind::Source | ProcessKind::Sink => continue,
        };
        translated.insert(id, new_id);
        reverse.insert(new_id, id);
    }
    for edge in cpg.edges() {
        let (Some(&from), Some(&to)) = (translated.get(&edge.from()), translated.get(&edge.to()))
        else {
            continue;
        };
        builder.simple_edge(from, to, edge.comm_time());
    }
    let stripped = builder
        .build(arch)
        .expect("stripping conditions from a valid graph keeps it valid");

    let tracks = enumerate_tracks(&stripped);
    let scheduler = ListScheduler::new(&stripped, arch, broadcast_time);
    let schedule = scheduler.schedule_track(&tracks.tracks()[0]);
    let delay = schedule.delay();

    let mut table = ScheduleTable::new();
    for sj in schedule.jobs() {
        let Some(stripped_pid) = sj.job().as_process() else {
            continue;
        };
        if stripped.process(stripped_pid).kind().is_dummy() {
            continue;
        }
        let original = reverse[&stripped_pid];
        table.set_on(Job::Process(original), Cube::top(), sj.start(), sj.pe());
    }
    BaselineResult {
        table,
        schedule,
        delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_schedule_table, MergeConfig};
    use cpg::examples;

    #[test]
    fn baseline_has_a_single_unconditional_column() {
        let system = examples::fig1();
        let baseline =
            condition_oblivious_baseline(system.cpg(), system.arch(), system.broadcast_time());
        assert_eq!(baseline.table().num_columns(), 1);
        assert!(baseline.table().columns()[0].is_top());
        // Every non-dummy process of the original graph has a row.
        assert_eq!(
            baseline.table().num_rows(),
            system.cpg().schedulable_processes().count()
        );
        assert!(baseline.delay() > Time::ZERO);
    }

    #[test]
    fn baseline_is_not_better_on_resource_contended_graphs() {
        // On graphs whose alternative branches compete for the same
        // processors, serializing everything (the baseline) costs more than
        // the condition-aware table. (On very small graphs the baseline can
        // win marginally because it needs no condition broadcasts.)
        for system in [examples::sensor_actuator(), examples::fig1()] {
            let merged = generate_schedule_table(
                system.cpg(),
                system.arch(),
                &MergeConfig::new(system.broadcast_time()),
            );
            let baseline =
                condition_oblivious_baseline(system.cpg(), system.arch(), system.broadcast_time());
            assert!(
                baseline.delay() >= merged.delta_max(),
                "baseline {} should not beat merged {}",
                baseline.delay(),
                merged.delta_max()
            );
        }
    }

    #[test]
    fn baseline_schedule_start_times_translate_back_to_the_original_graph() {
        let system = examples::diamond();
        let baseline =
            condition_oblivious_baseline(system.cpg(), system.arch(), system.broadcast_time());
        for pid in system.cpg().schedulable_processes() {
            assert!(
                baseline
                    .table()
                    .get(Job::Process(pid), &Cube::top())
                    .is_some(),
                "{} has no baseline start time",
                system.cpg().process(pid).name()
            );
        }
        assert!(baseline.schedule().delay() == baseline.delay());
    }
}
