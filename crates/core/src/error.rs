//! Typed rejection of malformed merge inputs.
//!
//! The merge algorithm assumes a well-formed system: an expanded polar
//! graph whose schedulable processes are mapped onto processing elements of
//! the right kind, guards over declared conditions, and an architecture
//! with at least one computation resource. The random generator always
//! produces such systems, but the adversarial fuzzer (and any future
//! service front-end) feeds the merger arbitrary graph/architecture
//! combinations — e.g. a graph built against a larger architecture and
//! merged against a squeezed one. [`validate_system`] turns every such
//! pathology into a typed [`MergeError`] at the entry point instead of an
//! index panic deep inside the scheduler.

use std::fmt;

use cpg::{CondId, Cpg, ProcessId, ProcessKind};
use cpg_arch::{Architecture, PeId, PeKind};

/// Why a system was rejected at a merge entry point (or, for
/// [`UnrepairedConflicts`](MergeError::UnrepairedConflicts), why a finished
/// table violates the requirement-2 contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeError {
    /// The graph has no schedulable process.
    EmptyGraph,
    /// The architecture offers no computation element, or the graph carries
    /// communication processes and the architecture offers no bus.
    ZeroResourceSystem,
    /// A schedulable process has no mapping.
    UnmappedProcess {
        /// The unmapped process.
        process: ProcessId,
    },
    /// A process is mapped to a processing element the architecture does not
    /// contain.
    DanglingProcessingElement {
        /// The mapped process.
        process: ProcessId,
        /// The out-of-range element index.
        pe: usize,
    },
    /// A process is mapped to the wrong element kind: an ordinary process to
    /// a bus, or a communication process off the buses.
    ProcessOnWrongElement {
        /// The mis-mapped process.
        process: ProcessId,
        /// The element it is mapped to.
        pe: PeId,
    },
    /// A guard, conditional edge or disjunction process references a
    /// condition the graph does not declare.
    DanglingCondition {
        /// The undeclared condition.
        condition: CondId,
    },
    /// The dependency edges contain a cycle, so no schedule exists.
    CyclicDependency,
    /// The finished table still contains activation times no dispatcher can
    /// realize (requirement-2 violation reported by
    /// [`MergeResult::ensure_realizable`](crate::MergeResult::ensure_realizable)).
    UnrepairedConflicts {
        /// Unrepaired conflicts plus surviving lock slips.
        count: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MergeError::EmptyGraph => f.write_str("the graph has no schedulable process"),
            MergeError::ZeroResourceSystem => {
                f.write_str("the architecture lacks a resource the graph needs")
            }
            MergeError::UnmappedProcess { process } => {
                write!(f, "schedulable process {process} has no mapping")
            }
            MergeError::DanglingProcessingElement { process, pe } => {
                write!(
                    f,
                    "process {process} is mapped to processing element #{pe}, \
                     which the architecture does not contain"
                )
            }
            MergeError::ProcessOnWrongElement { process, pe } => {
                write!(
                    f,
                    "process {process} is mapped to {pe}, an element of the wrong kind"
                )
            }
            MergeError::DanglingCondition { condition } => {
                write!(f, "condition {condition} is not declared by the graph")
            }
            MergeError::CyclicDependency => f.write_str("the dependency edges contain a cycle"),
            MergeError::UnrepairedConflicts { count } => {
                write!(
                    f,
                    "{count} tabled activation time(s) violate requirement 2 \
                     (unrepaired conflicts or surviving lock slips)"
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Checks that a graph/architecture pair is a well-formed merge input.
///
/// Returns the first pathology found, in a deterministic order: resource
/// availability, per-process mapping sanity (in process-id order), condition
/// references, then dependency acyclicity. [`generate_schedule_table`]
/// (crate::generate_schedule_table) and [`MergeSession`](crate::MergeSession)
/// assume a validated system; the `try_` entry points run this pass first.
pub fn validate_system(cpg: &Cpg, arch: &Architecture) -> Result<(), MergeError> {
    if cpg.schedulable_processes().next().is_none() {
        return Err(MergeError::EmptyGraph);
    }
    if arch.computation_elements().next().is_none() {
        return Err(MergeError::ZeroResourceSystem);
    }
    if cpg.communication_processes().next().is_some() && arch.buses().next().is_none() {
        return Err(MergeError::ZeroResourceSystem);
    }

    for (id, process) in cpg.processes() {
        if process.kind().is_dummy() {
            continue;
        }
        let Some(pe) = process.mapping() else {
            return Err(MergeError::UnmappedProcess { process: id });
        };
        if pe.index() >= arch.len() {
            return Err(MergeError::DanglingProcessingElement {
                process: id,
                pe: pe.index(),
            });
        }
        let kind_ok = match process.kind() {
            ProcessKind::Communication => arch.kind_of(pe) == PeKind::Bus,
            _ => arch.kind_of(pe) != PeKind::Bus,
        };
        if !kind_ok {
            return Err(MergeError::ProcessOnWrongElement { process: id, pe });
        }
    }

    let declared = cpg.num_conditions();
    for (_, process) in cpg.processes() {
        if let Some(condition) = process.computes() {
            if condition.index() >= declared {
                return Err(MergeError::DanglingCondition { condition });
            }
        }
        for condition in process.guard().conditions() {
            if condition.index() >= declared {
                return Err(MergeError::DanglingCondition { condition });
            }
        }
    }
    for edge in cpg.edges() {
        if let Some(literal) = edge.condition() {
            if literal.cond().index() >= declared {
                return Err(MergeError::DanglingCondition {
                    condition: literal.cond(),
                });
            }
        }
    }

    // The builder rejects cycles, but a deserialized or hand-assembled graph
    // may carry a stale topological order: re-check that every edge points
    // forward in it.
    let order = cpg.topological_order();
    if order.len() != cpg.len() {
        return Err(MergeError::CyclicDependency);
    }
    let mut position = vec![usize::MAX; cpg.len()];
    for (pos, &id) in order.iter().enumerate() {
        position[id.index()] = pos;
    }
    for edge in cpg.edges() {
        if position[edge.from().index()] >= position[edge.to().index()] {
            return Err(MergeError::CyclicDependency);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::{examples, Cube, Guard};
    use cpg_arch::Time;

    #[test]
    fn well_formed_examples_validate() {
        for system in [
            examples::diamond(),
            examples::sensor_actuator(),
            examples::fig1(),
        ] {
            validate_system(system.cpg(), system.arch()).expect("example systems are well-formed");
        }
    }

    #[test]
    fn missing_bus_is_a_zero_resource_system() {
        // fig1 is expanded over a multi-element architecture, so it carries
        // communication processes; a bus-less architecture cannot host them.
        let system = examples::fig1();
        let arch = Architecture::builder().processor("solo").build().unwrap();
        assert_eq!(
            validate_system(system.cpg(), &arch),
            Err(MergeError::ZeroResourceSystem)
        );
    }

    #[test]
    fn squeezed_architecture_is_a_dangling_processing_element() {
        // A graph mapped over two processors, validated against an
        // architecture that lost the second one.
        let full = Architecture::builder()
            .processor("cpu0")
            .processor("cpu1")
            .bus("bus0")
            .build()
            .unwrap();
        let mut builder = cpg::Cpg::builder();
        let a = builder.process("a", Time::new(2), PeId::from_index(0));
        let b = builder.process("b", Time::new(3), PeId::from_index(1));
        builder.simple_edge(a, b, Time::ZERO);
        let cpg = builder.build(&full).unwrap();
        let squeezed = Architecture::builder().processor("cpu0").build().unwrap();
        assert_eq!(
            validate_system(&cpg, &squeezed),
            Err(MergeError::DanglingProcessingElement { process: b, pe: 1 })
        );
    }

    #[test]
    fn comm_process_on_a_processor_is_on_the_wrong_element() {
        let system = examples::diamond();
        let mut cpg = system.cpg().clone();
        let comm = cpg
            .communication_processes()
            .next()
            .expect("diamond is expanded");
        let processor = system.arch().computation_elements().next().unwrap();
        cpg.set_mapping(comm, processor).unwrap();
        assert_eq!(
            validate_system(&cpg, system.arch()),
            Err(MergeError::ProcessOnWrongElement {
                process: comm,
                pe: processor
            })
        );
    }

    #[test]
    fn ordinary_process_on_a_bus_is_on_the_wrong_element() {
        let system = examples::diamond();
        let mut cpg = system.cpg().clone();
        let process = cpg.ordinary_processes().next().unwrap();
        let bus = system.arch().buses().next().expect("diamond has a bus");
        cpg.set_mapping(process, bus).unwrap();
        assert_eq!(
            validate_system(&cpg, system.arch()),
            Err(MergeError::ProcessOnWrongElement { process, pe: bus })
        );
    }

    #[test]
    fn undeclared_guard_condition_is_dangling() {
        let system = examples::diamond();
        let mut cpg = system.cpg().clone();
        let process = cpg.ordinary_processes().next().unwrap();
        let ghost = CondId::new(40);
        cpg.set_guard(process, Guard::from_cube(Cube::from(ghost.is_true())))
            .unwrap();
        assert_eq!(
            validate_system(&cpg, system.arch()),
            Err(MergeError::DanglingCondition { condition: ghost })
        );
    }

    #[test]
    fn unrepaired_conflicts_reports_through_ensure_realizable() {
        let system = examples::diamond();
        let config = crate::MergeConfig::new(system.broadcast_time());
        let result = crate::generate_schedule_table(system.cpg(), system.arch(), &config);
        assert_eq!(result.outcome(), crate::MergeOutcome::Realizable);
        result.ensure_realizable().unwrap();

        let mut degraded = result;
        degraded.stats.unrepaired_conflicts = 2;
        degraded.stats.lock_slips = 1;
        assert_eq!(
            degraded.outcome(),
            crate::MergeOutcome::Degraded {
                unrepaired_conflicts: 2,
                lock_slips: 1
            }
        );
        assert_eq!(
            degraded.ensure_realizable(),
            Err(MergeError::UnrepairedConflicts { count: 3 })
        );
    }

    #[test]
    fn try_entry_points_reject_pathological_systems() {
        let system = examples::fig1();
        let solo = Architecture::builder().processor("solo").build().unwrap();
        let config = crate::MergeConfig::new(Time::new(1));
        assert_eq!(
            crate::try_generate_schedule_table(system.cpg(), &solo, &config).err(),
            Some(MergeError::ZeroResourceSystem)
        );
        assert!(crate::MergeSession::try_new(system.cpg(), &solo, &config).is_err());
        // A session whose graph is corrupted after construction fails on
        // `try_merge` instead of panicking mid-walk.
        let mut session = crate::MergeSession::new(system.cpg(), system.arch(), &config);
        session.try_merge().expect("well-formed system merges");
    }

    #[test]
    fn every_variant_formats_and_is_an_error() {
        let variants: Vec<MergeError> = vec![
            MergeError::EmptyGraph,
            MergeError::ZeroResourceSystem,
            MergeError::UnmappedProcess {
                process: cpg::ProcessId::from_index(3),
            },
            MergeError::DanglingProcessingElement {
                process: cpg::ProcessId::from_index(3),
                pe: 9,
            },
            MergeError::ProcessOnWrongElement {
                process: cpg::ProcessId::from_index(3),
                pe: PeId::from_index(1),
            },
            MergeError::DanglingCondition {
                condition: CondId::new(7),
            },
            MergeError::CyclicDependency,
            MergeError::UnrepairedConflicts { count: 2 },
        ];
        for variant in variants {
            let rendered = variant.to_string();
            assert!(!rendered.is_empty());
            let as_error: &dyn std::error::Error = &variant;
            assert!(as_error.source().is_none());
        }
    }
}
