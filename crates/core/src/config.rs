//! Configuration of the table-generation algorithm.

use std::num::NonZeroUsize;

use cpg_arch::Time;

/// Rule used to pick the next current schedule after a back-step in the
/// decision tree.
///
/// The paper always selects the reachable path with the largest delay
/// ([`SelectionPolicy::LongestDelayFirst`]), so that perturbations are pushed
/// into the short paths and the long paths keep their (near-)optimal
/// schedules. The other policies exist for the ablation study of the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SelectionPolicy {
    /// Give priority to the reachable alternative path whose individual
    /// (optimal) schedule has the largest delay — the policy of the paper.
    #[default]
    LongestDelayFirst,
    /// Give priority to the reachable path with the *smallest* delay
    /// (ablation: shows why the paper's choice matters).
    ShortestDelayFirst,
    /// Take the first reachable path in enumeration order (ablation:
    /// delay-oblivious merging).
    EnumerationOrder,
}

/// Configuration of [`generate_schedule_table`](crate::generate_schedule_table).
///
/// # Example
///
/// ```
/// use cpg_arch::Time;
/// use cpg_merge::{MergeConfig, SelectionPolicy};
///
/// let config = MergeConfig::new(Time::new(1));
/// assert_eq!(config.broadcast_time(), Time::new(1));
/// assert_eq!(config.selection(), SelectionPolicy::LongestDelayFirst);
/// assert_eq!(config.threads(), None); // auto: available parallelism
///
/// let ablation = MergeConfig::new(Time::new(2)).with_selection(SelectionPolicy::ShortestDelayFirst);
/// assert_eq!(ablation.selection(), SelectionPolicy::ShortestDelayFirst);
///
/// let serial = MergeConfig::new(Time::new(1)).with_threads(1);
/// assert_eq!(serial.effective_threads(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeConfig {
    broadcast_time: Time,
    selection: SelectionPolicy,
    /// Worker threads for the embarrassingly parallel phases of the merge
    /// (per-track context construction + initial path schedules, and the
    /// final realizability sweep). `None` means "decide at run time": the
    /// `CPG_MERGE_THREADS` environment variable if set, otherwise the
    /// machine's available parallelism. The merged output is bit-identical
    /// for every thread count.
    threads: Option<NonZeroUsize>,
}

impl MergeConfig {
    /// Creates a configuration with the paper's default policy and the given
    /// condition-broadcast time `τ0`.
    #[must_use]
    pub fn new(broadcast_time: Time) -> Self {
        MergeConfig {
            broadcast_time,
            selection: SelectionPolicy::default(),
            threads: None,
        }
    }

    /// The condition-broadcast time `τ0`.
    #[must_use]
    pub fn broadcast_time(&self) -> Time {
        self.broadcast_time
    }

    /// The path-selection policy used after back-steps.
    #[must_use]
    pub fn selection(&self) -> SelectionPolicy {
        self.selection
    }

    /// Returns the configuration with a different path-selection policy.
    #[must_use]
    pub fn with_selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Returns the configuration with a different broadcast time.
    #[must_use]
    pub fn with_broadcast_time(mut self, broadcast_time: Time) -> Self {
        self.broadcast_time = broadcast_time;
        self
    }

    /// The explicitly configured worker-thread count of the parallel merge
    /// phases, or `None` when the count is decided at run time (see
    /// [`effective_threads`](Self::effective_threads)).
    #[must_use]
    pub fn threads(&self) -> Option<usize> {
        self.threads.map(NonZeroUsize::get)
    }

    /// Returns the configuration with a fixed worker-thread count for the
    /// parallel merge phases. `1` forces the fully serial path (no worker
    /// threads are spawned); `0` restores the automatic choice. The merge
    /// result is bit-identical for every thread count — this knob trades
    /// wall-clock for cores only.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads);
        self
    }

    /// The worker-thread count the merge will actually use: the configured
    /// count if one was set, else the `CPG_MERGE_THREADS` environment
    /// variable (how CI forces both extremes through the whole test suite),
    /// else the machine's available parallelism.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if let Some(threads) = self.threads {
            return threads.get();
        }
        if let Some(threads) = std::env::var("CPG_MERGE_THREADS")
            .ok()
            .and_then(|value| value.trim().parse::<usize>().ok())
            .and_then(NonZeroUsize::new)
        {
            return threads.get();
        }
        fj::available_parallelism()
    }
}

impl Default for MergeConfig {
    /// The paper's example configuration: `τ0 = 1`, longest-delay-first
    /// selection.
    fn default() -> Self {
        MergeConfig::new(Time::new(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let config = MergeConfig::default();
        assert_eq!(config.broadcast_time(), Time::new(1));
        assert_eq!(config.selection(), SelectionPolicy::LongestDelayFirst);
    }

    #[test]
    fn builders_override_fields() {
        let config = MergeConfig::new(Time::new(5))
            .with_selection(SelectionPolicy::EnumerationOrder)
            .with_broadcast_time(Time::new(3));
        assert_eq!(config.broadcast_time(), Time::new(3));
        assert_eq!(config.selection(), SelectionPolicy::EnumerationOrder);
    }

    #[test]
    fn thread_knob_fixes_zeroes_and_resolves() {
        let config = MergeConfig::default();
        assert_eq!(config.threads(), None);
        // Without an explicit count the effective value is at least one
        // (whatever the environment and hardware say).
        assert!(config.effective_threads() >= 1);

        let fixed = config.with_threads(3);
        assert_eq!(fixed.threads(), Some(3));
        assert_eq!(fixed.effective_threads(), 3);

        // 0 restores the automatic choice.
        let auto_again = fixed.with_threads(0);
        assert_eq!(auto_again.threads(), None);
    }
}
