//! Configuration of the table-generation algorithm.

use std::num::NonZeroUsize;
use std::sync::{Mutex, OnceLock};

use cpg_arch::Time;

/// Parses a thread-count environment variable, warning **once** per variable
/// on garbage instead of silently falling back.
///
/// The contract, shared by every thread knob in the workspace
/// (`CPG_MERGE_THREADS` for the merge phases, `CPG_SUITE_THREADS` for the
/// benchmark suites):
///
/// * unset or empty/whitespace-only value → `None` (automatic choice);
/// * `"0"` → `None` (explicit "automatic", mirroring
///   [`MergeConfig::with_threads`]);
/// * a positive integer (surrounding whitespace tolerated) → that count;
/// * anything else → `None` **plus** one `warning:` line on stderr per
///   variable per process, so a typo like `CPG_MERGE_THREADS=fourteen` can
///   no longer masquerade as the default.
#[must_use]
pub fn threads_from_env(var: &str) -> Option<NonZeroUsize> {
    parse_thread_count(var, std::env::var(var).ok()?.as_str())
}

/// The testable core of [`threads_from_env`]: parses an observed value.
fn parse_thread_count(var: &str, value: &str) -> Option<NonZeroUsize> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<usize>() {
        Ok(count) => NonZeroUsize::new(count),
        Err(_) => {
            warn_once(var, trimmed);
            None
        }
    }
}

/// Emits one stderr warning per variable name per process.
fn warn_once(var: &str, value: &str) {
    static WARNED: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("thread-count warning registry poisoned");
    if warned.iter().any(|seen| seen == var) {
        return;
    }
    warned.push(var.to_owned());
    eprintln!(
        "warning: ignoring {var}={value:?}: expected a non-negative thread count \
         (0 = automatic), falling back to the automatic choice"
    );
}

/// Runs `body` with the environment variable `name` set to `value` (or
/// removed, for `None`), restoring the previous state afterwards — even when
/// `body` panics.
///
/// The process environment is global and the test harness is parallel, so
/// **every** test that mutates an environment variable must go through this
/// helper: all mutations serialize behind one shared lock, and the
/// save/restore keeps one test's variables from leaking into another's
/// `threads_from_env` probes. Only compiled for tests (and the `test-util`
/// feature, so integration suites in other crates can share the same lock).
///
/// The lock is held for the whole `body` and is not reentrant: do not nest
/// `with_env_var` calls (set both variables from one body instead).
#[cfg(any(test, feature = "test-util"))]
pub fn with_env_var<R>(name: &str, value: Option<&str>, body: impl FnOnce() -> R) -> R {
    static ENV_LOCK: Mutex<()> = Mutex::new(());
    // A panicking body poisons nothing worth keeping: the guard below
    // restores the variable either way.
    let _serialized = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    struct Restore<'n> {
        name: &'n str,
        previous: Option<String>,
    }
    impl Drop for Restore<'_> {
        fn drop(&mut self) {
            match &self.previous {
                Some(previous) => std::env::set_var(self.name, previous),
                None => std::env::remove_var(self.name),
            }
        }
    }
    let _restore = Restore {
        name,
        previous: std::env::var(name).ok(),
    };
    match value {
        Some(value) => std::env::set_var(name, value),
        None => std::env::remove_var(name),
    }
    body()
}

/// Rule used to pick the next current schedule after a back-step in the
/// decision tree.
///
/// The paper always selects the reachable path with the largest delay
/// ([`SelectionPolicy::LongestDelayFirst`]), so that perturbations are pushed
/// into the short paths and the long paths keep their (near-)optimal
/// schedules. The other policies exist for the ablation study of the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SelectionPolicy {
    /// Give priority to the reachable alternative path whose individual
    /// (optimal) schedule has the largest delay — the policy of the paper.
    #[default]
    LongestDelayFirst,
    /// Give priority to the reachable path with the *smallest* delay
    /// (ablation: shows why the paper's choice matters).
    ShortestDelayFirst,
    /// Take the first reachable path in enumeration order (ablation:
    /// delay-oblivious merging).
    EnumerationOrder,
}

/// Configuration of [`generate_schedule_table`](crate::generate_schedule_table).
///
/// # Example
///
/// ```
/// use cpg_arch::Time;
/// use cpg_merge::{MergeConfig, SelectionPolicy};
///
/// let config = MergeConfig::new(Time::new(1));
/// assert_eq!(config.broadcast_time(), Time::new(1));
/// assert_eq!(config.selection(), SelectionPolicy::LongestDelayFirst);
/// assert_eq!(config.threads(), None); // auto: available parallelism
///
/// let ablation = MergeConfig::new(Time::new(2)).with_selection(SelectionPolicy::ShortestDelayFirst);
/// assert_eq!(ablation.selection(), SelectionPolicy::ShortestDelayFirst);
///
/// let serial = MergeConfig::new(Time::new(1)).with_threads(1);
/// assert_eq!(serial.effective_threads(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeConfig {
    broadcast_time: Time,
    selection: SelectionPolicy,
    /// Worker threads for the parallel phases of the merge (per-track
    /// context construction + initial path schedules, the speculative
    /// decision-tree walk, and the final realizability sweep). `None` means
    /// "decide at run time"; the precedence is
    ///
    /// | source                        | wins when                        |
    /// |-------------------------------|----------------------------------|
    /// | [`MergeConfig::with_threads`] | set to a non-zero count          |
    /// | `CPG_MERGE_THREADS`           | set to a valid non-zero count    |
    /// | `available_parallelism`       | otherwise                        |
    ///
    /// (see [`threads_from_env`] for how the variable is parsed). The merged
    /// output is bit-identical for every thread count.
    threads: Option<NonZeroUsize>,
    /// Record a [`MergeStep`](crate::MergeStep) for every decision-tree node
    /// (default off: tracing costs an allocation per node on the hot walk).
    trace: bool,
}

impl MergeConfig {
    /// Creates a configuration with the paper's default policy and the given
    /// condition-broadcast time `τ0`.
    #[must_use]
    pub fn new(broadcast_time: Time) -> Self {
        MergeConfig {
            broadcast_time,
            selection: SelectionPolicy::default(),
            threads: None,
            trace: false,
        }
    }

    /// The condition-broadcast time `τ0`.
    #[must_use]
    pub fn broadcast_time(&self) -> Time {
        self.broadcast_time
    }

    /// The path-selection policy used after back-steps.
    #[must_use]
    pub fn selection(&self) -> SelectionPolicy {
        self.selection
    }

    /// Returns the configuration with a different path-selection policy.
    #[must_use]
    pub fn with_selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Returns the configuration with a different broadcast time.
    #[must_use]
    pub fn with_broadcast_time(mut self, broadcast_time: Time) -> Self {
        self.broadcast_time = broadcast_time;
        self
    }

    /// The explicitly configured worker-thread count of the parallel merge
    /// phases, or `None` when the count is decided at run time (see
    /// [`effective_threads`](Self::effective_threads)).
    #[must_use]
    pub fn threads(&self) -> Option<usize> {
        self.threads.map(NonZeroUsize::get)
    }

    /// Returns the configuration with a fixed worker-thread count for the
    /// parallel merge phases. `1` forces the fully serial path (no worker
    /// threads are spawned); `0` restores the automatic choice. The merge
    /// result is bit-identical for every thread count — this knob trades
    /// wall-clock for cores only.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads);
        self
    }

    /// The worker-thread count the merge will actually use: the configured
    /// count if one was set, else the `CPG_MERGE_THREADS` environment
    /// variable (how CI forces both extremes through the whole test suite;
    /// parsed by [`threads_from_env`], which warns on garbage), else the
    /// machine's available parallelism.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if let Some(threads) = self.threads {
            return threads.get();
        }
        if let Some(threads) = threads_from_env("CPG_MERGE_THREADS") {
            return threads.get();
        }
        fj::available_parallelism()
    }

    /// `true` when the merge records a [`MergeStep`](crate::MergeStep) per
    /// decision-tree node (see [`with_trace`](Self::with_trace)).
    #[must_use]
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// Returns the configuration with decision-tree tracing switched on or
    /// off. Off (the default) keeps the walk allocation-free:
    /// [`MergeResult::steps`](crate::MergeResult::steps) comes back empty,
    /// while the [`MergeStats`](crate::MergeStats) counters are always
    /// collected. On, every forward- and back-step is recorded — the figure
    /// generators and the differential oracles use this.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

impl Default for MergeConfig {
    /// The paper's example configuration: `τ0 = 1`, longest-delay-first
    /// selection.
    fn default() -> Self {
        MergeConfig::new(Time::new(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let config = MergeConfig::default();
        assert_eq!(config.broadcast_time(), Time::new(1));
        assert_eq!(config.selection(), SelectionPolicy::LongestDelayFirst);
    }

    #[test]
    fn builders_override_fields() {
        let config = MergeConfig::new(Time::new(5))
            .with_selection(SelectionPolicy::EnumerationOrder)
            .with_broadcast_time(Time::new(3));
        assert_eq!(config.broadcast_time(), Time::new(3));
        assert_eq!(config.selection(), SelectionPolicy::EnumerationOrder);
    }

    #[test]
    fn thread_knob_fixes_zeroes_and_resolves() {
        let config = MergeConfig::default();
        assert_eq!(config.threads(), None);
        // Without an explicit count the effective value is at least one
        // (whatever the environment and hardware say).
        assert!(config.effective_threads() >= 1);

        let fixed = config.with_threads(3);
        assert_eq!(fixed.threads(), Some(3));
        assert_eq!(fixed.effective_threads(), 3);

        // 0 restores the automatic choice.
        let auto_again = fixed.with_threads(0);
        assert_eq!(auto_again.threads(), None);
    }

    #[test]
    fn trace_defaults_off_and_toggles() {
        let config = MergeConfig::default();
        assert!(!config.trace());
        assert!(config.with_trace(true).trace());
        assert!(!config.with_trace(true).with_trace(false).trace());
    }

    #[test]
    fn thread_env_values_parse_trim_and_reject_garbage() {
        let var = "CPG_TEST_THREADS_PARSE";
        assert_eq!(parse_thread_count(var, "4"), NonZeroUsize::new(4));
        // Whitespace padding is tolerated.
        assert_eq!(parse_thread_count(var, "  8\n"), NonZeroUsize::new(8));
        // Empty, whitespace-only and zero mean "automatic", silently.
        assert_eq!(parse_thread_count(var, ""), None);
        assert_eq!(parse_thread_count(var, "   "), None);
        assert_eq!(parse_thread_count(var, "0"), None);
        // Garbage falls back (and warns once, which we cannot capture here,
        // but must not panic or be accepted).
        assert_eq!(parse_thread_count(var, "fourteen"), None);
        assert_eq!(parse_thread_count(var, "-2"), None);
        assert_eq!(parse_thread_count(var, "4x"), None);
        assert_eq!(parse_thread_count(var, "fourteen"), None);
    }

    #[test]
    fn threads_from_env_reads_the_process_environment() {
        // The environment is process-global and tests run concurrently, so
        // every mutation goes through the serializing helper.
        with_env_var("CPG_TEST_THREADS_UNSET", None, || {
            assert_eq!(threads_from_env("CPG_TEST_THREADS_UNSET"), None);
        });
        with_env_var("CPG_TEST_THREADS_SET", Some("6"), || {
            assert_eq!(
                threads_from_env("CPG_TEST_THREADS_SET"),
                NonZeroUsize::new(6)
            );
        });
        with_env_var("CPG_TEST_THREADS_BAD", Some("lots"), || {
            assert_eq!(threads_from_env("CPG_TEST_THREADS_BAD"), None);
        });
    }

    #[test]
    fn with_env_var_restores_previous_values() {
        // The lock is held for the whole body, so the helper must not nest;
        // sequential calls check the save/restore instead.
        let var = "CPG_TEST_THREADS_RESTORE";
        with_env_var(var, Some("2"), || {
            assert_eq!(threads_from_env(var), NonZeroUsize::new(2));
        });
        assert_eq!(threads_from_env(var), None);
        let panicked = std::panic::catch_unwind(|| {
            with_env_var(var, Some("7"), || panic!("boom"));
        });
        assert!(panicked.is_err());
        // Restored even though the body panicked.
        assert_eq!(threads_from_env(var), None);
    }
}
