//! Configuration of the table-generation algorithm.

use cpg_arch::Time;

/// Rule used to pick the next current schedule after a back-step in the
/// decision tree.
///
/// The paper always selects the reachable path with the largest delay
/// ([`SelectionPolicy::LongestDelayFirst`]), so that perturbations are pushed
/// into the short paths and the long paths keep their (near-)optimal
/// schedules. The other policies exist for the ablation study of the benchmark
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SelectionPolicy {
    /// Give priority to the reachable alternative path whose individual
    /// (optimal) schedule has the largest delay — the policy of the paper.
    #[default]
    LongestDelayFirst,
    /// Give priority to the reachable path with the *smallest* delay
    /// (ablation: shows why the paper's choice matters).
    ShortestDelayFirst,
    /// Take the first reachable path in enumeration order (ablation:
    /// delay-oblivious merging).
    EnumerationOrder,
}

/// Configuration of [`generate_schedule_table`](crate::generate_schedule_table).
///
/// # Example
///
/// ```
/// use cpg_arch::Time;
/// use cpg_merge::{MergeConfig, SelectionPolicy};
///
/// let config = MergeConfig::new(Time::new(1));
/// assert_eq!(config.broadcast_time(), Time::new(1));
/// assert_eq!(config.selection(), SelectionPolicy::LongestDelayFirst);
///
/// let ablation = MergeConfig::new(Time::new(2)).with_selection(SelectionPolicy::ShortestDelayFirst);
/// assert_eq!(ablation.selection(), SelectionPolicy::ShortestDelayFirst);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeConfig {
    broadcast_time: Time,
    selection: SelectionPolicy,
}

impl MergeConfig {
    /// Creates a configuration with the paper's default policy and the given
    /// condition-broadcast time `τ0`.
    #[must_use]
    pub fn new(broadcast_time: Time) -> Self {
        MergeConfig {
            broadcast_time,
            selection: SelectionPolicy::default(),
        }
    }

    /// The condition-broadcast time `τ0`.
    #[must_use]
    pub fn broadcast_time(&self) -> Time {
        self.broadcast_time
    }

    /// The path-selection policy used after back-steps.
    #[must_use]
    pub fn selection(&self) -> SelectionPolicy {
        self.selection
    }

    /// Returns the configuration with a different path-selection policy.
    #[must_use]
    pub fn with_selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Returns the configuration with a different broadcast time.
    #[must_use]
    pub fn with_broadcast_time(mut self, broadcast_time: Time) -> Self {
        self.broadcast_time = broadcast_time;
        self
    }
}

impl Default for MergeConfig {
    /// The paper's example configuration: `τ0 = 1`, longest-delay-first
    /// selection.
    fn default() -> Self {
        MergeConfig::new(Time::new(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let config = MergeConfig::default();
        assert_eq!(config.broadcast_time(), Time::new(1));
        assert_eq!(config.selection(), SelectionPolicy::LongestDelayFirst);
    }

    #[test]
    fn builders_override_fields() {
        let config = MergeConfig::new(Time::new(5))
            .with_selection(SelectionPolicy::EnumerationOrder)
            .with_broadcast_time(Time::new(3));
        assert_eq!(config.broadcast_time(), Time::new(3));
        assert_eq!(config.selection(), SelectionPolicy::EnumerationOrder);
    }
}
