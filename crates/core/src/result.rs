//! Result of the table-generation (schedule merging) algorithm.

use std::fmt;

use cpg::{CondId, Cpg, Cube, TrackSet};
use cpg_arch::Time;
use cpg_path_sched::PathSchedule;
use cpg_table::ScheduleTable;

/// One decision-tree node visited during schedule merging: at this point of
/// the traversal a disjunction process terminated and the value of a new
/// condition became available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeStep {
    /// The conditions decided before this node (the tree path to it).
    pub decided: Cube,
    /// The condition resolved at this node.
    pub condition: CondId,
    /// The completion time of the disjunction process in the schedule that
    /// was current when the node was reached.
    pub resolved_at: Time,
    /// The label of the path whose schedule was current at this node.
    pub current_path: Cube,
    /// `true` when the node was entered through a back-step (the condition
    /// took the value opposite to the current path's).
    pub back_step: bool,
}

/// Counters describing the work done by the merge algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct MergeStats {
    /// Number of decision-tree nodes visited.
    pub tree_nodes: usize,
    /// Number of schedule adjustments performed after back-steps.
    pub adjustments: usize,
    /// Number of activation-time conflicts repaired via the Theorem-2 loop.
    pub conflicts_repaired: usize,
    /// Number of conflicts that could not be repaired by moving the process
    /// to a previously tabled activation time (0 for well-formed inputs; a
    /// non-zero value indicates a requirement-2 violation in the output).
    pub unrepaired_conflicts: usize,
    /// Number of slipped table entries fed back through the Theorem-2
    /// re-placement loop during adjustments: a lock inherited from the table
    /// asked for a start the adjusted path's data dependencies made
    /// impossible (see [`cpg_path_sched::PathSchedule::slipped_locks`]), so
    /// the stale intended time was dropped from the table and the entry was
    /// re-placed at the start the schedule actually achieved.
    pub slip_repairs: usize,
    /// Number of tabled activation times the dispatcher cannot realize that
    /// *survived* slip repair, measured by replaying the final table through
    /// the per-track scheduler (every job locked at its applicable tabled
    /// time on its recorded resource). Slips observed during adjustments are
    /// repaired via [`MergeStats::slip_repairs`] rather than published as
    /// stale intended times, so this is 0 unless a repair could not converge;
    /// a non-zero value means the final table still contains activation
    /// times no run-time scheduler can honour.
    pub lock_slips: usize,
    /// Deepest decision-tree node visited, counted in decided conditions
    /// (the root sits at depth 0, so a node that resolves the first
    /// condition is at depth 1). A structural property of the explored
    /// tree: identical for every thread count and for warm re-merges.
    pub max_walk_depth: usize,
    /// Total iterations of the Theorem-2 slip-repair loop across all
    /// adjustments (each round re-places every slipped entry once). Bounded
    /// by `adjustments * SLIP_REPAIR_ROUNDS`; a high value relative to
    /// [`MergeStats::adjustments`] marks cascading slip repair.
    pub repair_rounds: usize,
}

impl MergeStats {
    /// Folds the counters of another partial into this one. The parallel walk
    /// accumulates per-subtree partials and merges them in tree order, so the
    /// totals are identical to a serial walk for every thread count.
    pub(crate) fn absorb(&mut self, other: MergeStats) {
        self.tree_nodes += other.tree_nodes;
        self.adjustments += other.adjustments;
        self.conflicts_repaired += other.conflicts_repaired;
        self.unrepaired_conflicts += other.unrepaired_conflicts;
        self.slip_repairs += other.slip_repairs;
        self.lock_slips += other.lock_slips;
        // Depth is a maximum, not a sum: absorbing subtree partials in any
        // order reconstructs the same value as a serial walk.
        self.max_walk_depth = self.max_walk_depth.max(other.max_walk_depth);
        self.repair_rounds += other.repair_rounds;
    }
}

/// Whether the generated table honours the paper's requirement 2.
///
/// Requirement 2 demands that every activation time written into the table
/// is one the run-time dispatcher can realize on every path the entry
/// applies to. The merge repairs violations as it goes (the Theorem-2 loop
/// and slip repair), so for well-formed inputs the outcome is
/// [`Realizable`](MergeOutcome::Realizable); a
/// [`Degraded`](MergeOutcome::Degraded) outcome means the table is still a
/// valid worst-case bound but contains activation times some path cannot
/// meet exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeOutcome {
    /// Every tabled activation time is realizable on every applicable path.
    Realizable,
    /// The table violates requirement 2: some conflicts could not be
    /// repaired by re-placement and/or some activation times survived slip
    /// repair unrealized.
    Degraded {
        /// [`MergeStats::unrepaired_conflicts`] of the merge.
        unrepaired_conflicts: usize,
        /// [`MergeStats::lock_slips`] of the merge.
        lock_slips: usize,
    },
}

/// The output of [`generate_schedule_table`](crate::generate_schedule_table).
///
/// # Requirement-2 contract
///
/// The paper's requirement 2 (an activation time stored in the table must be
/// realizable by the dispatcher on every path it applies to) is a *repaired*
/// invariant, not an assumed one: conflicts are re-placed through the
/// Theorem-2 loop and slipped locks are repaired in-column until none
/// survive. Callers that need the strict guarantee must check
/// [`MergeResult::outcome`] (or [`MergeResult::ensure_realizable`]) instead
/// of assuming it — pathological inputs can exhaust the repair loop, and the
/// merge then *returns* the degraded table (with
/// [`MergeStats::unrepaired_conflicts`] / [`MergeStats::lock_slips`]
/// non-zero) rather than panicking, because the table is still a correct
/// worst-case-delay bound.
#[derive(Debug, Clone)]
pub struct MergeResult {
    pub(crate) table: ScheduleTable,
    pub(crate) tracks: TrackSet,
    pub(crate) path_schedules: Vec<PathSchedule>,
    pub(crate) delta_m: Time,
    pub(crate) delta_max: Time,
    pub(crate) steps: Vec<MergeStep>,
    pub(crate) stats: MergeStats,
    pub(crate) spec_discards: usize,
}

impl MergeResult {
    /// The generated schedule table.
    #[must_use]
    pub fn table(&self) -> &ScheduleTable {
        &self.table
    }

    /// The alternative paths of the graph, in enumeration order.
    #[must_use]
    pub fn tracks(&self) -> &TrackSet {
        &self.tracks
    }

    /// The per-path schedules, in the same order as [`MergeResult::tracks`].
    ///
    /// When the merge never observed a slipped lock these are the individual
    /// (near-optimal) schedules of the alternative paths. When it did, the
    /// final realizability sweep replays every track against the finished
    /// table (each job locked at its tabled time on its recorded resource)
    /// and those replays are returned instead: the *realized* per-path
    /// timing, with any surviving unrealizable activation still reported via
    /// [`PathSchedule::slipped_locks`] (their total is
    /// [`MergeStats::lock_slips`]). [`MergeResult::delta_m`] always refers to
    /// the optimal schedules, so the lower bound is unaffected.
    #[must_use]
    pub fn path_schedules(&self) -> &[PathSchedule] {
        &self.path_schedules
    }

    /// The individual schedule of the path with the given label.
    #[must_use]
    pub fn path_schedule(&self, label: &Cube) -> Option<&PathSchedule> {
        self.path_schedules.iter().find(|s| s.label() == *label)
    }

    /// `δ_M`: the delay of the longest individual path — the lower bound on
    /// the worst-case delay of any schedule table.
    #[must_use]
    pub fn delta_m(&self) -> Time {
        self.delta_m
    }

    /// `δ_max`: the worst-case delay guaranteed by the generated table.
    #[must_use]
    pub fn delta_max(&self) -> Time {
        self.delta_max
    }

    /// The relative increase of the worst-case delay over the lower bound,
    /// `(δ_max − δ_M) / δ_M`, in percent — the quality metric of the paper's
    /// Fig. 5.
    #[must_use]
    pub fn overhead_percent(&self) -> f64 {
        if self.delta_m.is_zero() {
            return 0.0;
        }
        let dm = self.delta_m.as_u64() as f64;
        let dmax = self.delta_max.as_u64() as f64;
        (dmax - dm) / dm * 100.0
    }

    /// `true` when the table achieves the lower bound (`δ_max = δ_M`).
    #[must_use]
    pub fn is_zero_overhead(&self) -> bool {
        self.delta_max == self.delta_m
    }

    /// The decision-tree nodes visited during merging, in visit order.
    ///
    /// Empty unless tracing was enabled via
    /// [`MergeConfig::with_trace`](crate::MergeConfig::with_trace) — recording
    /// a step per node costs an allocation on the hot walk, so it is off by
    /// default. The [`stats`](Self::stats) counters are always collected.
    #[must_use]
    pub fn steps(&self) -> &[MergeStep] {
        &self.steps
    }

    /// Counters describing the work done by the algorithm.
    #[must_use]
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// Speculative subtree validations that failed and forced a re-run
    /// against the live table.
    ///
    /// Unlike [`stats`](Self::stats) this is **scheduling-dependent**: it is
    /// always 0 at one thread and varies with the interleaving at higher
    /// thread counts, so it is deliberately kept out of [`MergeStats`] and
    /// excluded from the bit-identity contract the differential suites
    /// check.
    #[must_use]
    pub fn spec_discards(&self) -> usize {
        self.spec_discards
    }

    /// Whether the table honours requirement 2 (see the type-level docs).
    #[must_use]
    pub fn outcome(&self) -> MergeOutcome {
        if self.stats.unrepaired_conflicts == 0 && self.stats.lock_slips == 0 {
            MergeOutcome::Realizable
        } else {
            MergeOutcome::Degraded {
                unrepaired_conflicts: self.stats.unrepaired_conflicts,
                lock_slips: self.stats.lock_slips,
            }
        }
    }

    /// Errors with [`MergeError::UnrepairedConflicts`] unless the outcome is
    /// [`MergeOutcome::Realizable`].
    ///
    /// [`MergeError::UnrepairedConflicts`]: crate::MergeError::UnrepairedConflicts
    pub fn ensure_realizable(&self) -> Result<(), crate::MergeError> {
        match self.outcome() {
            MergeOutcome::Realizable => Ok(()),
            MergeOutcome::Degraded {
                unrepaired_conflicts,
                lock_slips,
            } => Err(crate::MergeError::UnrepairedConflicts {
                count: unrepaired_conflicts + lock_slips,
            }),
        }
    }

    /// The delay of each alternative path under the *generated table* (as
    /// opposed to its individual optimal schedule), in track order.
    #[must_use]
    pub fn table_delays(&self, cpg: &Cpg) -> Vec<(Cube, Time)> {
        self.tracks
            .iter()
            .map(|t| (t.label(), self.table.track_delay(cpg, &t.label())))
            .collect()
    }
}

impl fmt::Display for MergeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "merged {} paths: delta_M = {}, delta_max = {} (+{:.2}%)",
            self.tracks.len(),
            self.delta_m,
            self.delta_max,
            self.overhead_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::enumerate_tracks;

    #[test]
    fn overhead_percent_is_relative_to_delta_m() {
        let system = cpg::examples::diamond();
        let tracks = enumerate_tracks(system.cpg());
        let result = MergeResult {
            table: ScheduleTable::new(),
            tracks,
            path_schedules: Vec::new(),
            delta_m: Time::new(100),
            delta_max: Time::new(107),
            steps: Vec::new(),
            stats: MergeStats::default(),
            spec_discards: 0,
        };
        assert!((result.overhead_percent() - 7.0).abs() < 1e-9);
        assert!(!result.is_zero_overhead());
        assert!(result.to_string().contains("+7.00%"));
    }

    #[test]
    fn zero_delta_m_gives_zero_overhead() {
        let system = cpg::examples::diamond();
        let tracks = enumerate_tracks(system.cpg());
        let result = MergeResult {
            table: ScheduleTable::new(),
            tracks,
            path_schedules: Vec::new(),
            delta_m: Time::ZERO,
            delta_max: Time::ZERO,
            steps: Vec::new(),
            stats: MergeStats::default(),
            spec_discards: 0,
        };
        assert_eq!(result.overhead_percent(), 0.0);
        assert!(result.is_zero_overhead());
    }
}
