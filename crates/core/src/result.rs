//! Result of the table-generation (schedule merging) algorithm.

use std::fmt;

use cpg::{CondId, Cpg, Cube, TrackSet};
use cpg_arch::Time;
use cpg_path_sched::PathSchedule;
use cpg_table::ScheduleTable;

/// One decision-tree node visited during schedule merging: at this point of
/// the traversal a disjunction process terminated and the value of a new
/// condition became available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeStep {
    /// The conditions decided before this node (the tree path to it).
    pub decided: Cube,
    /// The condition resolved at this node.
    pub condition: CondId,
    /// The completion time of the disjunction process in the schedule that
    /// was current when the node was reached.
    pub resolved_at: Time,
    /// The label of the path whose schedule was current at this node.
    pub current_path: Cube,
    /// `true` when the node was entered through a back-step (the condition
    /// took the value opposite to the current path's).
    pub back_step: bool,
}

/// Counters describing the work done by the merge algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct MergeStats {
    /// Number of decision-tree nodes visited.
    pub tree_nodes: usize,
    /// Number of schedule adjustments performed after back-steps.
    pub adjustments: usize,
    /// Number of activation-time conflicts repaired via the Theorem-2 loop.
    pub conflicts_repaired: usize,
    /// Number of conflicts that could not be repaired by moving the process
    /// to a previously tabled activation time (0 for well-formed inputs; a
    /// non-zero value indicates a requirement-2 violation in the output).
    pub unrepaired_conflicts: usize,
    /// Number of slipped table entries fed back through the Theorem-2
    /// re-placement loop during adjustments: a lock inherited from the table
    /// asked for a start the adjusted path's data dependencies made
    /// impossible (see [`cpg_path_sched::PathSchedule::slipped_locks`]), so
    /// the stale intended time was dropped from the table and the entry was
    /// re-placed at the start the schedule actually achieved.
    pub slip_repairs: usize,
    /// Number of tabled activation times the dispatcher cannot realize that
    /// *survived* slip repair, measured by replaying the final table through
    /// the per-track scheduler (every job locked at its applicable tabled
    /// time on its recorded resource). Slips observed during adjustments are
    /// repaired via [`MergeStats::slip_repairs`] rather than published as
    /// stale intended times, so this is 0 unless a repair could not converge;
    /// a non-zero value means the final table still contains activation
    /// times no run-time scheduler can honour.
    pub lock_slips: usize,
}

impl MergeStats {
    /// Folds the counters of another partial into this one. The parallel walk
    /// accumulates per-subtree partials and merges them in tree order, so the
    /// totals are identical to a serial walk for every thread count.
    pub(crate) fn absorb(&mut self, other: MergeStats) {
        self.tree_nodes += other.tree_nodes;
        self.adjustments += other.adjustments;
        self.conflicts_repaired += other.conflicts_repaired;
        self.unrepaired_conflicts += other.unrepaired_conflicts;
        self.slip_repairs += other.slip_repairs;
        self.lock_slips += other.lock_slips;
    }
}

/// The output of [`generate_schedule_table`](crate::generate_schedule_table).
#[derive(Debug, Clone)]
pub struct MergeResult {
    pub(crate) table: ScheduleTable,
    pub(crate) tracks: TrackSet,
    pub(crate) path_schedules: Vec<PathSchedule>,
    pub(crate) delta_m: Time,
    pub(crate) delta_max: Time,
    pub(crate) steps: Vec<MergeStep>,
    pub(crate) stats: MergeStats,
}

impl MergeResult {
    /// The generated schedule table.
    #[must_use]
    pub fn table(&self) -> &ScheduleTable {
        &self.table
    }

    /// The alternative paths of the graph, in enumeration order.
    #[must_use]
    pub fn tracks(&self) -> &TrackSet {
        &self.tracks
    }

    /// The per-path schedules, in the same order as [`MergeResult::tracks`].
    ///
    /// When the merge never observed a slipped lock these are the individual
    /// (near-optimal) schedules of the alternative paths. When it did, the
    /// final realizability sweep replays every track against the finished
    /// table (each job locked at its tabled time on its recorded resource)
    /// and those replays are returned instead: the *realized* per-path
    /// timing, with any surviving unrealizable activation still reported via
    /// [`PathSchedule::slipped_locks`] (their total is
    /// [`MergeStats::lock_slips`]). [`MergeResult::delta_m`] always refers to
    /// the optimal schedules, so the lower bound is unaffected.
    #[must_use]
    pub fn path_schedules(&self) -> &[PathSchedule] {
        &self.path_schedules
    }

    /// The individual schedule of the path with the given label.
    #[must_use]
    pub fn path_schedule(&self, label: &Cube) -> Option<&PathSchedule> {
        self.path_schedules.iter().find(|s| s.label() == *label)
    }

    /// `δ_M`: the delay of the longest individual path — the lower bound on
    /// the worst-case delay of any schedule table.
    #[must_use]
    pub fn delta_m(&self) -> Time {
        self.delta_m
    }

    /// `δ_max`: the worst-case delay guaranteed by the generated table.
    #[must_use]
    pub fn delta_max(&self) -> Time {
        self.delta_max
    }

    /// The relative increase of the worst-case delay over the lower bound,
    /// `(δ_max − δ_M) / δ_M`, in percent — the quality metric of the paper's
    /// Fig. 5.
    #[must_use]
    pub fn overhead_percent(&self) -> f64 {
        if self.delta_m.is_zero() {
            return 0.0;
        }
        let dm = self.delta_m.as_u64() as f64;
        let dmax = self.delta_max.as_u64() as f64;
        (dmax - dm) / dm * 100.0
    }

    /// `true` when the table achieves the lower bound (`δ_max = δ_M`).
    #[must_use]
    pub fn is_zero_overhead(&self) -> bool {
        self.delta_max == self.delta_m
    }

    /// The decision-tree nodes visited during merging, in visit order.
    ///
    /// Empty unless tracing was enabled via
    /// [`MergeConfig::with_trace`](crate::MergeConfig::with_trace) — recording
    /// a step per node costs an allocation on the hot walk, so it is off by
    /// default. The [`stats`](Self::stats) counters are always collected.
    #[must_use]
    pub fn steps(&self) -> &[MergeStep] {
        &self.steps
    }

    /// Counters describing the work done by the algorithm.
    #[must_use]
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// The delay of each alternative path under the *generated table* (as
    /// opposed to its individual optimal schedule), in track order.
    #[must_use]
    pub fn table_delays(&self, cpg: &Cpg) -> Vec<(Cube, Time)> {
        self.tracks
            .iter()
            .map(|t| (t.label(), self.table.track_delay(cpg, &t.label())))
            .collect()
    }
}

impl fmt::Display for MergeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "merged {} paths: delta_M = {}, delta_max = {} (+{:.2}%)",
            self.tracks.len(),
            self.delta_m,
            self.delta_max,
            self.overhead_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::enumerate_tracks;

    #[test]
    fn overhead_percent_is_relative_to_delta_m() {
        let system = cpg::examples::diamond();
        let tracks = enumerate_tracks(system.cpg());
        let result = MergeResult {
            table: ScheduleTable::new(),
            tracks,
            path_schedules: Vec::new(),
            delta_m: Time::new(100),
            delta_max: Time::new(107),
            steps: Vec::new(),
            stats: MergeStats::default(),
        };
        assert!((result.overhead_percent() - 7.0).abs() < 1e-9);
        assert!(!result.is_zero_overhead());
        assert!(result.to_string().contains("+7.00%"));
    }

    #[test]
    fn zero_delta_m_gives_zero_overhead() {
        let system = cpg::examples::diamond();
        let tracks = enumerate_tracks(system.cpg());
        let result = MergeResult {
            table: ScheduleTable::new(),
            tracks,
            path_schedules: Vec::new(),
            delta_m: Time::ZERO,
            delta_max: Time::ZERO,
            steps: Vec::new(),
            stats: MergeStats::default(),
        };
        assert_eq!(result.overhead_percent(), 0.0);
        assert!(result.is_zero_overhead());
    }
}
