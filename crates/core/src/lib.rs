//! Schedule-table generation for conditional process graphs — the primary
//! contribution of Eles, Kuchcinski, Peng, Doboli and Pop, *"Scheduling of
//! Conditional Process Graphs for the Synthesis of Embedded Systems"*
//! (DATE 1998).
//!
//! Given a conditional process graph mapped onto a heterogeneous architecture
//! (processors, ASICs and shared buses), [`generate_schedule_table`] produces
//! a [`ScheduleTable`](cpg_table::ScheduleTable) that a trivial distributed
//! run-time scheduler can execute deterministically for *any* combination of
//! condition values, while keeping the guaranteed worst-case delay `δ_max` as
//! close as possible to the lower bound `δ_M` (the delay of the longest
//! individual path).
//!
//! The algorithm merges the individually scheduled alternative paths along a
//! binary decision tree explored depth-first, giving priority after every
//! back-step to the reachable path with the largest delay, locking activation
//! times that the table has already fixed, and repairing determinism conflicts
//! by moving processes to previously tabled activation times (Theorem 2 of the
//! paper).
//!
//! Every phase is parallel: the embarrassingly parallel ones — per-track
//! context construction, the initial per-path schedules and the final
//! realizability sweep — fan out over a fixed-size worker pool (the vendored
//! `fj` fork-join shim) with one reusable scratch arena per worker, and the
//! decision-tree walk itself runs sibling subtrees speculatively over
//! transactional views of the schedule table
//! ([`TableTxn`](cpg_table::TableTxn)), committing their write logs in tree
//! order. The thread count comes from [`MergeConfig::with_threads`] (default:
//! `CPG_MERGE_THREADS`, parsed by [`threads_from_env`], else available
//! parallelism; `1` forces the serial path) and the merged output is
//! bit-identical for every thread count.
//!
//! A condition-oblivious baseline ([`condition_oblivious_baseline`]) is also
//! provided for comparison.
//!
//! # Example
//!
//! ```
//! use cpg::examples;
//! use cpg_merge::{generate_schedule_table, MergeConfig};
//!
//! let system = examples::fig1();
//! let result = generate_schedule_table(
//!     system.cpg(),
//!     system.arch(),
//!     &MergeConfig::new(system.broadcast_time()),
//! );
//!
//! println!("{}", result.table().render(system.cpg()));
//! assert!(result.delta_max() >= result.delta_m());
//! assert!(result.overhead_percent() < 100.0);
//! ```

#![forbid(unsafe_code)]

mod baseline;
mod config;
mod error;
mod merge;
mod result;
mod session;

pub use baseline::{condition_oblivious_baseline, BaselineResult};
#[cfg(any(test, feature = "test-util"))]
pub use config::with_env_var;
pub use config::{threads_from_env, MergeConfig, SelectionPolicy};
pub use error::{validate_system, MergeError};
#[cfg(any(test, feature = "test-util"))]
pub use merge::generate_schedule_table_cloning;
#[cfg(any(test, feature = "test-util"))]
pub use merge::sabotage;
pub use merge::{
    generate_schedule_table, generate_schedule_table_for_tracks, try_generate_schedule_table,
};
pub use result::{MergeOutcome, MergeResult, MergeStats, MergeStep};
pub use session::{MergeSession, ReuseStats};
