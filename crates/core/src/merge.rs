//! The table-generation (schedule merging) algorithm — Sections 4 and 5 of
//! the paper.
//!
//! Scheduling of a conditional process graph is performed in two steps:
//!
//! 1. every alternative path is scheduled individually (the `cpg-path-sched`
//!    crate);
//! 2. the individual schedules are merged into the global schedule table —
//!    this module.
//!
//! The merge proceeds along the binary decision tree spanned by the condition
//! values, explored depth-first. The nodes of the tree are the moments at
//! which a disjunction process of the *current* schedule terminates and a new
//! condition value becomes known. The algorithm follows the four rules of
//! Section 5.1:
//!
//! 1. start times are fixed in the table according, with priority, to the
//!    reachable path with the largest delay;
//! 2. each start time is placed in the column headed by the conjunction of
//!    the condition values known at that moment on the processing element
//!    that executes the process;
//! 3. after a back-step the newly selected schedule is *adjusted*: processes
//!    whose activation time was already fixed in a column that depends only
//!    on conditions decided at ancestor tree nodes are locked to that time
//!    and the remaining processes are rescheduled around them;
//! 4. conflicts with requirement 2 of Section 3 are repaired by moving the
//!    process to one of the previously tabled activation times (the loop
//!    justified by Theorem 2).

use cpg::{enumerate_tracks, Assignment, CondId, Cpg, Cube, Track, TrackSet};
use cpg_arch::{Architecture, PeId, Time};
use cpg_path_sched::{
    Job, ListScheduler, LockSet, PathSchedule, RunScratch, SlippedLock, TrackContext,
};
use cpg_table::ScheduleTable;

use crate::config::{MergeConfig, SelectionPolicy};
use crate::result::{MergeResult, MergeStats, MergeStep};

/// Generates the schedule table of a conditional process graph.
///
/// The graph must already contain its communication processes (see
/// [`cpg::expand_communications`]); `arch` is the target architecture the
/// processes are mapped on and `config` carries the condition-broadcast time
/// `τ0` and the path-selection policy.
///
/// The returned [`MergeResult`] bundles the table, the per-path schedules,
/// the lower bound `δ_M`, the guaranteed worst-case delay `δ_max` and
/// statistics about the merge.
///
/// # Example
///
/// ```
/// use cpg::examples;
/// use cpg_merge::{generate_schedule_table, MergeConfig};
///
/// let system = examples::fig1();
/// let result = generate_schedule_table(
///     system.cpg(),
///     system.arch(),
///     &MergeConfig::new(system.broadcast_time()),
/// );
/// assert_eq!(result.tracks().len(), 6);
/// assert!(result.delta_max() >= result.delta_m());
/// result
///     .table()
///     .verify(system.cpg(), result.tracks())
///     .expect("the generated table satisfies requirements 1-3");
/// ```
#[must_use]
pub fn generate_schedule_table(
    cpg: &Cpg,
    arch: &Architecture,
    config: &MergeConfig,
) -> MergeResult {
    let tracks = enumerate_tracks(cpg);
    generate_schedule_table_for_tracks(cpg, arch, config, tracks)
}

/// Variant of [`generate_schedule_table`] that reuses already enumerated
/// tracks (useful when the caller needs the track set for other purposes and
/// wants to avoid enumerating it twice).
#[must_use]
pub fn generate_schedule_table_for_tracks(
    cpg: &Cpg,
    arch: &Architecture,
    config: &MergeConfig,
    tracks: TrackSet,
) -> MergeResult {
    let scheduler = ListScheduler::new(cpg, arch, config.broadcast_time());
    let threads = config.effective_threads();
    // One dense scheduling context per track, reused across the initial
    // per-path schedules and every adjustment/repair of the merge below.
    // Both the context construction and the initial schedules are
    // embarrassingly parallel across tracks, so they fan out over the
    // fork-join shim with one scratch arena per worker; `threads == 1` runs
    // the plain serial loop on this thread. The reduction is by track index,
    // so the result is bit-identical for every thread count.
    let built: Vec<(TrackContext, PathSchedule)> = fj::map_with(
        threads,
        tracks.tracks(),
        RunScratch::new,
        |scratch, _, track| {
            let context = scheduler.context(track);
            let schedule = context.schedule_with(scratch);
            (context, schedule)
        },
    );
    let (contexts, optimal): (Vec<TrackContext>, Vec<PathSchedule>) = built.into_iter().unzip();
    let delta_m = optimal
        .iter()
        .map(PathSchedule::delay)
        .max()
        .unwrap_or(Time::ZERO);

    let mut merger = Merger {
        cpg,
        config,
        threads,
        contexts: &contexts,
        tracks: &tracks,
        optimal: &optimal,
        table: ScheduleTable::new(),
        steps: Vec::new(),
        stats: MergeStats::default(),
        saw_slip: false,
        scratch: RunScratch::new(),
        realized: None,
    };
    merger.run();
    let Merger {
        table,
        steps,
        stats,
        realized,
        ..
    } = merger;

    let delta_max = table.worst_case_delay(cpg, &tracks);
    MergeResult {
        table,
        tracks,
        // When the realizability sweep ran, its replays carry the per-path
        // timing the table actually realizes; otherwise no lock ever slipped
        // and the optimal schedules are exact.
        path_schedules: realized.unwrap_or(optimal),
        delta_m,
        delta_max,
        steps,
        stats,
    }
}

/// Outcome of placing one activation time into the table.
enum Placement {
    /// The activation time was placed (or was already present) at the
    /// schedule's own start time, on the recorded resource.
    Kept(Option<PeId>),
    /// A conflict forced the process to a previously tabled activation time
    /// (carrying the resource recorded for that entry); the current schedule
    /// must be re-adjusted around the new time.
    Moved(Time, Option<PeId>),
}

/// Upper bound on reschedule → re-place rounds per adjustment. Every round
/// either moves a slipped lock to its strictly later achievable start or to a
/// previously tabled candidate, so the loop converges quickly in practice;
/// the cap only guards against pathological oscillation between candidates.
const SLIP_REPAIR_ROUNDS: usize = 16;

struct Merger<'a> {
    cpg: &'a Cpg,
    config: &'a MergeConfig,
    /// Worker threads for the parallel phases (resolved once up front so the
    /// whole merge sees one consistent count).
    threads: usize,
    contexts: &'a [TrackContext<'a>],
    tracks: &'a TrackSet,
    optimal: &'a [PathSchedule],
    table: ScheduleTable,
    steps: Vec<MergeStep>,
    stats: MergeStats,
    /// `true` once any adjustment reported a slipped lock; gates the final
    /// realizability sweep that computes [`MergeStats::lock_slips`].
    saw_slip: bool,
    /// Scratch arena for the serial decision-tree walk (adjustments and
    /// repairs re-run the scheduler through it; the parallel phases pool
    /// their own arenas per worker).
    scratch: RunScratch,
    /// Per-track replays produced by the realizability sweep: the schedules
    /// the final table actually realizes, seeded into
    /// [`MergeResult::path_schedules`] so callers see realized (not just
    /// intended) per-path timing. `None` when no slip was ever observed.
    realized: Option<Vec<PathSchedule>>,
}

impl Merger<'_> {
    fn run(&mut self) {
        let decided = Assignment::new();
        let root = self
            .select_track(&decided)
            .expect("a valid graph has at least one alternative path");
        let schedule = self.optimal[root].clone();
        let fixed = LockSet::for_graph(self.cpg);
        self.walk(root, schedule, decided, fixed);
        // Adjustments that slipped fed the divergent entries back through the
        // Theorem-2 re-placement loop; whatever the repairs could not absorb
        // is what the final table still cannot realize. Replaying the table
        // through the scheduler gives the exact surviving count (0 whenever
        // no slip was ever observed, so the sweep is skipped then) — and the
        // replays themselves are the realized per-path schedules, so they are
        // kept instead of thrown away.
        if self.saw_slip {
            let replays = self.residual_replays();
            self.stats.lock_slips = replays
                .iter()
                .map(|replay| replay.slipped_locks().len())
                .sum();
            self.realized = Some(replays);
        }
    }

    /// Re-schedules a track around the locked activation times, feeding every
    /// slipped lock back through the Theorem-2 re-placement loop: the stale
    /// intended time is dropped from the table, the job is re-placed at the
    /// start it can actually achieve (or moved to a previously tabled time by
    /// the conflict repair), the lock is updated, and the track is
    /// re-adjusted — until no lock slips or the round cap is reached.
    fn adjust(
        &mut self,
        track_idx: usize,
        locks: &mut LockSet,
        decided: &Assignment,
    ) -> PathSchedule {
        let mut adjusted = self.contexts[track_idx].reschedule_with(
            &mut self.scratch,
            &self.optimal[track_idx],
            locks,
        );
        let mut rounds = 0;
        while !adjusted.slipped_locks().is_empty() && rounds < SLIP_REPAIR_ROUNDS {
            self.saw_slip = true;
            let slips: Vec<SlippedLock> = adjusted.slipped_locks().to_vec();
            let mut progressed = false;
            for slip in &slips {
                progressed |= self.repair_slip(&adjusted, decided, slip, locks);
            }
            if !progressed {
                break;
            }
            adjusted = self.contexts[track_idx].reschedule_with(
                &mut self.scratch,
                &self.optimal[track_idx],
                locks,
            );
            rounds += 1;
        }
        self.saw_slip |= !adjusted.slipped_locks().is_empty();
        adjusted
    }

    /// Repairs one slipped lock by re-timing the stale tabled entries the
    /// lock was derived from.
    ///
    /// The stale entries are every tabled time of the job equal to the
    /// slipped intended time in a column compatible with the conditions
    /// decided on this tree path. They are updated *in their own columns*
    /// rather than removed: a lock inherited at a back-step always comes from
    /// an ancestor-dependent column that also covers the sibling subtrees, so
    /// dropping the entry (or refining its column with conditions unknown at
    /// activation time) would strip those subtrees of their activation or
    /// violate requirement 4. The replacement time follows the Theorem-2
    /// discipline: one of the previously tabled activation times of the job
    /// that the adjusted schedule can actually reach, falling back to the
    /// start the schedule achieved when no tabled time is achievable. The
    /// caller re-runs the scheduler with the updated lock; a repair that is
    /// still too early slips again and is re-timed in the next round.
    ///
    /// Returns `false` when no stale entry could be located (the slip then
    /// survives as-is and is picked up by the final realizability sweep).
    fn repair_slip(
        &mut self,
        schedule: &PathSchedule,
        decided: &Assignment,
        slip: &SlippedLock,
        locks: &mut LockSet,
    ) -> bool {
        let job = slip.job();
        let decided_cube = decided.to_cube();
        let mut stale: Vec<Cube> = self
            .table
            .entries(job)
            .filter(|&(column, time)| time == slip.intended() && column.compatible(&decided_cube))
            .map(|(column, _)| column)
            .collect();
        if stale.is_empty() {
            return false;
        }
        // Closure over compatible same-time columns: an execution can satisfy
        // a stale column together with any column compatible with it, so
        // every entry at the intended time that overlaps the rewritten set
        // must move along or requirement 2 (one time per execution) breaks.
        loop {
            let more: Vec<Cube> = self
                .table
                .entries(job)
                .filter(|&(column, time)| {
                    time == slip.intended()
                        && !stale.contains(&column)
                        && stale.iter().any(|s| s.compatible(&column))
                })
                .map(|(column, _)| column)
                .collect();
            if more.is_empty() {
                break;
            }
            stale.extend(more);
        }

        // Theorem 2: prefer one of the previously tabled activation times of
        // this job that the adjusted schedule can reach; invent a new time
        // only when none is achievable.
        let mut target = slip.actual();
        let mut target_pe = schedule.entry(job).and_then(|sj| sj.pe());
        let tabled_candidate = self
            .table
            .entries_on(job)
            .filter(|(column, time, _)| {
                *time >= slip.actual()
                    && *time != slip.intended()
                    && column.compatible(&decided_cube)
            })
            .min_by_key(|&(_, time, _)| time);
        if let Some((_, time, resource)) = tabled_candidate {
            target = time;
            target_pe = resource.or(target_pe);
        }

        for column in &stale {
            self.table.set_on(job, *column, target, target_pe);
        }
        locks.insert_pinned(job, target, target_pe);
        self.stats.slip_repairs += 1;
        true
    }

    /// Replays the final table through the per-track scheduler: every job of
    /// every track is locked at its applicable tabled time (pinned to the
    /// recorded resource) and rescheduled. Any lock the scheduler cannot
    /// honour is an activation time the dispatcher cannot realize — the
    /// total slip count over the returned replays is what
    /// [`MergeStats::lock_slips`] reports — and the replays themselves are
    /// the *realized* per-path schedules under the final table, seeded into
    /// [`MergeResult::path_schedules`].
    ///
    /// The tracks are independent, so the sweep fans out over the fork-join
    /// shim with one scratch arena per worker; the reduction is by track
    /// index, keeping the result identical for every thread count.
    fn residual_replays(&self) -> Vec<PathSchedule> {
        fj::map_with(
            self.threads,
            self.tracks.tracks(),
            RunScratch::new,
            |scratch, idx, track| {
                let assignment = Assignment::from_cube(&track.label());
                let mut locks = LockSet::for_graph(self.cpg);
                for job in self.track_jobs(track) {
                    if let Some(time) = self.table.activation_time(job, &assignment) {
                        let pe = self.table.activation_resource(job, &assignment);
                        locks.insert_pinned(job, time, pe);
                    }
                }
                self.contexts[idx].reschedule_with(scratch, &self.optimal[idx], &locks)
            },
        )
    }

    /// Picks the reachable path used as the current schedule at a decision
    /// tree node (rule 1 / the selection policy of the configuration).
    fn select_track(&self, decided: &Assignment) -> Option<usize> {
        let reachable = self
            .tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.label().consistent_with(decided));
        match self.config.selection() {
            SelectionPolicy::LongestDelayFirst => reachable
                .max_by_key(|(i, _)| (self.optimal[*i].delay(), usize::MAX - *i))
                .map(|(i, _)| i),
            SelectionPolicy::ShortestDelayFirst => reachable
                .min_by_key(|(i, _)| (self.optimal[*i].delay(), *i))
                .map(|(i, _)| i),
            SelectionPolicy::EnumerationOrder => reachable.map(|(i, _)| i).next(),
        }
    }

    /// Depth-first traversal of the decision tree (the `BuildScheduleTable`
    /// procedure of the paper's Fig. 3), with the current schedule, the
    /// conditions decided so far and the activation times already fixed along
    /// this tree path.
    fn walk(
        &mut self,
        track_idx: usize,
        schedule: PathSchedule,
        decided: Assignment,
        mut fixed: LockSet,
    ) {
        let mut schedule = schedule;
        let label = self.tracks.tracks()[track_idx].label();

        // Place activation times until the next undecided condition is
        // resolved (or the schedule ends). Conflict repairs re-adjust the
        // schedule, in which case the placement scan restarts.
        let next = loop {
            // The scheduler caches the resolutions sorted by (time, cond),
            // so the first undecided one is the earliest.
            let next = schedule
                .resolutions()
                .iter()
                .copied()
                .find(|(c, _)| decided.value(*c).is_none());
            let horizon = next.map(|(_, t)| t);

            let mut repaired = false;
            // Indexed scan: repairs replace `schedule` and restart the loop,
            // so no snapshot of the job list is needed.
            for i in 0..schedule.len() {
                let sj = schedule.jobs()[i];
                if let Some(h) = horizon {
                    if sj.start() >= h {
                        break;
                    }
                }
                if fixed.contains(sj.job()) {
                    continue;
                }
                if let Some(pid) = sj.job().as_process() {
                    if self.cpg.process(pid).kind().is_dummy() {
                        fixed.insert(sj.job(), sj.start());
                        continue;
                    }
                }
                match self.place(&schedule, &decided, sj.job(), sj.start(), sj.pe()) {
                    Placement::Kept(resource) => {
                        fixed.insert_pinned(sj.job(), sj.start(), resource);
                    }
                    Placement::Moved(new_time, resource) => {
                        fixed.insert_pinned(sj.job(), new_time, resource);
                        schedule = self.adjust(track_idx, &mut fixed, &decided);
                        repaired = true;
                        break;
                    }
                }
            }
            if !repaired {
                break next;
            }
        };

        // End of schedule: every condition of this path has been decided and
        // all activation times are placed.
        let Some((condition, resolved_at)) = next else {
            return;
        };

        let value = label
            .polarity_of(condition)
            .expect("a condition resolved on a path appears in its label");

        // Continue with the same schedule: the condition takes the value of
        // the current path (no back-step).
        self.stats.tree_nodes += 1;
        self.steps.push(MergeStep {
            decided: decided.to_cube(),
            condition,
            resolved_at,
            current_path: label,
            back_step: false,
        });
        let mut decided_fwd = decided.clone();
        decided_fwd.assign(condition, value);
        self.walk(track_idx, schedule, decided_fwd, fixed.clone());

        // Back-step: the condition takes the opposite value; a new current
        // schedule is selected among the reachable paths and adjusted.
        let mut decided_back = decided.clone();
        decided_back.assign(condition, !value);
        let Some(new_idx) = self.select_track(&decided_back) else {
            return;
        };
        let mut locks = self.locks_from_table(new_idx, &decided, &decided_back);
        let adjusted = self.adjust(new_idx, &mut locks, &decided_back);
        self.stats.tree_nodes += 1;
        self.stats.adjustments += 1;
        self.steps.push(MergeStep {
            decided: decided.to_cube(),
            condition,
            resolved_at,
            current_path: self.tracks.tracks()[new_idx].label(),
            back_step: true,
        });
        self.walk(new_idx, adjusted, decided_back, locks);
    }

    /// Rule 3: activation times already fixed in columns that depend only on
    /// conditions decided at ancestor nodes are enforced on the newly
    /// selected schedule, pinned to the resource recorded when the time was
    /// tabled — a lock inherited from another path's adjusted schedule must
    /// occupy the bus that schedule used, not a track-local guess.
    fn locks_from_table(
        &self,
        track_idx: usize,
        ancestors: &Assignment,
        decided: &Assignment,
    ) -> LockSet {
        let track = &self.tracks.tracks()[track_idx];
        let decided_cube = decided.to_cube();
        let mut locks = LockSet::for_graph(self.cpg);
        for job in self.track_jobs(track) {
            let mut best: Option<(usize, Time, Option<PeId>)> = None;
            for (column, time, resource) in self.table.entries_on(job) {
                let ancestors_only = column.conditions().all(|c| ancestors.value(c).is_some());
                if ancestors_only && decided_cube.implies(&column) {
                    let specificity = column.len();
                    if best.is_none_or(|(len, _, _)| specificity > len) {
                        best = Some((specificity, time, resource));
                    }
                }
            }
            if let Some((_, time, resource)) = best {
                locks.insert_pinned(job, time, resource);
            }
        }
        locks
    }

    /// The jobs that can appear on a track: its processes (except the
    /// dummies) and the broadcasts of the conditions it determines.
    fn track_jobs(&self, track: &Track) -> Vec<Job> {
        let mut jobs: Vec<Job> = track
            .processes()
            .iter()
            .filter(|&&p| !self.cpg.process(p).kind().is_dummy())
            .map(|&p| Job::Process(p))
            .collect();
        jobs.extend(track.determined_conditions().map(Job::Broadcast));
        jobs
    }

    /// Rules 2 and 4: place one activation time, repairing conflicts by the
    /// Theorem-2 loop when necessary.
    fn place(
        &mut self,
        schedule: &PathSchedule,
        decided: &Assignment,
        job: Job,
        start: Time,
        pe: Option<PeId>,
    ) -> Placement {
        let column = self.column_for(schedule, decided, pe, start);
        let conflicting: Vec<(Time, Option<PeId>)> = self
            .table
            .entries_on(job)
            .filter(|(existing, t, _)| existing.compatible(&column) && *t != start)
            .map(|(_, t, resource)| (t, resource))
            .collect();

        if conflicting.is_empty() {
            let resource = if self.table.get(job, &column) == Some(start) {
                self.table.resource(job, &column).or(pe)
            } else {
                // Compatible cells at the same time must agree on the
                // recorded resource: an execution satisfying two compatible
                // columns dispatches the activation once, on one resource, so
                // the first recorded provenance wins over the track-local
                // choice of later schedules.
                let resource = self
                    .table
                    .entries_on(job)
                    .find(|(existing, time, recorded)| {
                        *time == start && recorded.is_some() && existing.compatible(&column)
                    })
                    .and_then(|(_, _, recorded)| recorded)
                    .or(pe);
                self.table.set_on(job, column, start, resource);
                resource
            };
            return Placement::Kept(resource);
        }

        // Theorem 2: one of the previously tabled activation times of this
        // process avoids every conflict. Moving to a tabled time also adopts
        // the resource recorded for it — that is where the job proved to fit.
        let mut candidates: Vec<(Time, Option<PeId>)> = conflicting;
        candidates.sort_unstable_by_key(|&(t, _)| t);
        candidates.dedup_by_key(|&mut (t, _)| t);
        for (candidate, resource) in candidates {
            let moved_column = self.column_for(schedule, decided, pe, candidate);
            let still_conflicts = self
                .table
                .compatible_entries(job, &moved_column)
                .any(|(_, t)| t != candidate);
            if !still_conflicts {
                if self.table.get(job, &moved_column) != Some(candidate) {
                    self.table.set_on(job, moved_column, candidate, resource);
                }
                self.stats.conflicts_repaired += 1;
                return Placement::Moved(candidate, resource);
            }
        }

        // Should not happen for well-formed inputs (Theorem 2); keep the
        // original time and record the requirement-2 violation.
        self.stats.unrepaired_conflicts += 1;
        self.table.set_on(job, column, start, pe);
        Placement::Kept(pe)
    }

    /// Rule 2: the column of an activation at time `t` on processing element
    /// `pe` is the conjunction of the condition values that are known on `pe`
    /// at `t` according to the current schedule, restricted to the conditions
    /// already decided along the current tree path.
    fn column_for(
        &self,
        schedule: &PathSchedule,
        decided: &Assignment,
        pe: Option<PeId>,
        t: Time,
    ) -> Cube {
        schedule
            .known_conditions(self.cpg, pe, t)
            .retain(|c: CondId| decided.value(c).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::examples;

    fn merge(system: &examples::ExampleSystem) -> MergeResult {
        generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(system.broadcast_time()),
        )
    }

    #[test]
    fn diamond_table_is_correct_and_tight() {
        let system = examples::diamond();
        let result = merge(&system);
        result
            .table()
            .verify(system.cpg(), result.tracks())
            .unwrap();
        assert_eq!(result.tracks().len(), 2);
        assert!(result.delta_max() >= result.delta_m());
        assert_eq!(result.stats().unrepaired_conflicts, 0);
        // The longest path keeps exactly its optimal delay (the guarantee of
        // the merging strategy).
        let longest = result
            .path_schedules()
            .iter()
            .map(PathSchedule::delay)
            .max()
            .unwrap();
        assert_eq!(result.delta_m(), longest);
        let worst_track = result
            .tracks()
            .iter()
            .map(|t| result.table().track_delay(system.cpg(), &t.label()))
            .max()
            .unwrap();
        assert_eq!(worst_track, result.delta_max());
    }

    #[test]
    fn sensor_actuator_table_is_correct() {
        let system = examples::sensor_actuator();
        let result = merge(&system);
        result
            .table()
            .verify(system.cpg(), result.tracks())
            .unwrap();
        assert_eq!(result.tracks().len(), 3);
        assert_eq!(result.stats().unrepaired_conflicts, 0);
        assert!(result.delta_max() >= result.delta_m());
    }

    #[test]
    fn fig1_reproduces_the_papers_headline_behaviour() {
        let system = examples::fig1();
        let result = merge(&system);
        result
            .table()
            .verify(system.cpg(), result.tracks())
            .unwrap();
        assert_eq!(result.tracks().len(), 6);
        assert_eq!(result.stats().unrepaired_conflicts, 0);
        // For the Fig. 1 example the paper obtains delta_max = delta_M = 39:
        // the table's worst case equals the longest individual path. The
        // reconstruction should also achieve (near-)zero overhead.
        assert!(result.delta_max() >= result.delta_m());
        assert!(
            result.overhead_percent() <= 10.0,
            "overhead {:.2}% unexpectedly large",
            result.overhead_percent()
        );
        // Unconditionally activated processes sit in the `true` column.
        let p1 = system.cpg().process_by_name("P1").unwrap();
        assert!(result
            .table()
            .entries(Job::Process(p1))
            .any(|(col, _)| col.is_top()));
    }

    #[test]
    fn fig1_longest_path_keeps_its_optimal_delay() {
        let system = examples::fig1();
        let result = merge(&system);
        // The strategy guarantees the longest path executes in exactly
        // delta_M time.
        let (longest_label, longest_delay) = result
            .path_schedules()
            .iter()
            .map(|s| (s.label(), s.delay()))
            .max_by_key(|&(_, d)| d)
            .unwrap();
        assert_eq!(longest_delay, result.delta_m());
        assert_eq!(
            result.table().track_delay(system.cpg(), &longest_label),
            result.delta_m()
        );
    }

    #[test]
    fn decision_tree_has_one_forward_and_one_back_step_per_node() {
        let system = examples::fig1();
        let result = merge(&system);
        let forward = result.steps().iter().filter(|s| !s.back_step).count();
        let back = result.steps().iter().filter(|s| s.back_step).count();
        assert_eq!(forward, back);
        // A binary tree with N_alt = 6 leaves has 5 internal nodes, each
        // visited once in each direction.
        assert_eq!(forward, result.tracks().len() - 1);
        assert_eq!(result.stats().tree_nodes, forward + back);
        assert_eq!(result.stats().adjustments, back);
    }

    #[test]
    fn every_track_has_an_activation_for_each_of_its_processes() {
        let system = examples::fig1();
        let result = merge(&system);
        let table = result.table();
        for track in result.tracks().iter() {
            for &pid in track.processes() {
                if system.cpg().process(pid).kind().is_dummy() {
                    continue;
                }
                assert!(
                    table
                        .activation_on_track(Job::Process(pid), &track.label())
                        .is_some(),
                    "{} missing on {}",
                    system.cpg().process(pid).name(),
                    track.label()
                );
            }
        }
    }

    #[test]
    fn broadcast_rows_exist_for_every_condition() {
        let system = examples::fig1();
        let result = merge(&system);
        for cond in system.cpg().conditions() {
            assert!(
                result.table().contains_job(Job::Broadcast(cond)),
                "broadcast row for {} missing",
                system.cpg().condition_name(cond)
            );
        }
    }

    #[test]
    fn selection_policies_affect_quality_but_not_correctness() {
        let system = examples::fig1();
        let base = MergeConfig::new(system.broadcast_time());
        let policies = [
            SelectionPolicy::LongestDelayFirst,
            SelectionPolicy::ShortestDelayFirst,
            SelectionPolicy::EnumerationOrder,
        ];
        for policy in policies {
            let result =
                generate_schedule_table(system.cpg(), system.arch(), &base.with_selection(policy));
            // Every policy produces a correct table; only the delay differs.
            result
                .table()
                .verify(system.cpg(), result.tracks())
                .unwrap();
            assert_eq!(result.stats().unrepaired_conflicts, 0);
        }
        // The paper's policy guarantees the longest path keeps its optimal
        // delay, i.e. zero overhead for the Fig. 1 example (the paper reports
        // delta_max = delta_M = 39 for its exact graph).
        let paper_policy = generate_schedule_table(system.cpg(), system.arch(), &base);
        assert!(paper_policy.is_zero_overhead());
    }

    /// Crafted system where an inherited lock *must* slip: `victim` runs
    /// early on the longest path (tabled in the `true` column before the
    /// condition resolves), but on the opposite branch it additionally
    /// consumes the output of `slow`, which can only start after `!C` is
    /// known — long after the tabled time. The merge has to feed the slipped
    /// entry back through the repair loop: the final table may not keep the
    /// stale early time.
    fn slipping_system() -> (Architecture, Cpg) {
        use cpg::CpgBuilder;
        let arch = Architecture::builder()
            .processor("cpu0")
            .processor("cpu1")
            .bus("bus")
            .build()
            .unwrap();
        let cpu0 = arch.pe_by_name("cpu0").unwrap();
        let cpu1 = arch.pe_by_name("cpu1").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let root = b.process("root", Time::new(10), cpu0);
        let quick = b.process("quick", Time::new(1), cpu1);
        let victim = b.process("victim", Time::new(2), cpu1);
        let slow = b.process("slow", Time::new(3), cpu1);
        let tail = b.process("tail", Time::new(20), cpu0);
        b.simple_edge(quick, victim, Time::ZERO);
        b.conditional_edge(root, slow, c.is_false(), Time::ZERO);
        b.conditional_edge(root, tail, c.is_true(), Time::ZERO);
        b.simple_edge(slow, victim, Time::ZERO);
        // `victim` joins the two alternatives: it executes on every path and
        // waits for `slow` only where `slow` runs.
        b.mark_conjunction(victim);
        let cpg = b.build(&arch).unwrap();
        (arch, cpg)
    }

    #[test]
    fn inherited_lock_that_must_slip_is_repaired_in_the_table() {
        use cpg_path_sched::LockSet;
        let (arch, cpg) = slipping_system();
        let result = generate_schedule_table(&cpg, &arch, &MergeConfig::new(Time::new(2)));
        let stats = result.stats();
        assert!(
            stats.slip_repairs > 0,
            "the crafted lock never slipped: {stats:?}"
        );
        assert_eq!(
            stats.lock_slips,
            0,
            "a slip survived repair: {stats:?}\n{}",
            result.table().render(&cpg)
        );

        // The stale early activation is gone: on every path the tabled time
        // of `victim` is at or after the moment its inputs can arrive on the
        // slow branch.
        let victim = Job::Process(cpg.process_by_name("victim").unwrap());
        let slow = Job::Process(cpg.process_by_name("slow").unwrap());
        let table = result.table();
        table.verify(&cpg, result.tracks()).unwrap();
        let not_c = result
            .tracks()
            .iter()
            .find(|t| t.processes().contains(&slow.as_process().unwrap()))
            .unwrap()
            .label();
        let victim_at = table.activation_on_track(victim, &not_c).unwrap();
        let slow_at = table.activation_on_track(slow, &not_c).unwrap();
        assert!(
            victim_at >= slow_at + cpg.exec_time(slow.as_process().unwrap()),
            "victim tabled at {victim_at} before slow completes"
        );

        // Replaying the final table through the per-track scheduler honours
        // every activation time: the table is realizable end to end.
        let scheduler = ListScheduler::new(&cpg, &arch, Time::new(2));
        for track in result.tracks().iter() {
            let assignment = Assignment::from_cube(&track.label());
            let mut locks = LockSet::for_graph(&cpg);
            for job in table.jobs() {
                if let Some(time) = table.activation_time(job, &assignment) {
                    let pe = table.activation_resource(job, &assignment);
                    locks.insert_pinned(job, time, pe);
                }
            }
            let ctx = scheduler.context(track);
            let replay = ctx.reschedule(&ctx.schedule(), &locks);
            assert!(
                replay.slipped_locks().is_empty(),
                "table not realizable on {}: {:?}",
                track.label(),
                replay.slipped_locks()
            );
        }
    }

    #[test]
    fn unconditional_graph_produces_a_single_column_table() {
        use cpg::CpgBuilder;
        use cpg_arch::Architecture;
        let arch = Architecture::builder()
            .processor("cpu0")
            .processor("cpu1")
            .bus("bus")
            .build()
            .unwrap();
        let cpu0 = arch.pe_by_name("cpu0").unwrap();
        let cpu1 = arch.pe_by_name("cpu1").unwrap();
        let mut b = CpgBuilder::new();
        let a = b.process("a", Time::new(2), cpu0);
        let c = b.process("c", Time::new(3), cpu1);
        b.simple_edge(a, c, Time::new(1));
        let cpg = b.build(&arch).unwrap();
        let cpg = cpg::expand_communications(&cpg, &arch, cpg::BusPolicy::FirstBus).unwrap();
        let result = generate_schedule_table(&cpg, &arch, &MergeConfig::new(Time::new(1)));
        assert_eq!(result.tracks().len(), 1);
        assert_eq!(result.table().num_columns(), 1);
        assert!(result.table().columns()[0].is_top());
        assert!(result.is_zero_overhead());
        assert_eq!(result.delta_m(), Time::new(6));
    }
}
