//! The table-generation (schedule merging) algorithm — Sections 4 and 5 of
//! the paper.
//!
//! Scheduling of a conditional process graph is performed in two steps:
//!
//! 1. every alternative path is scheduled individually (the `cpg-path-sched`
//!    crate);
//! 2. the individual schedules are merged into the global schedule table —
//!    this module.
//!
//! The merge proceeds along the binary decision tree spanned by the condition
//! values, explored depth-first. The nodes of the tree are the moments at
//! which a disjunction process of the *current* schedule terminates and a new
//! condition value becomes known. The algorithm follows the four rules of
//! Section 5.1:
//!
//! 1. start times are fixed in the table according, with priority, to the
//!    reachable path with the largest delay;
//! 2. each start time is placed in the column headed by the conjunction of
//!    the condition values known at that moment on the processing element
//!    that executes the process;
//! 3. after a back-step the newly selected schedule is *adjusted*: processes
//!    whose activation time was already fixed in a column that depends only
//!    on conditions decided at ancestor tree nodes are locked to that time
//!    and the remaining processes are rescheduled around them;
//! 4. conflicts with requirement 2 of Section 3 are repaired by moving the
//!    process to one of the previously tabled activation times (the loop
//!    justified by Theorem 2).
//!
//! The walk itself is generic over a [`TableView`], which is what makes it
//! parallel: with a thread budget of one it runs the iterative
//! **undo-log** walk ([`MergeShared::walk_serial`] — one [`Assignment`] of
//! decided conditions mutated in place, one journalled [`LockSet`] per
//! back-step branch, pooled [`PathSchedule`]s — allocation-free after
//! warm-up), and with a larger budget it explores sibling subtrees
//! *speculatively* over transactional overlays of the table
//! ([`MergeShared::walk_par`]): each subtree buffers its writes in a
//! [`TableTxn`] and the logs commit in tree order, the back-branch log only
//! after validation proves the speculation read nothing the forward subtree
//! changed. Failed speculations are discarded and re-run, so the produced
//! [`MergeResult`] is bit-identical to the serial walk for every thread
//! count and selection policy. The original clone-per-node recursion is kept
//! behind the `test-util` feature as a differential-test oracle
//! ([`generate_schedule_table_cloning`]).

use std::sync::OnceLock;

use cpg::{enumerate_tracks, Assignment, CondId, Cpg, Cube, Track, TrackSet};
use cpg_arch::{Architecture, PeId, Time};
use cpg_path_sched::{
    Job, ListScheduler, LockSet, PathSchedule, RunScratch, ScheduledJob, SlippedLock, TrackContext,
};
use cpg_table::{ScheduleTable, TableTxn, TableView};

use crate::config::{MergeConfig, SelectionPolicy};
use crate::result::{MergeResult, MergeStats, MergeStep};

/// Test-only fault injection: deliberately broken variants of the merge
/// protocol, each proving a differential oracle non-vacuous. Every switch is
/// an RAII guard (`engage()` sets a process-global flag, dropping the guard
/// restores the correct protocol), so tests using one must serialize.
///
/// * [`SkipBackValidation`] — re-introduces the known commit-order bug of
///   committing the back-branch speculation without validating its read set;
///   caught by the race explorer (`tests/race_explorer.rs`).
/// * [`InjectWalkPanic`] — panics at the top of the merge; caught by the
///   no-panic oracle.
/// * [`DirtyLockReuse`] — recycles a pooled back-branch lock set without
///   clearing it, so stale locks from a previously walked branch leak into
///   the new branch's placements; caught by the cloning-oracle differential
///   (the oracle allocates a fresh lock set per back-step).
/// * [`SkipSlipRepair`] — drops the Theorem-2 slip-repair loop *and* the
///   slip observation, publishing stale intended times without marking them;
///   caught by the reference-realizability oracle.
/// * [`SkipSpliceValidation`] — replays cached session chains without
///   validating their read sets; caught by the warm-vs-cold oracle.
/// * [`SkipEntryValidation`] — drops the `validate_system` call from the
///   `try_` entry points, accepting pathological systems; caught by the
///   input-validation oracle.
#[cfg(any(test, feature = "test-util"))]
pub mod sabotage {
    use std::sync::atomic::{AtomicBool, Ordering};

    macro_rules! switch {
        ($(#[$doc:meta])* $flag:ident, $guard:ident, $probe:ident) => {
            static $flag: AtomicBool = AtomicBool::new(false);

            $(#[$doc])*
            #[derive(Debug)]
            pub struct $guard {
                _not_send: std::marker::PhantomData<*const ()>,
            }

            impl $guard {
                /// Engages the fault; dropping the guard disengages it.
                #[must_use]
                pub fn engage() -> Self {
                    $flag.store(true, Ordering::SeqCst);
                    $guard {
                        _not_send: std::marker::PhantomData,
                    }
                }
            }

            impl Drop for $guard {
                fn drop(&mut self) {
                    $flag.store(false, Ordering::SeqCst);
                }
            }

            pub(crate) fn $probe() -> bool {
                $flag.load(Ordering::SeqCst)
            }
        };
    }

    switch!(
        /// Guard that keeps the walk committing back-branch logs *without*
        /// validation while alive.
        SKIP_BACK_VALIDATION,
        SkipBackValidation,
        skip_back_validation
    );
    switch!(
        /// Guard that makes the merge panic on entry while alive.
        INJECT_WALK_PANIC,
        InjectWalkPanic,
        inject_walk_panic
    );
    switch!(
        /// Guard that keeps the serial walk recycling back-branch lock sets
        /// without clearing their stale contents while alive.
        DIRTY_LOCK_REUSE,
        DirtyLockReuse,
        dirty_lock_reuse
    );
    switch!(
        /// Guard that skips the Theorem-2 slip-repair loop (and the slip
        /// observation that gates the realizability sweep) while alive.
        SKIP_SLIP_REPAIR,
        SkipSlipRepair,
        skip_slip_repair
    );
    switch!(
        /// Guard that lets session replays splice cached chain logs without
        /// read-set validation while alive.
        SKIP_SPLICE_VALIDATION,
        SkipSpliceValidation,
        skip_splice_validation
    );
    switch!(
        /// Guard that makes the `try_` entry points skip their
        /// [`validate_system`](crate::validate_system) call while alive.
        SKIP_ENTRY_VALIDATION,
        SkipEntryValidation,
        skip_entry_validation
    );
}

/// Generates the schedule table of a conditional process graph.
///
/// The graph must already contain its communication processes (see
/// [`cpg::expand_communications`]); `arch` is the target architecture the
/// processes are mapped on and `config` carries the condition-broadcast time
/// `τ0` and the path-selection policy.
///
/// The returned [`MergeResult`] bundles the table, the per-path schedules,
/// the lower bound `δ_M`, the guaranteed worst-case delay `δ_max` and
/// statistics about the merge.
///
/// # Example
///
/// ```
/// use cpg::examples;
/// use cpg_merge::{generate_schedule_table, MergeConfig};
///
/// let system = examples::fig1();
/// let result = generate_schedule_table(
///     system.cpg(),
///     system.arch(),
///     &MergeConfig::new(system.broadcast_time()),
/// );
/// assert_eq!(result.tracks().len(), 6);
/// assert!(result.delta_max() >= result.delta_m());
/// result
///     .table()
///     .verify(system.cpg(), result.tracks())
///     .expect("the generated table satisfies requirements 1-3");
/// ```
#[must_use]
pub fn generate_schedule_table(
    cpg: &Cpg,
    arch: &Architecture,
    config: &MergeConfig,
) -> MergeResult {
    let tracks = enumerate_tracks(cpg);
    generate_schedule_table_for_tracks(cpg, arch, config, tracks)
}

/// Variant of [`generate_schedule_table`] that reuses already enumerated
/// tracks (useful when the caller needs the track set for other purposes and
/// wants to avoid enumerating it twice).
#[must_use]
pub fn generate_schedule_table_for_tracks(
    cpg: &Cpg,
    arch: &Architecture,
    config: &MergeConfig,
    tracks: TrackSet,
) -> MergeResult {
    generate_for_tracks_inner(cpg, arch, config, tracks, WalkKind::UndoLog)
}

/// Variant of [`generate_schedule_table`] that drives the merge with the
/// original clone-per-node recursive decision-tree walk instead of the
/// undo-log walk. The two walks make identical decisions; this one exists
/// purely as a reference oracle for the differential tests that pin the
/// undo-log walk's output, and only compiles with the `test-util` feature.
#[cfg(any(test, feature = "test-util"))]
#[must_use]
pub fn generate_schedule_table_cloning(
    cpg: &Cpg,
    arch: &Architecture,
    config: &MergeConfig,
) -> MergeResult {
    let tracks = enumerate_tracks(cpg);
    generate_for_tracks_inner(cpg, arch, config, tracks, WalkKind::Cloning)
}

/// Which decision-tree walk implementation drives the merge.
#[derive(Clone, Copy)]
enum WalkKind {
    /// The production walk: the iterative undo-log walk when the thread
    /// budget is one, the speculative transactional walk otherwise. Both are
    /// bit-identical to each other (and to the oracle below).
    UndoLog,
    /// The original recursive walk cloning the decided conditions, the lock
    /// set and the current schedule at every tree node (oracle only).
    #[cfg(any(test, feature = "test-util"))]
    Cloning,
}

fn generate_for_tracks_inner(
    cpg: &Cpg,
    arch: &Architecture,
    config: &MergeConfig,
    tracks: TrackSet,
    walk: WalkKind,
) -> MergeResult {
    // Mutation self-test hook: the no-panic oracle must flag a merge that
    // dies instead of returning (tests/adversarial_corpus.rs).
    #[cfg(any(test, feature = "test-util"))]
    assert!(
        !sabotage::inject_walk_panic(),
        "sabotage: injected walk panic"
    );
    let scheduler = ListScheduler::new(cpg, arch, config.broadcast_time());
    let threads = config.effective_threads();
    // One dense scheduling context per track, reused across the initial
    // per-path schedules and every adjustment/repair of the merge below.
    // Both the context construction and the initial schedules are
    // embarrassingly parallel across tracks, so they fan out over the
    // fork-join shim with one scratch arena per worker; `threads == 1` runs
    // the plain serial loop on this thread. The reduction is by track index,
    // so the result is bit-identical for every thread count. The cold path
    // needs every context, so the fan-out prefills the whole cache.
    let contexts = ContextCache::new(scheduler, &tracks);
    let optimal: Vec<PathSchedule> = fj::map_with(
        threads,
        tracks.tracks(),
        RunScratch::new,
        |scratch, idx, _| contexts.get(idx).schedule_with(scratch),
    );
    let delta_m = optimal
        .iter()
        .map(PathSchedule::delay)
        .max()
        .unwrap_or(Time::ZERO);

    let shared = MergeShared {
        cpg,
        config,
        threads,
        contexts: &contexts,
        tracks: &tracks,
        optimal: &optimal,
    };
    let mut state = WalkState::new();
    let mut table = ScheduleTable::new();
    let mut decided = Assignment::new();
    let root = shared
        .select_track(&decided)
        .expect("a valid graph has at least one alternative path");
    let schedule = optimal[root].clone();
    let fixed = LockSet::for_graph(cpg);
    match walk {
        WalkKind::UndoLog if threads > 1 => {
            shared.walk_par(
                &mut state,
                &mut table,
                threads,
                root,
                schedule,
                &mut decided,
                fixed,
            );
        }
        WalkKind::UndoLog => {
            shared.walk_serial(&mut state, &mut table, root, schedule, &mut decided, fixed);
        }
        #[cfg(any(test, feature = "test-util"))]
        WalkKind::Cloning => {
            shared.walk_cloning(
                &mut state,
                &mut table,
                root,
                schedule,
                decided.clone(),
                fixed,
            );
        }
    }

    // Adjustments that slipped fed the divergent entries back through the
    // Theorem-2 re-placement loop; whatever the repairs could not absorb
    // is what the final table still cannot realize. Replaying the table
    // through the scheduler gives the exact surviving count — and the
    // replays themselves are the realized per-path schedules, so they are
    // kept instead of thrown away.
    //
    // The sweep must run whenever any back-step adjustment occurred, not
    // only when a walk-time reschedule slipped: each adjustment validates
    // one selected track against the table as it stood at that node, but
    // the entries it places land in condition-compatible columns that also
    // apply to sibling tracks never rescheduled against the final lock set.
    // On graphs whose guards decouple a process from its expansion-derived
    // communications (a supported structural edit), that gap produced
    // tables with unhonourable activation times reported as `lock_slips:
    // 0` — found by the adversarial fuzzer (`crates/fuzz`). With zero
    // adjustments there is a single reachable track and the table is its
    // own optimal schedule, so skipping the sweep is sound.
    let mut stats = state.stats;
    #[allow(unused_mut)]
    let mut run_sweep = state.saw_slip || stats.adjustments > 0;
    // The slip-repair mutant models losing both the repair *and* the
    // accounting, so it suppresses the sweep too — otherwise the sweep
    // would honestly count the stale times and the mutant would be
    // indistinguishable from a correct (if slow) merge.
    #[cfg(any(test, feature = "test-util"))]
    {
        run_sweep = run_sweep && !sabotage::skip_slip_repair();
    }
    let realized = if run_sweep {
        let replays = shared.residual_replays(&table);
        stats.lock_slips = replays
            .iter()
            .map(|replay| replay.slipped_locks().len())
            .sum();
        Some(replays)
    } else {
        None
    };

    let delta_max = table.worst_case_delay(cpg, &tracks);
    MergeResult {
        table,
        tracks,
        // When the realizability sweep ran, its replays carry the per-path
        // timing the table actually realizes; otherwise no lock ever slipped
        // and the optimal schedules are exact.
        path_schedules: realized.unwrap_or(optimal),
        delta_m,
        delta_max,
        steps: state.steps,
        stats,
        spec_discards: state.spec_discards,
    }
}

/// Variant of [`generate_schedule_table`] that validates the system first
/// and returns a typed [`MergeError`](crate::MergeError) instead of hitting
/// an index panic deep inside the scheduler on pathological inputs (see
/// [`validate_system`](crate::validate_system) for the checks).
pub fn try_generate_schedule_table(
    cpg: &Cpg,
    arch: &Architecture,
    config: &MergeConfig,
) -> Result<MergeResult, crate::MergeError> {
    // Mutation self-test hook: accept pathological systems unchecked; the
    // input-validation oracle must flag the disagreement with
    // `validate_system` (tests/adversarial_corpus.rs).
    #[cfg(any(test, feature = "test-util"))]
    let checked = !sabotage::skip_entry_validation();
    #[cfg(not(any(test, feature = "test-util")))]
    let checked = true;
    if checked {
        crate::error::validate_system(cpg, arch)?;
    }
    Ok(generate_schedule_table(cpg, arch, config))
}

/// Outcome of placing one activation time into the table.
enum Placement {
    /// The activation time was placed (or was already present) at the
    /// schedule's own start time, on the recorded resource.
    Kept(Option<PeId>),
    /// A conflict forced the process to a previously tabled activation time
    /// (carrying the resource recorded for that entry); the current schedule
    /// must be re-adjusted around the new time.
    Moved(Time, Option<PeId>),
}

/// Upper bound on reschedule → re-place rounds per adjustment. Every round
/// either moves a slipped lock to its strictly later achievable start or to a
/// previously tabled candidate, so the loop converges quickly in practice;
/// the cap only guards against pathological oscillation between candidates.
const SLIP_REPAIR_ROUNDS: usize = 16;

/// Lazily built per-track scheduling contexts.
///
/// A [`TrackContext`] is a bundle of dense lookup tables over one track —
/// cheap to query but not free to build. The cold merge needs every context
/// (each track is visited at least once), so it prefills all cells inside
/// its parallel fan-out; an incremental re-merge only touches the contexts
/// of re-walked or re-scheduled tracks, so the session leaves the cells to
/// fill on first use. `OnceLock` keeps the fill race-free under the
/// speculative walk, and a context is deterministic in its inputs, so *who*
/// fills a cell never shows in the result.
pub(crate) struct ContextCache<'a> {
    scheduler: ListScheduler<'a>,
    tracks: &'a TrackSet,
    cells: Vec<OnceLock<TrackContext<'a>>>,
}

impl<'a> ContextCache<'a> {
    pub(crate) fn new(scheduler: ListScheduler<'a>, tracks: &'a TrackSet) -> Self {
        let mut cells = Vec::new();
        cells.resize_with(tracks.len(), OnceLock::new);
        ContextCache {
            scheduler,
            tracks,
            cells,
        }
    }

    pub(crate) fn get(&self, idx: usize) -> &TrackContext<'a> {
        self.cells[idx].get_or_init(|| self.scheduler.context(&self.tracks.tracks()[idx]))
    }
}

/// The immutable inputs shared by every worker of the decision-tree walk.
///
/// Crate-visible so the incremental [`MergeSession`](crate::MergeSession)
/// can drive the same placement/adjustment machinery over its cached
/// decision tree.
pub(crate) struct MergeShared<'a> {
    pub(crate) cpg: &'a Cpg,
    pub(crate) config: &'a MergeConfig,
    /// Worker threads for the parallel phases (resolved once up front so the
    /// whole merge sees one consistent count); doubles as the root thread
    /// budget of the speculative walk.
    pub(crate) threads: usize,
    pub(crate) contexts: &'a ContextCache<'a>,
    pub(crate) tracks: &'a TrackSet,
    pub(crate) optimal: &'a [PathSchedule],
}

/// Per-worker walk state: the outputs of one (sub)tree traversal plus the
/// reusable buffers that make the traversal allocation-free after warm-up.
///
/// The speculative walk gives each back-branch subtree a fresh `WalkState`
/// on its worker thread and folds the output fields back into the caller's
/// in tree order ([`absorb_output`](Self::absorb_output)), so every counter
/// and traced step lands exactly where the serial walk would have put it.
pub(crate) struct WalkState {
    /// Decision-tree nodes visited, in visit order (recorded only when
    /// [`MergeConfig::with_trace`] is on).
    pub(crate) steps: Vec<MergeStep>,
    pub(crate) stats: MergeStats,
    /// `true` once any adjustment reported a slipped lock; gates the final
    /// realizability sweep that computes [`MergeStats::lock_slips`].
    pub(crate) saw_slip: bool,
    /// Speculative subtree validations that failed and re-ran live. Kept out
    /// of [`MergeStats`]: the count depends on the interleaving, so it is
    /// excluded from the bit-identity contract (see
    /// [`MergeResult::spec_discards`](crate::MergeResult::spec_discards)).
    pub(crate) spec_discards: usize,
    /// Scratch arena for the scheduler runs of adjustments and repairs.
    scratch: RunScratch,
    /// Reusable buffers of the repair loops.
    slip_buf: Vec<SlippedLock>,
    stale_buf: Vec<Cube>,
    frontier_buf: Vec<Cube>,
    fresh_buf: Vec<Cube>,
    candidates_buf: Vec<(Time, u64, Option<PeId>)>,
    /// Pools: dead schedules and lock sets are recycled instead of freed.
    pub(crate) schedule_pool: Vec<PathSchedule>,
    pub(crate) lock_pool: Vec<LockSet>,
    /// Swap target of `place_phase` repairs.
    spare: PathSchedule,
}

impl WalkState {
    pub(crate) fn new() -> Self {
        WalkState {
            steps: Vec::new(),
            stats: MergeStats::default(),
            saw_slip: false,
            spec_discards: 0,
            scratch: RunScratch::new(),
            slip_buf: Vec::new(),
            stale_buf: Vec::new(),
            frontier_buf: Vec::new(),
            fresh_buf: Vec::new(),
            candidates_buf: Vec::new(),
            schedule_pool: Vec::new(),
            lock_pool: Vec::new(),
            spare: PathSchedule::default(),
        }
    }

    /// Folds the *outputs* of a completed speculative subtree into this
    /// state, in tree order; the subtree's scratch buffers and pools are
    /// dropped with it.
    pub(crate) fn absorb_output(&mut self, subtree: WalkState) {
        self.steps.extend(subtree.steps);
        self.stats.absorb(subtree.stats);
        self.saw_slip |= subtree.saw_slip;
        self.spec_discards += subtree.spec_discards;
    }
}

/// One pending continuation of the iterative decision-tree walk. The
/// recursion of the paper's `BuildScheduleTable` procedure is unrolled onto
/// an explicit stack of these, so the walk keeps *one* set of decided
/// conditions and one lock set per back-step branch instead of cloning state
/// at every node.
enum WalkTask {
    /// Visit a node: place activation times of `schedule` until the next
    /// undecided condition resolves, then push the forward child.
    Enter {
        track_idx: usize,
        schedule: PathSchedule,
    },
    /// The forward subtree under `condition = value` is fully explored: roll
    /// the shared lock set back to `mark`, flip the condition and take the
    /// back-step.
    AfterForward {
        condition: CondId,
        value: bool,
        resolved_at: Time,
        mark: usize,
    },
    /// The back-step subtree is fully explored: undecide the condition and
    /// recycle the branch's lock set.
    AfterBack { condition: CondId },
}

impl MergeShared<'_> {
    /// Re-schedules a track around the locked activation times, feeding every
    /// slipped lock back through the Theorem-2 re-placement loop: the stale
    /// intended time is dropped from the table, the job is re-placed at the
    /// start it can actually achieve (or moved to a previously tabled time by
    /// the conflict repair), the lock is updated, and the track is
    /// re-adjusted — until no lock slips or the round cap is reached.
    ///
    /// The adjusted schedule is rebuilt into `out` (previous content
    /// discarded, buffers reused): the walk pools its schedules, so repeated
    /// adjustments stop touching the allocator once the pool is warm.
    pub(crate) fn adjust_into<V: TableView + ?Sized>(
        &self,
        state: &mut WalkState,
        view: &mut V,
        track_idx: usize,
        locks: &mut LockSet,
        decided: &Assignment,
        out: &mut PathSchedule,
    ) {
        self.contexts.get(track_idx).reschedule_into(
            &mut state.scratch,
            &self.optimal[track_idx],
            locks,
            out,
        );
        // Mutation self-test hook: publish the stale intended times without
        // repairing — or even observing — the slip, so the realizability
        // sweep never runs and the table keeps activation times no
        // dispatcher can honour. The reference-realizability oracle must
        // catch the divergence (tests/adversarial_corpus.rs).
        #[cfg(any(test, feature = "test-util"))]
        if sabotage::skip_slip_repair() {
            return;
        }
        let mut rounds = 0;
        while !out.slipped_locks().is_empty() && rounds < SLIP_REPAIR_ROUNDS {
            state.saw_slip = true;
            state.stats.repair_rounds += 1;
            let mut slips = std::mem::take(&mut state.slip_buf);
            slips.clear();
            slips.extend_from_slice(out.slipped_locks());
            let mut progressed = false;
            for slip in &slips {
                progressed |= self.repair_slip(state, view, out, decided, slip, locks);
            }
            state.slip_buf = slips;
            if !progressed {
                break;
            }
            self.contexts.get(track_idx).reschedule_into(
                &mut state.scratch,
                &self.optimal[track_idx],
                locks,
                out,
            );
            rounds += 1;
        }
        state.saw_slip |= !out.slipped_locks().is_empty();
    }

    /// [`adjust_into`](Self::adjust_into) allocating a fresh schedule per
    /// call — the clone-per-node discipline of the oracle walk.
    #[cfg(any(test, feature = "test-util"))]
    fn adjust<V: TableView + ?Sized>(
        &self,
        state: &mut WalkState,
        view: &mut V,
        track_idx: usize,
        locks: &mut LockSet,
        decided: &Assignment,
    ) -> PathSchedule {
        let mut out = PathSchedule::default();
        self.adjust_into(state, view, track_idx, locks, decided, &mut out);
        out
    }

    /// Repairs one slipped lock by re-timing the stale tabled entries the
    /// lock was derived from.
    ///
    /// The stale entries are every tabled time of the job equal to the
    /// slipped intended time in a column compatible with the conditions
    /// decided on this tree path. They are updated *in their own columns*
    /// rather than removed: a lock inherited at a back-step always comes from
    /// an ancestor-dependent column that also covers the sibling subtrees, so
    /// dropping the entry (or refining its column with conditions unknown at
    /// activation time) would strip those subtrees of their activation or
    /// violate requirement 4. The replacement time follows the Theorem-2
    /// discipline: one of the previously tabled activation times of the job
    /// that the adjusted schedule can actually reach, falling back to the
    /// start the schedule achieved when no tabled time is achievable. The
    /// caller re-runs the scheduler with the updated lock; a repair that is
    /// still too early slips again and is re-timed in the next round.
    ///
    /// Returns `false` when no stale entry could be located (the slip then
    /// survives as-is and is picked up by the final realizability sweep).
    // lint: hot-path (Theorem-2 conflict repair runs inside the walk's inner loop)
    fn repair_slip<V: TableView + ?Sized>(
        &self,
        state: &mut WalkState,
        view: &mut V,
        schedule: &PathSchedule,
        decided: &Assignment,
        slip: &SlippedLock,
        locks: &mut LockSet,
    ) -> bool {
        let job = slip.job();
        let decided_cube = decided.to_cube();
        let mut stale = std::mem::take(&mut state.stale_buf);
        stale.clear();
        // Entries at exactly the intended time come straight from the row's
        // time bucketing; only their cubes are tested against the decided
        // context. `stale` is sorted below, so the bucket order is immaterial.
        view.for_each_entry_at_on(job, slip.intended(), &mut |_, column, _| {
            if column.compatible(&decided_cube) {
                stale.push(column);
            }
        });
        if stale.is_empty() {
            state.stale_buf = stale;
            return false;
        }
        // Closure over compatible same-time columns: an execution can satisfy
        // a stale column together with any column compatible with it, so
        // every entry at the intended time that overlaps the rewritten set
        // must move along or requirement 2 (one time per execution) breaks.
        // `stale` is kept sorted so membership is a binary search, and each
        // round only tests candidates against the columns added by the
        // previous round (a column compatible with an older member joined the
        // set the round after that member did), so every (entry, stale
        // column) pair is examined at most once.
        stale.sort_unstable();
        let mut frontier = std::mem::take(&mut state.frontier_buf);
        let mut fresh = std::mem::take(&mut state.fresh_buf);
        frontier.clear();
        frontier.extend_from_slice(&stale);
        while !frontier.is_empty() {
            fresh.clear();
            view.for_each_entry_at_on(job, slip.intended(), &mut |_, column, _| {
                if stale.binary_search(&column).is_err()
                    && frontier.iter().any(|s| s.compatible(&column))
                {
                    fresh.push(column);
                }
            });
            for &column in &fresh {
                let at = stale
                    .binary_search(&column)
                    .expect_err("fresh columns are not yet stale");
                stale.insert(at, column);
            }
            std::mem::swap(&mut frontier, &mut fresh);
        }
        frontier.clear();
        fresh.clear();
        state.frontier_buf = frontier;
        state.fresh_buf = fresh;

        // Theorem 2: prefer one of the previously tabled activation times of
        // this job that the adjusted schedule can reach; invent a new time
        // only when none is achievable.
        let mut target = slip.actual();
        let mut target_pe = schedule.entry(job).and_then(|sj| sj.pe());
        // The earliest reachable tabled time wins; the lowest column key
        // breaks ties, restating the old first-wins scan in serial entry
        // order over the index's unordered compatibility groups.
        let mut tabled: Option<(Time, u64, Option<PeId>)> = None;
        view.for_each_compatible_entry_on(job, &decided_cube, &mut |key, _, time, resource| {
            if time >= slip.actual()
                && time != slip.intended()
                && tabled.is_none_or(|(best, at, _)| (time, key) < (best, at))
            {
                tabled = Some((time, key, resource));
            }
        });
        if let Some((time, _, resource)) = tabled {
            target = time;
            target_pe = resource.or(target_pe);
        }

        for column in &stale {
            view.set_on(job, *column, target, target_pe);
        }
        stale.clear();
        state.stale_buf = stale;
        locks.insert_pinned(job, target, target_pe);
        state.stats.slip_repairs += 1;
        true
    }

    /// Replays the final table through the per-track scheduler: every job of
    /// every track is locked at its applicable tabled time (pinned to the
    /// recorded resource) and rescheduled. Any lock the scheduler cannot
    /// honour is an activation time the dispatcher cannot realize — the
    /// total slip count over the returned replays is what
    /// [`MergeStats::lock_slips`] reports — and the replays themselves are
    /// the *realized* per-path schedules under the final table, seeded into
    /// [`MergeResult::path_schedules`].
    ///
    /// The tracks are independent, so the sweep fans out over the fork-join
    /// shim with one scratch arena per worker; the reduction is by track
    /// index, keeping the result identical for every thread count.
    pub(crate) fn residual_replays(&self, table: &ScheduleTable) -> Vec<PathSchedule> {
        fj::map_with(
            self.threads,
            self.tracks.tracks(),
            RunScratch::new,
            |scratch, idx, track| {
                let assignment = Assignment::from_cube(&track.label());
                let mut locks = LockSet::for_graph(self.cpg);
                for job in self.track_jobs(track) {
                    if let Some(time) = table.activation_time(job, &assignment) {
                        let pe = table.activation_resource(job, &assignment);
                        locks.insert_pinned(job, time, pe);
                    }
                }
                self.contexts
                    .get(idx)
                    .reschedule_with(scratch, &self.optimal[idx], &locks)
            },
        )
    }

    /// Picks the reachable path used as the current schedule at a decision
    /// tree node (rule 1 / the selection policy of the configuration).
    pub(crate) fn select_track(&self, decided: &Assignment) -> Option<usize> {
        let reachable = self
            .tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.label().consistent_with(decided));
        match self.config.selection() {
            SelectionPolicy::LongestDelayFirst => reachable
                .max_by_key(|(i, _)| (self.optimal[*i].delay(), usize::MAX - *i))
                .map(|(i, _)| i),
            SelectionPolicy::ShortestDelayFirst => reachable
                .min_by_key(|(i, _)| (self.optimal[*i].delay(), *i))
                .map(|(i, _)| i),
            SelectionPolicy::EnumerationOrder => reachable.map(|(i, _)| i).next(),
        }
    }

    /// Number of alternative paths consistent with `decided` — the cost
    /// proxy the speculative walk uses to split its thread budget between
    /// the two subtrees of a node (a subtree's work scales with the number
    /// of paths it still covers).
    pub(crate) fn reachable_count(&self, decided: &Assignment) -> usize {
        self.tracks
            .iter()
            .filter(|t| t.label().consistent_with(decided))
            .count()
    }

    /// Depth-first traversal of the decision tree (the `BuildScheduleTable`
    /// procedure of the paper's Fig. 3) on an explicit stack, with undo-log
    /// state management:
    ///
    /// * the conditions decided along the current tree path live in **one**
    ///   [`Assignment`], assigned on the way down and unassigned on the way
    ///   back up (the caller's `decided` is returned in its entry state);
    /// * the activation times fixed along the path live in one [`LockSet`]
    ///   per back-step branch (consecutive forward nodes share their
    ///   branch's set, journalled and rolled back to the node's
    ///   [`mark`](LockSet::mark) when its forward subtree completes); the
    ///   sets themselves are pooled and recycled across branches;
    /// * the current schedules are pooled [`PathSchedule`]s rebuilt in place
    ///   by [`adjust_into`](Self::adjust_into).
    ///
    /// Together with the scratch arena of the scheduler runs this makes the
    /// whole walk allocation-free after warm-up; the visit order, every
    /// placement decision and the produced [`MergeResult`] are identical to
    /// the clone-per-node recursion (kept as
    /// [`walk_cloning`](Self::walk_cloning) for the differential tests).
    ///
    /// The walk is generic over the [`TableView`] it writes through: the
    /// real [`ScheduleTable`] at the root, a [`TableTxn`] overlay when a
    /// speculative ancestor ran out of thread budget for this subtree.
    // lint: hot-path (the allocation-free undo-log walk; see PR 5)
    fn walk_serial<V: TableView + ?Sized>(
        &self,
        state: &mut WalkState,
        view: &mut V,
        root_idx: usize,
        root_schedule: PathSchedule,
        decided: &mut Assignment,
        fixed: LockSet,
    ) {
        let trace = self.config.trace();
        // One lock set per back-step branch of the current tree path; the
        // top of the stack is the set the current node fixes times into.
        let mut lock_stack: Vec<LockSet> = vec![fixed];
        let mut tasks: Vec<WalkTask> = vec![WalkTask::Enter {
            track_idx: root_idx,
            schedule: root_schedule,
        }];

        while let Some(task) = tasks.pop() {
            match task {
                WalkTask::Enter {
                    track_idx,
                    mut schedule,
                } => {
                    let mut fixed = lock_stack
                        .pop()
                        .expect("every branch of the walk owns a lock set");
                    let next = self.place_phase(
                        state,
                        view,
                        track_idx,
                        &mut schedule,
                        decided,
                        &mut fixed,
                    );

                    // End of schedule: every condition of this path has been
                    // decided and all activation times are placed.
                    let Some((condition, resolved_at)) = next else {
                        state.schedule_pool.push(schedule);
                        lock_stack.push(fixed);
                        continue;
                    };

                    let label = self.tracks.tracks()[track_idx].label();
                    let value = label
                        .polarity_of(condition)
                        .expect("a condition resolved on a path appears in its label");

                    // Continue with the same schedule: the condition takes
                    // the value of the current path (no back-step). The
                    // node's depth counts the resolved condition, not yet
                    // assigned here.
                    state.stats.tree_nodes += 1;
                    state.stats.max_walk_depth = state.stats.max_walk_depth.max(decided.len() + 1);
                    if trace {
                        state.steps.push(MergeStep {
                            decided: decided.to_cube(),
                            condition,
                            resolved_at,
                            current_path: label,
                            back_step: false,
                        });
                    }
                    decided.assign(condition, value);
                    let mark = fixed.mark();
                    lock_stack.push(fixed);
                    tasks.push(WalkTask::AfterForward {
                        condition,
                        value,
                        resolved_at,
                        mark,
                    });
                    tasks.push(WalkTask::Enter {
                        track_idx,
                        schedule,
                    });
                }
                WalkTask::AfterForward {
                    condition,
                    value,
                    resolved_at,
                    mark,
                } => {
                    // The forward subtree is fully explored: restore the
                    // shared state to this node's view...
                    lock_stack
                        .last_mut()
                        .expect("the branch lock set outlives its subtree")
                        .rollback(mark);
                    decided.unassign(condition);
                    let node_cube = decided.to_cube();

                    // ...and take the back-step: the condition takes the
                    // opposite value; a new current schedule is selected
                    // among the reachable paths and adjusted.
                    decided.assign(condition, !value);
                    let Some(new_idx) = self.select_track(decided) else {
                        decided.unassign(condition);
                        continue;
                    };
                    let mut locks = state
                        .lock_pool
                        .pop()
                        .unwrap_or_else(|| LockSet::for_graph(self.cpg));
                    // Mutation self-test hook: recycle the pooled set with
                    // its stale contents, so locks of a previously walked
                    // branch leak into this branch's placements. The cloning
                    // oracle allocates a fresh set per back-step, so the
                    // differential suite must flag the divergence
                    // (tests/adversarial_corpus.rs).
                    #[cfg(any(test, feature = "test-util"))]
                    if !sabotage::dirty_lock_reuse() {
                        locks.clear();
                    }
                    #[cfg(not(any(test, feature = "test-util")))]
                    locks.clear();
                    self.locks_from_table_into(view, &mut locks, new_idx, decided, condition);
                    let mut adjusted = state.schedule_pool.pop().unwrap_or_default();
                    self.adjust_into(state, view, new_idx, &mut locks, decided, &mut adjusted);
                    // `decided` already carries the flipped condition, so the
                    // depth is its plain length.
                    state.stats.tree_nodes += 1;
                    state.stats.max_walk_depth = state.stats.max_walk_depth.max(decided.len());
                    state.stats.adjustments += 1;
                    if trace {
                        state.steps.push(MergeStep {
                            decided: node_cube,
                            condition,
                            resolved_at,
                            current_path: self.tracks.tracks()[new_idx].label(),
                            back_step: true,
                        });
                    }
                    lock_stack.push(locks);
                    tasks.push(WalkTask::AfterBack { condition });
                    tasks.push(WalkTask::Enter {
                        track_idx: new_idx,
                        schedule: adjusted,
                    });
                }
                WalkTask::AfterBack { condition } => {
                    decided.unassign(condition);
                    let branch_locks = lock_stack
                        .pop()
                        .expect("the back-step branch pushed its lock set");
                    state.lock_pool.push(branch_locks);
                }
            }
        }
        // Recycle the root branch's lock set for the next subtree.
        state.lock_pool.append(&mut lock_stack);
    }

    /// The speculative decision-tree walk: identical decisions to
    /// [`walk_serial`](Self::walk_serial), with sibling subtrees explored
    /// concurrently on the fork-join pool.
    ///
    /// At every node whose thread budget allows it, the two subtrees run in
    /// parallel over *transactional* overlays of a frozen snapshot of the
    /// table ([`TableTxn`]): the forward subtree on the calling worker, the
    /// back subtree on a spawned one with its own fresh [`WalkState`]. When
    /// both return, the write logs commit in tree order — the forward log
    /// unconditionally (its snapshot *was* the exact serial state: the
    /// serial walk runs the forward subtree first and nothing else writes
    /// in between), the back log only after [`cpg_table::TxnLog::validate`]
    /// proves the speculation read no row the forward subtree wrote and
    /// created no column the forward subtree also created. A back log that
    /// fails validation is discarded wholesale — writes, counters and traced
    /// steps — and the branch re-runs against the committed table with the
    /// node's (now otherwise idle) full budget. Either way every write lands
    /// in the exact state the serial walk would have produced, so the merge
    /// output is bit-identical for every thread count and selection policy.
    ///
    /// The budget splits between the subtrees proportionally to the number
    /// of alternative paths each still covers ([`fj::join_with_cost`]); a
    /// branch whose share is one degrades to the serial walk, so speculation
    /// depth is bounded by the thread count, not the tree depth.
    #[allow(clippy::too_many_arguments)]
    fn walk_par<V: TableView + Sync>(
        &self,
        state: &mut WalkState,
        view: &mut V,
        budget: usize,
        track_idx: usize,
        mut schedule: PathSchedule,
        decided: &mut Assignment,
        mut fixed: LockSet,
    ) {
        if budget <= 1 {
            self.walk_serial(state, view, track_idx, schedule, decided, fixed);
            return;
        }
        let next = self.place_phase(state, view, track_idx, &mut schedule, decided, &mut fixed);
        let Some((condition, resolved_at)) = next else {
            state.schedule_pool.push(schedule);
            state.lock_pool.push(fixed);
            return;
        };

        let label = self.tracks.tracks()[track_idx].label();
        let value = label
            .polarity_of(condition)
            .expect("a condition resolved on a path appears in its label");
        let node_cube = decided.to_cube();
        state.stats.tree_nodes += 1;
        state.stats.max_walk_depth = state.stats.max_walk_depth.max(decided.len() + 1);
        if self.config.trace() {
            state.steps.push(MergeStep {
                decided: node_cube,
                condition,
                resolved_at,
                current_path: label,
                back_step: false,
            });
        }

        // Probe the back branch before forking: the serial walk selects it
        // only after the forward subtree, but the selection depends solely
        // on the decided conditions, so the choice is already known here.
        let mut decided_back = decided.clone();
        decided_back.assign(condition, !value);
        let back_idx = self.select_track(&decided_back);
        let cost_back = self.reachable_count(&decided_back) as u64;

        decided.assign(condition, value);
        let Some(back_idx) = back_idx else {
            // No reachable path takes the flipped value: a pure forward
            // chain keeps the whole budget.
            self.walk_par(state, view, budget, track_idx, schedule, decided, fixed);
            decided.unassign(condition);
            return;
        };
        let cost_fwd = self.reachable_count(decided) as u64;

        // Freeze the table: both subtrees speculate over transactional
        // overlays of this snapshot. The forward subtree stays on this
        // worker (its writes are the ones that commit first), the back
        // subtree moves to a spawned scope with fresh scratch state.
        let frozen: &(dyn TableView + Sync) = &*view;
        let mut txn_fwd = TableTxn::new(frozen);
        let txn_back = TableTxn::new(frozen);
        let mut decided_spec = decided_back.clone();
        let ((), (txn_back, back_state)) = fj::join_with_cost(
            budget,
            cost_fwd,
            cost_back,
            |fwd_budget| {
                self.walk_par(
                    state,
                    &mut txn_fwd,
                    fwd_budget,
                    track_idx,
                    schedule,
                    decided,
                    fixed,
                );
            },
            move |back_budget| {
                let mut txn_back = txn_back;
                let mut back_state = WalkState::new();
                self.back_branch(
                    &mut back_state,
                    &mut txn_back,
                    back_budget,
                    back_idx,
                    &mut decided_spec,
                    node_cube,
                    condition,
                    resolved_at,
                );
                (txn_back, back_state)
            },
        );
        decided.unassign(condition);

        // Commit in tree order: the forward log first — always valid, since
        // its snapshot was the exact state the serial walk would have seen —
        // then the back speculation, but only if it read nothing the forward
        // subtree changed.
        let forward_log = txn_fwd.into_log();
        let back_log = txn_back.into_log();
        view.splice_log(&forward_log);
        let back_valid = back_log.validate(view);
        // Mutation self-test hook: pretend the stale back log validated.
        // The race explorer must flag the resulting commit as a protocol
        // violation (tests/race_explorer.rs).
        #[cfg(any(test, feature = "test-util"))]
        let back_valid = back_valid || sabotage::skip_back_validation();
        if back_valid {
            view.splice_log(&back_log);
            state.absorb_output(back_state);
        } else {
            // Stale speculation: drop the whole attempt (writes, counters
            // and steps alike) and re-run the branch against the committed
            // table, handing it the node's full budget.
            state.spec_discards += 1;
            drop(back_state);
            self.back_branch(
                state,
                view,
                budget,
                back_idx,
                &mut decided_back,
                node_cube,
                condition,
                resolved_at,
            );
        }
    }

    /// One back-step branch of the speculative walk: inherit the ancestor
    /// locks from the view, adjust the newly selected schedule around them
    /// and walk the subtree. `decided` already carries the flipped
    /// condition; `node_cube` is the tree path to the node *without* it (the
    /// cube both oracles record in the traced back-step).
    #[allow(clippy::too_many_arguments)]
    fn back_branch<V: TableView + Sync>(
        &self,
        state: &mut WalkState,
        view: &mut V,
        budget: usize,
        back_idx: usize,
        decided: &mut Assignment,
        node_cube: Cube,
        condition: CondId,
        resolved_at: Time,
    ) {
        let mut locks = state
            .lock_pool
            .pop()
            .unwrap_or_else(|| LockSet::for_graph(self.cpg));
        locks.clear();
        self.locks_from_table_into(view, &mut locks, back_idx, decided, condition);
        let mut adjusted = state.schedule_pool.pop().unwrap_or_default();
        self.adjust_into(state, view, back_idx, &mut locks, decided, &mut adjusted);
        // `decided` already carries the flipped condition (depth = length).
        state.stats.tree_nodes += 1;
        state.stats.max_walk_depth = state.stats.max_walk_depth.max(decided.len());
        state.stats.adjustments += 1;
        if self.config.trace() {
            state.steps.push(MergeStep {
                decided: node_cube,
                condition,
                resolved_at,
                current_path: self.tracks.tracks()[back_idx].label(),
                back_step: true,
            });
        }
        self.walk_par(state, view, budget, back_idx, adjusted, decided, locks);
    }

    /// The placement phase of one decision-tree node: fixes activation times
    /// of `schedule` in the table until the next undecided condition is
    /// resolved (or the schedule ends), re-adjusting the schedule in place
    /// when a conflict repair moves a process. Returns the next undecided
    /// condition resolution, if any.
    pub(crate) fn place_phase<V: TableView + ?Sized>(
        &self,
        state: &mut WalkState,
        view: &mut V,
        track_idx: usize,
        schedule: &mut PathSchedule,
        decided: &Assignment,
        fixed: &mut LockSet,
    ) -> Option<(CondId, Time)> {
        let mut spare = std::mem::take(&mut state.spare);
        let next = loop {
            // The scheduler caches the resolutions sorted by (time, cond),
            // so the first undecided one is the earliest.
            let next = schedule
                .resolutions()
                .iter()
                .copied()
                .find(|(c, _)| decided.value(*c).is_none());
            let horizon = next.map(|(_, t)| t);

            let mut repaired = false;
            // Indexed scan: repairs replace `schedule` and restart the loop,
            // so no snapshot of the job list is needed.
            for i in 0..schedule.len() {
                let sj = schedule.jobs()[i];
                if let Some(h) = horizon {
                    if sj.start() >= h {
                        break;
                    }
                }
                if fixed.contains(sj.job()) {
                    continue;
                }
                if let Some(pid) = sj.job().as_process() {
                    if self.cpg.process(pid).kind().is_dummy() {
                        fixed.insert(sj.job(), sj.start());
                        continue;
                    }
                }
                match self.place(state, view, schedule, decided, sj) {
                    Placement::Kept(resource) => {
                        fixed.insert_pinned(sj.job(), sj.start(), resource);
                    }
                    Placement::Moved(new_time, resource) => {
                        fixed.insert_pinned(sj.job(), new_time, resource);
                        // The re-adjusted schedule lands in `spare`, which
                        // then swaps with the (dead) current schedule — the
                        // old buffer becomes the next repair's target.
                        self.adjust_into(state, view, track_idx, fixed, decided, &mut spare);
                        std::mem::swap(schedule, &mut spare);
                        repaired = true;
                        break;
                    }
                }
            }
            if !repaired {
                break next;
            }
        };
        state.spare = spare;
        next
    }

    /// The original recursive clone-per-node decision-tree walk, kept as the
    /// reference oracle for the differential tests of the production walks:
    /// the decided conditions, the lock set and (on repairs and back-steps)
    /// the current schedule are cloned at every node instead of journalled.
    #[cfg(any(test, feature = "test-util"))]
    fn walk_cloning<V: TableView + ?Sized>(
        &self,
        state: &mut WalkState,
        view: &mut V,
        track_idx: usize,
        schedule: PathSchedule,
        decided: Assignment,
        mut fixed: LockSet,
    ) {
        let trace = self.config.trace();
        let mut schedule = schedule;
        let label = self.tracks.tracks()[track_idx].label();

        // Place activation times until the next undecided condition is
        // resolved (or the schedule ends). Conflict repairs re-adjust the
        // schedule, in which case the placement scan restarts.
        let next = loop {
            let next = schedule
                .resolutions()
                .iter()
                .copied()
                .find(|(c, _)| decided.value(*c).is_none());
            let horizon = next.map(|(_, t)| t);

            let mut repaired = false;
            for i in 0..schedule.len() {
                let sj = schedule.jobs()[i];
                if let Some(h) = horizon {
                    if sj.start() >= h {
                        break;
                    }
                }
                if fixed.contains(sj.job()) {
                    continue;
                }
                if let Some(pid) = sj.job().as_process() {
                    if self.cpg.process(pid).kind().is_dummy() {
                        fixed.insert(sj.job(), sj.start());
                        continue;
                    }
                }
                match self.place(state, view, &schedule, &decided, sj) {
                    Placement::Kept(resource) => {
                        fixed.insert_pinned(sj.job(), sj.start(), resource);
                    }
                    Placement::Moved(new_time, resource) => {
                        fixed.insert_pinned(sj.job(), new_time, resource);
                        schedule = self.adjust(state, view, track_idx, &mut fixed, &decided);
                        repaired = true;
                        break;
                    }
                }
            }
            if !repaired {
                break next;
            }
        };

        // End of schedule: every condition of this path has been decided and
        // all activation times are placed.
        let Some((condition, resolved_at)) = next else {
            return;
        };

        let value = label
            .polarity_of(condition)
            .expect("a condition resolved on a path appears in its label");

        // Continue with the same schedule: the condition takes the value of
        // the current path (no back-step).
        state.stats.tree_nodes += 1;
        state.stats.max_walk_depth = state.stats.max_walk_depth.max(decided.len() + 1);
        if trace {
            state.steps.push(MergeStep {
                decided: decided.to_cube(),
                condition,
                resolved_at,
                current_path: label,
                back_step: false,
            });
        }
        let mut decided_fwd = decided.clone();
        decided_fwd.assign(condition, value);
        self.walk_cloning(state, view, track_idx, schedule, decided_fwd, fixed.clone());

        // Back-step: the condition takes the opposite value; a new current
        // schedule is selected among the reachable paths and adjusted.
        let mut decided_back = decided.clone();
        decided_back.assign(condition, !value);
        let Some(new_idx) = self.select_track(&decided_back) else {
            return;
        };
        let mut locks = LockSet::for_graph(self.cpg);
        self.locks_from_table_into(view, &mut locks, new_idx, &decided_back, condition);
        let adjusted = self.adjust(state, view, new_idx, &mut locks, &decided_back);
        state.stats.tree_nodes += 1;
        state.stats.max_walk_depth = state.stats.max_walk_depth.max(decided_back.len());
        state.stats.adjustments += 1;
        if trace {
            state.steps.push(MergeStep {
                decided: decided.to_cube(),
                condition,
                resolved_at,
                current_path: self.tracks.tracks()[new_idx].label(),
                back_step: true,
            });
        }
        self.walk_cloning(state, view, new_idx, adjusted, decided_back, locks);
    }

    /// Rule 3: activation times already fixed in columns that depend only on
    /// conditions decided at ancestor tree nodes are enforced on the newly
    /// selected schedule, pinned to the resource recorded when the time was
    /// tabled — a lock inherited from another path's adjusted schedule must
    /// occupy the bus that schedule used, not a track-local guess.
    ///
    /// `decided` is the assignment *including* the condition `resolved` that
    /// the back-step flipped; the ancestor conditions are exactly the decided
    /// ones other than `resolved`. The locks land in the caller-provided
    /// (pooled, cleared) set; every row probe resolves through the view's
    /// dense per-job index.
    pub(crate) fn locks_from_table_into<V: TableView + ?Sized>(
        &self,
        view: &V,
        locks: &mut LockSet,
        track_idx: usize,
        decided: &Assignment,
        resolved: CondId,
    ) {
        let track = &self.tracks.tracks()[track_idx];
        let decided_cube = decided.to_cube();
        let resolved_bit = 1u64 << resolved.index();
        for job in self.track_jobs(track) {
            // An implied column is never excluded by the deciding cube, so
            // the indexed compatibility scan is a sound prefilter; inside it,
            // implication plus "does not mention `resolved`" restates the old
            // ancestors-only check (implication already confines the column
            // to decided conditions). Highest specificity wins and the
            // lowest column key breaks ties — the deterministic equivalent
            // of the old first-wins scan in serial entry order.
            let mut best: Option<(usize, u64, Time, Option<PeId>)> = None;
            view.for_each_compatible_entry_on(
                job,
                &decided_cube,
                &mut |key, column, time, resource| {
                    if column.mention_mask() & resolved_bit == 0 && decided_cube.implies(&column) {
                        let specificity = column.len();
                        if best.is_none_or(|(len, at, _, _)| {
                            specificity > len || (specificity == len && key < at)
                        }) {
                            best = Some((specificity, key, time, resource));
                        }
                    }
                },
            );
            if let Some((_, _, time, resource)) = best {
                locks.insert_pinned(job, time, resource);
            }
        }
    }

    /// The jobs that can appear on a track: its processes (except the
    /// dummies) and the broadcasts of the conditions it determines.
    pub(crate) fn track_jobs<'t>(&'t self, track: &'t Track) -> impl Iterator<Item = Job> + 't {
        track
            .processes()
            .iter()
            .filter(|&&p| !self.cpg.process(p).kind().is_dummy())
            .map(|&p| Job::Process(p))
            .chain(track.determined_conditions().map(Job::Broadcast))
    }

    /// Rules 2 and 4: place one activation time, repairing conflicts by the
    /// Theorem-2 loop when necessary.
    // lint: hot-path (one table placement per node visit)
    fn place<V: TableView + ?Sized>(
        &self,
        state: &mut WalkState,
        view: &mut V,
        schedule: &PathSchedule,
        decided: &Assignment,
        sj: ScheduledJob,
    ) -> Placement {
        let (job, start, pe) = (sj.job(), sj.start(), sj.pe());
        let column = self.column_for(schedule, decided, pe, start);
        let mut candidates = std::mem::take(&mut state.candidates_buf);
        candidates.clear();
        view.for_each_compatible_entry_on(job, &column, &mut |key, _, t, resource| {
            if t != start {
                candidates.push((t, key, resource));
            }
        });

        if candidates.is_empty() {
            state.candidates_buf = candidates;
            let resource = if view.get(job, &column) == Some(start) {
                view.resource(job, &column).or(pe)
            } else {
                // Compatible cells at the same time must agree on the
                // recorded resource: an execution satisfying two compatible
                // columns dispatches the activation once, on one resource, so
                // the first recorded provenance wins over the track-local
                // choice of later schedules. The lowest column key restates
                // "first" over the index's unordered groups.
                let mut adopted: Option<(u64, PeId)> = None;
                view.for_each_compatible_entry_on(job, &column, &mut |key, _, time, recorded| {
                    if time == start {
                        if let Some(recorded) = recorded {
                            if adopted.is_none_or(|(at, _)| key < at) {
                                adopted = Some((key, recorded));
                            }
                        }
                    }
                });
                let resource = adopted.map(|(_, recorded)| recorded).or(pe);
                view.set_on(job, column, start, resource);
                resource
            };
            return Placement::Kept(resource);
        }

        // Theorem 2: one of the previously tabled activation times of this
        // process avoids every conflict. Moving to a tabled time also adopts
        // the resource recorded for it — that is where the job proved to fit.
        // Sorting by (time, key) before the per-time dedup keeps the
        // lowest-key provenance per candidate time, which is the entry the
        // old serial-order scan would have kept.
        candidates.sort_unstable_by_key(|&(t, key, _)| (t, key));
        candidates.dedup_by_key(|&mut (t, _, _)| t);
        for at in 0..candidates.len() {
            let (candidate, _, resource) = candidates[at];
            let moved_column = self.column_for(schedule, decided, pe, candidate);
            let mut still_conflicts = false;
            view.for_each_compatible_entry_on(job, &moved_column, &mut |_, _, t, _| {
                still_conflicts |= t != candidate;
            });
            if !still_conflicts {
                if view.get(job, &moved_column) != Some(candidate) {
                    view.set_on(job, moved_column, candidate, resource);
                }
                state.stats.conflicts_repaired += 1;
                state.candidates_buf = candidates;
                return Placement::Moved(candidate, resource);
            }
        }
        state.candidates_buf = candidates;

        // Should not happen for well-formed inputs (Theorem 2); keep the
        // original time and record the requirement-2 violation.
        state.stats.unrepaired_conflicts += 1;
        view.set_on(job, column, start, pe);
        Placement::Kept(pe)
    }

    /// Rule 2: the column of an activation at time `t` on processing element
    /// `pe` is the conjunction of the condition values that are known on `pe`
    /// at `t` according to the current schedule, restricted to the conditions
    /// already decided along the current tree path.
    fn column_for(
        &self,
        schedule: &PathSchedule,
        decided: &Assignment,
        pe: Option<PeId>,
        t: Time,
    ) -> Cube {
        schedule
            .known_conditions(self.cpg, pe, t)
            .retain(|c: CondId| decided.value(c).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::examples;

    fn merge(system: &examples::ExampleSystem) -> MergeResult {
        generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(system.broadcast_time()),
        )
    }

    #[test]
    fn diamond_table_is_correct_and_tight() {
        let system = examples::diamond();
        let result = merge(&system);
        result
            .table()
            .verify(system.cpg(), result.tracks())
            .unwrap();
        assert_eq!(result.tracks().len(), 2);
        assert!(result.delta_max() >= result.delta_m());
        assert_eq!(result.stats().unrepaired_conflicts, 0);
        // The longest path keeps exactly its optimal delay (the guarantee of
        // the merging strategy).
        let longest = result
            .path_schedules()
            .iter()
            .map(PathSchedule::delay)
            .max()
            .unwrap();
        assert_eq!(result.delta_m(), longest);
        let worst_track = result
            .tracks()
            .iter()
            .map(|t| result.table().track_delay(system.cpg(), &t.label()))
            .max()
            .unwrap();
        assert_eq!(worst_track, result.delta_max());
    }

    #[test]
    fn sensor_actuator_table_is_correct() {
        let system = examples::sensor_actuator();
        let result = merge(&system);
        result
            .table()
            .verify(system.cpg(), result.tracks())
            .unwrap();
        assert_eq!(result.tracks().len(), 3);
        assert_eq!(result.stats().unrepaired_conflicts, 0);
        assert!(result.delta_max() >= result.delta_m());
    }

    #[test]
    fn fig1_reproduces_the_papers_headline_behaviour() {
        let system = examples::fig1();
        let result = merge(&system);
        result
            .table()
            .verify(system.cpg(), result.tracks())
            .unwrap();
        assert_eq!(result.tracks().len(), 6);
        assert_eq!(result.stats().unrepaired_conflicts, 0);
        // For the Fig. 1 example the paper obtains delta_max = delta_M = 39:
        // the table's worst case equals the longest individual path. The
        // reconstruction should also achieve (near-)zero overhead.
        assert!(result.delta_max() >= result.delta_m());
        assert!(
            result.overhead_percent() <= 10.0,
            "overhead {:.2}% unexpectedly large",
            result.overhead_percent()
        );
        // Unconditionally activated processes sit in the `true` column.
        let p1 = system.cpg().process_by_name("P1").unwrap();
        assert!(result
            .table()
            .entries(Job::Process(p1))
            .any(|(col, _)| col.is_top()));
    }

    #[test]
    fn fig1_longest_path_keeps_its_optimal_delay() {
        let system = examples::fig1();
        let result = merge(&system);
        // The strategy guarantees the longest path executes in exactly
        // delta_M time.
        let (longest_label, longest_delay) = result
            .path_schedules()
            .iter()
            .map(|s| (s.label(), s.delay()))
            .max_by_key(|&(_, d)| d)
            .unwrap();
        assert_eq!(longest_delay, result.delta_m());
        assert_eq!(
            result.table().track_delay(system.cpg(), &longest_label),
            result.delta_m()
        );
    }

    #[test]
    fn decision_tree_has_one_forward_and_one_back_step_per_node() {
        let system = examples::fig1();
        // Steps are recorded only under tracing (off by default, to keep the
        // hot walk allocation-free).
        let result = generate_schedule_table(
            system.cpg(),
            system.arch(),
            &MergeConfig::new(system.broadcast_time()).with_trace(true),
        );
        let forward = result.steps().iter().filter(|s| !s.back_step).count();
        let back = result.steps().iter().filter(|s| s.back_step).count();
        assert_eq!(forward, back);
        // A binary tree with N_alt = 6 leaves has 5 internal nodes, each
        // visited once in each direction.
        assert_eq!(forward, result.tracks().len() - 1);
        assert_eq!(result.stats().tree_nodes, forward + back);
        assert_eq!(result.stats().adjustments, back);
    }

    #[test]
    fn steps_stay_empty_without_tracing() {
        let system = examples::fig1();
        let result = merge(&system);
        assert!(result.steps().is_empty());
        // The stats counters are collected regardless.
        assert!(result.stats().tree_nodes > 0);
    }

    #[test]
    fn every_track_has_an_activation_for_each_of_its_processes() {
        let system = examples::fig1();
        let result = merge(&system);
        let table = result.table();
        for track in result.tracks().iter() {
            for &pid in track.processes() {
                if system.cpg().process(pid).kind().is_dummy() {
                    continue;
                }
                assert!(
                    table
                        .activation_on_track(Job::Process(pid), &track.label())
                        .is_some(),
                    "{} missing on {}",
                    system.cpg().process(pid).name(),
                    track.label()
                );
            }
        }
    }

    #[test]
    fn broadcast_rows_exist_for_every_condition() {
        let system = examples::fig1();
        let result = merge(&system);
        for cond in system.cpg().conditions() {
            assert!(
                result.table().contains_job(Job::Broadcast(cond)),
                "broadcast row for {} missing",
                system.cpg().condition_name(cond)
            );
        }
    }

    #[test]
    fn selection_policies_affect_quality_but_not_correctness() {
        let system = examples::fig1();
        let base = MergeConfig::new(system.broadcast_time());
        let policies = [
            SelectionPolicy::LongestDelayFirst,
            SelectionPolicy::ShortestDelayFirst,
            SelectionPolicy::EnumerationOrder,
        ];
        for policy in policies {
            let result =
                generate_schedule_table(system.cpg(), system.arch(), &base.with_selection(policy));
            // Every policy produces a correct table; only the delay differs.
            result
                .table()
                .verify(system.cpg(), result.tracks())
                .unwrap();
            assert_eq!(result.stats().unrepaired_conflicts, 0);
        }
        // The paper's policy guarantees the longest path keeps its optimal
        // delay, i.e. zero overhead for the Fig. 1 example (the paper reports
        // delta_max = delta_M = 39 for its exact graph).
        let paper_policy = generate_schedule_table(system.cpg(), system.arch(), &base);
        assert!(paper_policy.is_zero_overhead());
    }

    /// Crafted system where an inherited lock *must* slip: `victim` runs
    /// early on the longest path (tabled in the `true` column before the
    /// condition resolves), but on the opposite branch it additionally
    /// consumes the output of `slow`, which can only start after `!C` is
    /// known — long after the tabled time. The merge has to feed the slipped
    /// entry back through the repair loop: the final table may not keep the
    /// stale early time.
    fn slipping_system() -> (Architecture, Cpg) {
        use cpg::CpgBuilder;
        let arch = Architecture::builder()
            .processor("cpu0")
            .processor("cpu1")
            .bus("bus")
            .build()
            .unwrap();
        let cpu0 = arch.pe_by_name("cpu0").unwrap();
        let cpu1 = arch.pe_by_name("cpu1").unwrap();
        let mut b = CpgBuilder::new();
        let c = b.condition("C");
        let root = b.process("root", Time::new(10), cpu0);
        let quick = b.process("quick", Time::new(1), cpu1);
        let victim = b.process("victim", Time::new(2), cpu1);
        let slow = b.process("slow", Time::new(3), cpu1);
        let tail = b.process("tail", Time::new(20), cpu0);
        b.simple_edge(quick, victim, Time::ZERO);
        b.conditional_edge(root, slow, c.is_false(), Time::ZERO);
        b.conditional_edge(root, tail, c.is_true(), Time::ZERO);
        b.simple_edge(slow, victim, Time::ZERO);
        // `victim` joins the two alternatives: it executes on every path and
        // waits for `slow` only where `slow` runs.
        b.mark_conjunction(victim);
        let cpg = b.build(&arch).unwrap();
        (arch, cpg)
    }

    #[test]
    fn inherited_lock_that_must_slip_is_repaired_in_the_table() {
        use cpg_path_sched::LockSet;
        let (arch, cpg) = slipping_system();
        let result = generate_schedule_table(&cpg, &arch, &MergeConfig::new(Time::new(2)));
        let stats = result.stats();
        assert!(
            stats.slip_repairs > 0,
            "the crafted lock never slipped: {stats:?}"
        );
        assert_eq!(
            stats.lock_slips,
            0,
            "a slip survived repair: {stats:?}\n{}",
            result.table().render(&cpg)
        );

        // The stale early activation is gone: on every path the tabled time
        // of `victim` is at or after the moment its inputs can arrive on the
        // slow branch.
        let victim = Job::Process(cpg.process_by_name("victim").unwrap());
        let slow = Job::Process(cpg.process_by_name("slow").unwrap());
        let table = result.table();
        table.verify(&cpg, result.tracks()).unwrap();
        let not_c = result
            .tracks()
            .iter()
            .find(|t| t.processes().contains(&slow.as_process().unwrap()))
            .unwrap()
            .label();
        let victim_at = table.activation_on_track(victim, &not_c).unwrap();
        let slow_at = table.activation_on_track(slow, &not_c).unwrap();
        assert!(
            victim_at >= slow_at + cpg.exec_time(slow.as_process().unwrap()),
            "victim tabled at {victim_at} before slow completes"
        );

        // Replaying the final table through the per-track scheduler honours
        // every activation time: the table is realizable end to end.
        let scheduler = ListScheduler::new(&cpg, &arch, Time::new(2));
        for track in result.tracks().iter() {
            let assignment = Assignment::from_cube(&track.label());
            let mut locks = LockSet::for_graph(&cpg);
            for job in table.jobs() {
                if let Some(time) = table.activation_time(job, &assignment) {
                    let pe = table.activation_resource(job, &assignment);
                    locks.insert_pinned(job, time, pe);
                }
            }
            let ctx = scheduler.context(track);
            let replay = ctx.reschedule(&ctx.schedule(), &locks);
            assert!(
                replay.slipped_locks().is_empty(),
                "table not realizable on {}: {:?}",
                track.label(),
                replay.slipped_locks()
            );
        }
    }

    /// Field-wise comparison of the undo-log walk against the clone-per-node
    /// oracle (the broad random coverage lives in the workspace-level
    /// differential proptest; this pins the crafted examples). Tracing is
    /// forced on so the step-by-step visit order is compared too.
    fn assert_walks_identical(cpg: &Cpg, arch: &Architecture, config: &MergeConfig) {
        let config = config.with_trace(true);
        let undo = generate_schedule_table(cpg, arch, &config);
        let oracle = generate_schedule_table_cloning(cpg, arch, &config);
        assert_eq!(undo.table(), oracle.table());
        assert_eq!(undo.tracks(), oracle.tracks());
        assert_eq!(undo.path_schedules(), oracle.path_schedules());
        assert_eq!(undo.delta_m(), oracle.delta_m());
        assert_eq!(undo.delta_max(), oracle.delta_max());
        assert_eq!(undo.steps(), oracle.steps());
        assert_eq!(undo.stats(), oracle.stats());
    }

    #[test]
    fn undo_log_walk_matches_the_cloning_oracle_on_the_examples() {
        for system in [
            examples::diamond(),
            examples::sensor_actuator(),
            examples::fig1(),
        ] {
            let config = MergeConfig::new(system.broadcast_time());
            assert_walks_identical(system.cpg(), system.arch(), &config);
        }
    }

    #[test]
    fn undo_log_walk_matches_the_cloning_oracle_when_locks_slip() {
        let (arch, cpg) = slipping_system();
        let config = MergeConfig::new(Time::new(2));
        // Sanity: this system forces the repair loop.
        let result = generate_schedule_table(&cpg, &arch, &config);
        assert!(result.stats().slip_repairs > 0);
        assert_walks_identical(&cpg, &arch, &config);
    }

    /// The speculative walk must be bit-identical to the serial walk for
    /// every thread budget and policy (the broad random coverage lives in
    /// the workspace-level differential proptest; this pins the crafted
    /// examples and the slip-forcing system).
    fn assert_budgets_identical(cpg: &Cpg, arch: &Architecture, base: MergeConfig) {
        let base = base.with_trace(true);
        let serial = generate_schedule_table(cpg, arch, &base.with_threads(1));
        for threads in [2, 4, 8] {
            let par = generate_schedule_table(cpg, arch, &base.with_threads(threads));
            assert_eq!(
                serial.table(),
                par.table(),
                "table diverged at {threads} threads"
            );
            assert_eq!(serial.path_schedules(), par.path_schedules());
            assert_eq!(serial.delta_m(), par.delta_m());
            assert_eq!(serial.delta_max(), par.delta_max());
            assert_eq!(
                serial.steps(),
                par.steps(),
                "steps diverged at {threads} threads"
            );
            assert_eq!(
                serial.stats(),
                par.stats(),
                "stats diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_walk_is_bit_identical_for_every_budget() {
        for system in [
            examples::diamond(),
            examples::sensor_actuator(),
            examples::fig1(),
        ] {
            assert_budgets_identical(
                system.cpg(),
                system.arch(),
                MergeConfig::new(system.broadcast_time()),
            );
        }
    }

    #[test]
    fn parallel_walk_is_bit_identical_across_policies_and_slips() {
        let (arch, cpg) = slipping_system();
        for policy in [
            SelectionPolicy::LongestDelayFirst,
            SelectionPolicy::ShortestDelayFirst,
            SelectionPolicy::EnumerationOrder,
        ] {
            assert_budgets_identical(
                &cpg,
                &arch,
                MergeConfig::new(Time::new(2)).with_selection(policy),
            );
        }
        let system = examples::fig1();
        for policy in [
            SelectionPolicy::ShortestDelayFirst,
            SelectionPolicy::EnumerationOrder,
        ] {
            assert_budgets_identical(
                system.cpg(),
                system.arch(),
                MergeConfig::new(system.broadcast_time()).with_selection(policy),
            );
        }
    }

    #[test]
    fn unconditional_graph_produces_a_single_column_table() {
        use cpg::CpgBuilder;
        use cpg_arch::Architecture;
        let arch = Architecture::builder()
            .processor("cpu0")
            .processor("cpu1")
            .bus("bus")
            .build()
            .unwrap();
        let cpu0 = arch.pe_by_name("cpu0").unwrap();
        let cpu1 = arch.pe_by_name("cpu1").unwrap();
        let mut b = CpgBuilder::new();
        let a = b.process("a", Time::new(2), cpu0);
        let c = b.process("c", Time::new(3), cpu1);
        b.simple_edge(a, c, Time::new(1));
        let cpg = b.build(&arch).unwrap();
        let cpg = cpg::expand_communications(&cpg, &arch, cpg::BusPolicy::FirstBus).unwrap();
        let result = generate_schedule_table(&cpg, &arch, &MergeConfig::new(Time::new(1)));
        assert_eq!(result.tracks().len(), 1);
        assert_eq!(result.table().num_columns(), 1);
        assert!(result.table().columns()[0].is_top());
        assert!(result.is_zero_overhead());
        assert_eq!(result.delta_m(), Time::new(6));
    }
}
