//! The coverage-driven fuzzing loop and the offender reducer.

use std::collections::HashSet;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cpg_gen::{EditOp, GeneratorConfig, Workload, WorkloadOp};
use proptest::shrink::minimize_list;

use crate::behavior::{BehaviorVector, NoveltyArchive, Signature};
use crate::oracle::{run_oracles, OracleFailure};

/// Fuzzing-run parameters. All knobs are explicit CLI/test inputs — the
/// fuzzer reads no environment variables, so runs are reproducible from the
/// printed seed alone.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every generated workload derives from it.
    pub seed: u64,
    /// Mutation iterations to run.
    pub iterations: usize,
    /// Wall-clock safety cutoff (`None` = run all iterations).
    pub max_seconds: Option<u64>,
}

impl FuzzConfig {
    /// A config running `iterations` mutations from `seed`, no time bound.
    #[must_use]
    pub fn new(seed: u64, iterations: usize) -> Self {
        FuzzConfig {
            seed,
            iterations,
            max_seconds: None,
        }
    }
}

/// A retained behavior representative: the first workload that landed in a
/// fresh deterministic-signature cell.
#[derive(Debug, Clone)]
pub struct BehaviorEntry {
    /// The workload (not yet shrunk — see [`shrink_preserving_signature`]).
    pub workload: Workload,
    /// Its behavior vector.
    pub vector: BehaviorVector,
}

/// A confirmed oracle violation, already shrunk.
#[derive(Debug, Clone)]
pub struct FailureEntry {
    /// The minimized offending workload.
    pub workload: Workload,
    /// The violation it reproduces.
    pub failure: OracleFailure,
}

/// What a fuzzing run produced.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Workloads the constructors rejected before any merge ran.
    pub benign_rejections: usize,
    /// Distinct search-key cells seen (includes scheduling-dependent
    /// dimensions).
    pub search_cells: usize,
    /// One representative per deterministic behavior signature, in
    /// discovery order.
    pub behaviors: Vec<BehaviorEntry>,
    /// Shrunk oracle violations (empty on a healthy tree).
    pub failures: Vec<FailureEntry>,
}

/// Base configurations the mutation search grows from: small systems across
/// the conditional-structure and architecture-pressure axes, so the first
/// generation already spans several behavior cells.
fn seed_workloads(rng: &mut StdRng) -> Vec<Workload> {
    [
        (16usize, 2usize, 2usize, 1usize),
        (24, 4, 3, 2),
        (28, 6, 2, 2),
        (32, 8, 4, 2),
    ]
    .iter()
    .map(|&(nodes, paths, processors, buses)| {
        Workload::new(
            GeneratorConfig::new(nodes, paths)
                .with_processors(processors)
                .with_buses(buses)
                .with_seed(rng.random_range(0..u64::MAX)),
        )
    })
    .collect()
}

fn random_op(rng: &mut StdRng) -> WorkloadOp {
    match rng.random_range(0..8u32) {
        0 => WorkloadOp::ExecTime {
            slot: rng.random_range(0..64),
            units: rng.random_range(1..500),
        },
        1 => WorkloadOp::Remap {
            slot: rng.random_range(0..64),
            pe_slot: rng.random_range(0..8),
        },
        2 => WorkloadOp::SqueezeProcessors {
            processors: rng.random_range(0..6),
        },
        3 => WorkloadOp::SqueezeBuses {
            buses: rng.random_range(0..4),
        },
        4 => WorkloadOp::DropProcessingElements {
            keep: rng.random_range(0..12),
        },
        5 => WorkloadOp::AddDependency {
            from_slot: rng.random_range(0..64),
            to_slot: rng.random_range(0..64),
            comm: rng.random_range(0..10),
        },
        6 => WorkloadOp::RemoveDependency {
            slot: rng.random_range(0..64),
        },
        _ => WorkloadOp::RenestGuard {
            slot: rng.random_range(0..64),
            cond_slot: rng.random_range(0..8),
            value: rng.random_bool(0.5),
        },
    }
}

fn random_edit(rng: &mut StdRng) -> EditOp {
    match rng.random_range(0..3u32) {
        0 => EditOp::ExecTime {
            slot: rng.random_range(0..64),
            units: rng.random_range(1..500),
        },
        1 => EditOp::Remap {
            slot: rng.random_range(0..64),
            pe_slot: rng.random_range(0..8),
        },
        _ => EditOp::TightenGuard {
            slot: rng.random_range(0..64),
            cond_slot: rng.random_range(0..8),
            value: rng.random_bool(0.5),
        },
    }
}

/// Caps that keep mutated workloads shrinkable and materialization cheap.
const MAX_OPS: usize = 24;
const MAX_EDITS: usize = 6;

fn mutate(parent: &Workload, rng: &mut StdRng) -> Workload {
    let mut child = parent.clone();
    for _ in 0..rng.random_range(1..=3u32) {
        let roll: f64 = rng.random();
        if roll < 0.60 {
            child.ops.push(random_op(rng));
        } else if roll < 0.75 {
            child.edits.push(random_edit(rng));
        } else if roll < 0.85 && !child.ops.is_empty() {
            let index = rng.random_range(0..child.ops.len());
            child.ops.remove(index);
        } else if roll < 0.95 {
            // Fresh base graph under the same mutation history.
            child.config = child
                .config
                .clone()
                .with_seed(rng.random_range(0..u64::MAX));
        } else if !child.edits.is_empty() {
            let index = rng.random_range(0..child.edits.len());
            child.edits.remove(index);
        } else {
            child.edits.push(random_edit(rng));
        }
    }
    while child.ops.len() > MAX_OPS {
        child.ops.remove(0);
    }
    while child.edits.len() > MAX_EDITS {
        child.edits.remove(0);
    }
    child
}

/// Runs the coverage-driven mutation loop.
///
/// Every iteration mutates a workload from the interesting pool,
/// materializes it (constructor rejections are counted as benign), runs the
/// oracle battery, and keeps the child when its behavior vector lands in a
/// fresh novelty cell. Oracle violations are shrunk with
/// [`shrink_failure`] before being reported.
#[must_use]
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pool = seed_workloads(&mut rng);
    let mut archive = NoveltyArchive::new();
    let mut signatures: HashSet<Signature> = HashSet::new();
    let mut report = FuzzReport::default();

    let observe = |workload: &Workload,
                   report: &mut FuzzReport,
                   archive: &mut NoveltyArchive,
                   signatures: &mut HashSet<Signature>|
     -> Option<bool> {
        let Ok(system) = workload.materialize() else {
            report.benign_rejections += 1;
            return None;
        };
        match run_oracles(workload, &system) {
            Ok(vector) => {
                let novel = archive.observe(&vector);
                if signatures.insert(vector.signature()) {
                    report.behaviors.push(BehaviorEntry {
                        workload: workload.clone(),
                        vector,
                    });
                }
                Some(novel)
            }
            Err(failure) => {
                let workload = shrink_failure(workload);
                report.failures.push(FailureEntry { workload, failure });
                Some(false)
            }
        }
    };

    // The seed pool is observed first so the archive starts populated.
    for workload in pool.clone() {
        observe(&workload, &mut report, &mut archive, &mut signatures);
    }

    for _ in 0..config.iterations {
        if let Some(max_seconds) = config.max_seconds {
            if started.elapsed().as_secs() >= max_seconds {
                break;
            }
        }
        report.iterations += 1;
        let parent = &pool[rng.random_range(0..pool.len())];
        let child = mutate(parent, &mut rng);
        if observe(&child, &mut report, &mut archive, &mut signatures) == Some(true) {
            pool.push(child);
        }
    }

    report.search_cells = archive.len();
    report
}

/// Minimizes an offending workload: drops every mutation op and edit whose
/// removal keeps *some* oracle failing (the failure may legitimately shift
/// between oracles while shrinking — any violation is worth keeping).
#[must_use]
pub fn shrink_failure(workload: &Workload) -> Workload {
    let still_fails = |candidate: &Workload| match candidate.materialize() {
        Ok(system) => run_oracles(candidate, &system).is_err(),
        Err(_) => false,
    };
    shrink_with(workload, still_fails)
}

/// Minimizes a behavior representative while preserving its deterministic
/// signature, so banked corpus entries carry only the mutations that
/// actually produce their behavior cell.
#[must_use]
pub fn shrink_preserving_signature(workload: &Workload, signature: Signature) -> Workload {
    let still_matches = |candidate: &Workload| match candidate.materialize() {
        Ok(system) => {
            run_oracles(candidate, &system).is_ok_and(|vector| vector.signature() == signature)
        }
        Err(_) => false,
    };
    shrink_with(workload, still_matches)
}

fn shrink_with(workload: &Workload, predicate: impl Fn(&Workload) -> bool) -> Workload {
    let base = workload.clone();
    let ops = minimize_list(&base.ops, |ops| {
        let mut candidate = base.clone();
        candidate.ops = ops.to_vec();
        predicate(&candidate)
    });
    let mut current = base;
    current.ops = ops;
    let with_ops = current.clone();
    current.edits = minimize_list(&with_ops.edits, |edits| {
        let mut candidate = with_ops.clone();
        candidate.edits = edits.to_vec();
        predicate(&candidate)
    });
    current
}
