//! The merger's behavior vector and the novelty archive over its quantized
//! signatures.

use std::collections::HashSet;

use cpg_merge::{MergeError, MergeOutcome, MergeResult};

/// Length of a quantized [`Signature`].
pub const SIGNATURE_LEN: usize = 12;

/// A quantized behavior signature: every counter of the behavior vector,
/// log2-bucketed. Two runs with the same signature exercised the merger "the
/// same way" for the fuzzer's purposes.
pub type Signature = [u8; SIGNATURE_LEN];

/// What one merge did, counted — the fuzzer's coverage signal.
///
/// The vector is built from [`MergeStats`](cpg_merge::MergeStats) of the
/// deterministic single-threaded baseline merge (so signatures are
/// reproducible anywhere), plus the typed-rejection discriminant for inputs
/// the merger refuses, the outcome degradation flag, and the
/// speculative-validation discard count observed across the multi-threaded
/// oracle runs. The discard count is scheduling-dependent and therefore kept
/// out of [`signature`](BehaviorVector::signature); it still steers the
/// in-process novelty search via [`search_key`](BehaviorVector::search_key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BehaviorVector {
    /// Discriminant of the typed [`MergeError`] rejection (0 = accepted).
    pub rejection: u8,
    /// `true` when the merge finished with a degraded [`MergeOutcome`].
    pub degraded: bool,
    /// Decision-tree nodes visited.
    pub tree_nodes: usize,
    /// Activation times adjusted into the table.
    pub adjustments: usize,
    /// Determinism conflicts repaired via Theorem 2.
    pub conflicts_repaired: usize,
    /// Conflicts left unrepaired.
    pub unrepaired_conflicts: usize,
    /// Lock slips repaired by the slip-correcting pipeline.
    pub slip_repairs: usize,
    /// Lock slips surviving in the final table.
    pub lock_slips: usize,
    /// Deepest decision-tree node reached, in decided conditions.
    pub max_walk_depth: usize,
    /// Total Theorem-2 repair-loop iterations.
    pub repair_rounds: usize,
    /// Alternative paths of the merged system.
    pub tracks: usize,
    /// Speculative subtree walks discarded after validation, maximized over
    /// the multi-threaded oracle runs (scheduling-dependent; excluded from
    /// the deterministic signature).
    pub spec_discards: usize,
}

impl BehaviorVector {
    /// The vector of a completed merge.
    #[must_use]
    pub fn from_result(result: &MergeResult) -> Self {
        let stats = result.stats();
        BehaviorVector {
            rejection: 0,
            degraded: !matches!(result.outcome(), MergeOutcome::Realizable),
            tree_nodes: stats.tree_nodes,
            adjustments: stats.adjustments,
            conflicts_repaired: stats.conflicts_repaired,
            unrepaired_conflicts: stats.unrepaired_conflicts,
            slip_repairs: stats.slip_repairs,
            lock_slips: stats.lock_slips,
            max_walk_depth: stats.max_walk_depth,
            repair_rounds: stats.repair_rounds,
            tracks: result.tracks().len(),
            spec_discards: result.spec_discards(),
        }
    }

    /// The vector of a typed input rejection: every counter zero, the
    /// rejection discriminant set. Each [`MergeError`] variant is its own
    /// behavior — the fuzzer keeps one corpus representative per rejection
    /// path.
    #[must_use]
    pub fn from_rejection(error: &MergeError) -> Self {
        let rejection = match error {
            MergeError::EmptyGraph => 1,
            MergeError::ZeroResourceSystem => 2,
            MergeError::UnmappedProcess { .. } => 3,
            MergeError::DanglingProcessingElement { .. } => 4,
            MergeError::ProcessOnWrongElement { .. } => 5,
            MergeError::DanglingCondition { .. } => 6,
            MergeError::CyclicDependency => 7,
            MergeError::UnrepairedConflicts { .. } => 8,
            _ => 9,
        };
        BehaviorVector {
            rejection,
            degraded: false,
            tree_nodes: 0,
            adjustments: 0,
            conflicts_repaired: 0,
            unrepaired_conflicts: 0,
            slip_repairs: 0,
            lock_slips: 0,
            max_walk_depth: 0,
            repair_rounds: 0,
            tracks: 0,
            spec_discards: 0,
        }
    }

    /// The deterministic quantized signature: rejection discriminant,
    /// degradation flag, then every counter log2-bucketed. Reproducible on
    /// any machine and thread count — corpus distinctness is defined over
    /// these.
    #[must_use]
    pub fn signature(&self) -> Signature {
        [
            self.rejection,
            u8::from(self.degraded),
            bucket(self.tree_nodes),
            bucket(self.adjustments),
            bucket(self.conflicts_repaired),
            bucket(self.unrepaired_conflicts),
            bucket(self.slip_repairs),
            bucket(self.lock_slips),
            bucket(self.max_walk_depth),
            bucket(self.repair_rounds),
            bucket(self.tracks),
            0,
        ]
    }

    /// The in-process novelty key: the signature plus the bucketed
    /// speculative-discard count. Richer than [`signature`]
    /// (BehaviorVector::signature) but scheduling-dependent, so it only
    /// steers the search and never defines corpus identity.
    #[must_use]
    pub fn search_key(&self) -> Signature {
        let mut key = self.signature();
        key[SIGNATURE_LEN - 1] = bucket(self.spec_discards);
        key
    }
}

/// Log2 bucket: 0 for 0, else `floor(log2(value)) + 1`. Collapses "343 vs
/// 401 tree nodes" while separating orders of magnitude.
fn bucket(value: usize) -> u8 {
    if value == 0 {
        0
    } else {
        (usize::BITS - value.leading_zeros()) as u8
    }
}

/// A set of behavior signatures already seen; workloads whose vector lands
/// in a fresh cell are retained for further mutation.
#[derive(Debug, Default)]
pub struct NoveltyArchive {
    seen: HashSet<Signature>,
}

impl NoveltyArchive {
    /// An empty archive.
    #[must_use]
    pub fn new() -> Self {
        NoveltyArchive::default()
    }

    /// Records the vector's search key; `true` when it was novel.
    pub fn observe(&mut self, vector: &BehaviorVector) -> bool {
        self.seen.insert(vector.search_key())
    }

    /// Number of distinct behavior cells seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// `true` when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(1023), 10);
        assert_eq!(bucket(1024), 11);
    }

    #[test]
    fn rejections_occupy_distinct_cells() {
        let mut archive = NoveltyArchive::new();
        use cpg::{CondId, ProcessId};
        let errors = [
            MergeError::EmptyGraph,
            MergeError::ZeroResourceSystem,
            MergeError::UnmappedProcess {
                process: ProcessId::from_index(0),
            },
            MergeError::DanglingProcessingElement {
                process: ProcessId::from_index(0),
                pe: 7,
            },
            MergeError::DanglingCondition {
                condition: CondId::new(1),
            },
            MergeError::CyclicDependency,
        ];
        for error in &errors {
            assert!(archive.observe(&BehaviorVector::from_rejection(error)));
        }
        assert_eq!(archive.len(), errors.len());
        assert!(!archive.observe(&BehaviorVector::from_rejection(&MergeError::EmptyGraph)));
    }

    #[test]
    fn spec_discards_steer_search_but_not_identity() {
        let mut a = BehaviorVector::from_rejection(&MergeError::EmptyGraph);
        let mut b = a;
        a.spec_discards = 0;
        b.spec_discards = 9;
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.search_key(), b.search_key());
    }
}
