//! The differential oracle battery every fuzzer-generated system runs
//! through.
//!
//! A workload only counts as *behavior* once every oracle agrees the merger
//! handled it correctly:
//!
//! 1. **No panic** — the whole battery runs under `catch_unwind`; any panic
//!    anywhere in the merge stack is a failure (validated inputs must merge,
//!    pathological inputs must be rejected with a typed error).
//! 2. **Input validation** — systems [`validate_system`] rejects must also
//!    be rejected by the `try_` entry points (and vice versa never merged).
//! 3. **Thread identity** — merges with 2, 4 and 8 workers must be
//!    bit-identical to the single-threaded baseline (table, schedules,
//!    steps, stats).
//! 4. **Cloning walk** — the undo-log walk must match the clone-based
//!    reference walk.
//! 5. **Warm vs cold** — a [`MergeSession`] replaying the workload's edit
//!    sequence must produce, after every edit, the same result as a cold
//!    merge of an identically edited graph.
//! 6. **Reference realizability** — replaying the final table through the
//!    naive reference scheduler must reproduce exactly the surviving-slip
//!    count the merge reported.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use cpg::{Assignment, Cpg};
use cpg_arch::{Architecture, PeId, Time};
use cpg_gen::{GeneratedSystem, Workload};
use cpg_merge::{
    generate_schedule_table, generate_schedule_table_cloning, try_generate_schedule_table,
    validate_system, MergeConfig, MergeResult, MergeSession,
};
use cpg_path_sched::{reference, Job};

use crate::behavior::BehaviorVector;

/// Which oracle flagged a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Something in the merge stack panicked.
    NoPanic,
    /// `validate_system` and the `try_` entry points disagreed.
    InputValidation,
    /// A multi-threaded merge diverged from the single-threaded baseline.
    ThreadIdentity,
    /// The undo-log walk diverged from the clone-based walk.
    CloningWalk,
    /// A warm session merge diverged from the cold merge of the same system.
    WarmVsCold,
    /// The final table is not realizable exactly as its stats report.
    ReferenceRealizability,
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OracleKind::NoPanic => "no-panic",
            OracleKind::InputValidation => "input-validation",
            OracleKind::ThreadIdentity => "thread-identity",
            OracleKind::CloningWalk => "cloning-walk",
            OracleKind::WarmVsCold => "warm-vs-cold",
            OracleKind::ReferenceRealizability => "reference-realizability",
        })
    }
}

/// A confirmed oracle violation for one workload.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// The oracle that flagged the workload.
    pub oracle: OracleKind,
    /// Human-readable divergence description.
    pub detail: String,
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.oracle, self.detail)
    }
}

/// Runs a materialized workload through the full oracle battery.
///
/// Returns the behavior vector when every oracle passes, or the first
/// violation. Panics anywhere in the battery are caught and reported as
/// [`OracleKind::NoPanic`] failures.
pub fn run_oracles(
    workload: &Workload,
    system: &GeneratedSystem,
) -> Result<BehaviorVector, OracleFailure> {
    match catch_unwind(AssertUnwindSafe(|| run_oracles_inner(workload, system))) {
        Ok(result) => result,
        Err(payload) => Err(OracleFailure {
            oracle: OracleKind::NoPanic,
            detail: panic_message(&payload),
        }),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn run_oracles_inner(
    workload: &Workload,
    system: &GeneratedSystem,
) -> Result<BehaviorVector, OracleFailure> {
    let cpg = system.cpg();
    let arch = system.arch();
    let config = MergeConfig::new(system.broadcast_time()).with_threads(1);

    // Oracle 2: typed rejection of pathological systems.
    if let Err(error) = validate_system(cpg, arch) {
        if try_generate_schedule_table(cpg, arch, &config).is_ok() {
            return Err(OracleFailure {
                oracle: OracleKind::InputValidation,
                detail: format!(
                    "try_generate_schedule_table accepted a system rejected as {error}"
                ),
            });
        }
        if MergeSession::try_new(cpg, arch, &config).is_ok() {
            return Err(OracleFailure {
                oracle: OracleKind::InputValidation,
                detail: format!("MergeSession::try_new accepted a system rejected as {error}"),
            });
        }
        return Ok(BehaviorVector::from_rejection(&error));
    }
    if let Err(error) = try_generate_schedule_table(cpg, arch, &config).map(drop) {
        return Err(OracleFailure {
            oracle: OracleKind::InputValidation,
            detail: format!("try entry point rejected a validated system: {error}"),
        });
    }

    let baseline = generate_schedule_table(cpg, arch, &config);
    let mut vector = BehaviorVector::from_result(&baseline);

    // Oracle 4: undo-log walk vs clone-based walk. Runs before the thread
    // sweep so a corrupted serial walk is attributed to the cloning
    // differential, not to the multi-threaded merges that inherit it.
    let cloning = generate_schedule_table_cloning(cpg, arch, &config);
    if let Some(divergence) = divergence(&baseline, &cloning) {
        return Err(OracleFailure {
            oracle: OracleKind::CloningWalk,
            detail: divergence,
        });
    }

    // Oracle 3: thread-count identity.
    for threads in [2usize, 4, 8] {
        let result = generate_schedule_table(cpg, arch, &config.with_threads(threads));
        vector.spec_discards = vector.spec_discards.max(result.spec_discards());
        if let Some(divergence) = divergence(&baseline, &result) {
            return Err(OracleFailure {
                oracle: OracleKind::ThreadIdentity,
                detail: format!("{threads} threads: {divergence}"),
            });
        }
    }

    // Oracle 5: warm session replay vs cold merges, through the workload's
    // edit sequence.
    let mut session = MergeSession::new(cpg, arch, &config);
    if let Some(divergence) = divergence(&baseline, &session.merge()) {
        return Err(OracleFailure {
            oracle: OracleKind::WarmVsCold,
            detail: format!("initial session merge: {divergence}"),
        });
    }
    let mut edited = cpg.clone();
    for (step, edit) in workload.session_edits(system).iter().enumerate() {
        let cold_applied = edit.apply(&mut edited);
        let warm_applied = session.apply_edit(edit);
        if cold_applied.is_err() != warm_applied.is_err() {
            return Err(OracleFailure {
                oracle: OracleKind::WarmVsCold,
                detail: format!(
                    "edit {step} ({edit}) accepted by one side only: \
                     cold {cold_applied:?}, warm {warm_applied:?}"
                ),
            });
        }
        if cold_applied.is_err() {
            continue;
        }
        let cold = generate_schedule_table(&edited, arch, &config);
        let warm = session.merge();
        if let Some(divergence) = divergence(&cold, &warm) {
            return Err(OracleFailure {
                oracle: OracleKind::WarmVsCold,
                detail: format!("edit {step} ({edit}): {divergence}"),
            });
        }
    }

    // Oracle 6: every tabled activation time is realizable, or counted.
    let replayed = replayed_slips(cpg, arch, system.broadcast_time(), &baseline);
    if replayed != baseline.stats().lock_slips {
        return Err(OracleFailure {
            oracle: OracleKind::ReferenceRealizability,
            detail: format!(
                "{replayed} unrealizable activation time(s) but {} counted",
                baseline.stats().lock_slips
            ),
        });
    }

    Ok(vector)
}

/// First observable difference between two merge results, if any.
#[must_use]
pub fn divergence(expected: &MergeResult, actual: &MergeResult) -> Option<String> {
    if expected.table() != actual.table() {
        return Some("schedule tables differ".to_owned());
    }
    if expected.tracks() != actual.tracks() {
        return Some("track sets differ".to_owned());
    }
    if expected.path_schedules() != actual.path_schedules() {
        return Some("path schedules differ".to_owned());
    }
    if expected.delta_m() != actual.delta_m() || expected.delta_max() != actual.delta_max() {
        return Some(format!(
            "delays differ: δ_M {}/{} δ_max {}/{}",
            expected.delta_m(),
            actual.delta_m(),
            expected.delta_max(),
            actual.delta_max()
        ));
    }
    if expected.steps() != actual.steps() {
        return Some("step traces differ".to_owned());
    }
    let (a, b) = (expected.stats(), actual.stats());
    if a != b {
        return Some(format!("stats differ: {a:?} vs {b:?}"));
    }
    None
}

/// Replays the final table through the naive reference scheduler: every job
/// locked at its applicable tabled time on its recorded resource. Returns
/// the number of locks the reference scheduler could not honour.
fn replayed_slips(cpg: &Cpg, arch: &Architecture, tau0: Time, result: &MergeResult) -> usize {
    let table = result.table();
    let mut replayed = 0usize;
    for track in result.tracks().iter() {
        let assignment = Assignment::from_cube(&track.label());
        let mut locks: HashMap<Job, (Time, Option<PeId>)> = HashMap::new();
        let jobs = track
            .processes()
            .iter()
            .filter(|&&p| !cpg.process(p).kind().is_dummy())
            .map(|&p| Job::Process(p))
            .chain(track.determined_conditions().map(Job::Broadcast));
        for job in jobs {
            if let Some(time) = table.activation_time(job, &assignment) {
                locks.insert(job, (time, table.activation_resource(job, &assignment)));
            }
        }
        let original = reference::schedule_track(cpg, arch, tau0, track);
        let replay = reference::reschedule(cpg, arch, tau0, track, &original, &locks);
        replayed += replay.slipped_locks().len();
    }
    replayed
}
