//! On-disk corpus format for banked adversarial workloads.
//!
//! Same shape as the race-schedule corpus (`tests/corpus/race_schedules/`):
//! `#` comment lines followed by `key: value` lines. A workload entry
//! records the generator configuration and the encoded mutation/edit
//! sequences — never a materialized graph — so replaying an entry
//! re-derives the exact system via the deterministic generator.
//!
//! ```text
//! # Adversarial workload: degraded outcome with surviving lock slips.
//! nodes: 24
//! paths: 4
//! processors: 3
//! buses: 2
//! max_comm: 5
//! seed: 12345
//! ops: exec:3:400 procs:1
//! edits: exec:0:9
//! ```

use cpg_gen::{GeneratorConfig, Workload};

/// Serializes a workload as a corpus entry. `comments` become leading `#`
/// lines (one per element, without the marker).
#[must_use]
pub fn encode_entry(workload: &Workload, comments: &[String]) -> String {
    let mut out = String::new();
    for comment in comments {
        out.push_str("# ");
        out.push_str(comment);
        out.push('\n');
    }
    let config = &workload.config;
    out.push_str(&format!("nodes: {}\n", config.nodes()));
    out.push_str(&format!("paths: {}\n", config.target_paths()));
    out.push_str(&format!("processors: {}\n", config.processors()));
    out.push_str(&format!("buses: {}\n", config.buses()));
    out.push_str(&format!("max_comm: {}\n", config.max_comm_time()));
    out.push_str(&format!("seed: {}\n", config.seed()));
    if !workload.ops.is_empty() {
        out.push_str(&format!("ops: {}\n", workload.encode_ops()));
    }
    if !workload.edits.is_empty() {
        out.push_str(&format!("edits: {}\n", workload.encode_edits()));
    }
    out
}

/// Parses a corpus entry back into a workload.
///
/// Returns `Err` with a description of the first malformed or missing key.
/// Unknown keys are rejected so that typos in banked entries fail loudly.
pub fn parse_entry(text: &str) -> Result<Workload, String> {
    let mut nodes = None;
    let mut paths = None;
    let mut processors = None;
    let mut buses = None;
    let mut max_comm = None;
    let mut seed = None;
    let mut ops = Vec::new();
    let mut edits = Vec::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed line {line:?}"))?;
        let value = value.trim();
        let parse_usize = |value: &str| {
            value
                .parse::<usize>()
                .map_err(|_| format!("bad value {value:?}"))
        };
        match key.trim() {
            "nodes" => nodes = Some(parse_usize(value)?),
            "paths" => paths = Some(parse_usize(value)?),
            "processors" => processors = Some(parse_usize(value)?),
            "buses" => buses = Some(parse_usize(value)?),
            "max_comm" => {
                max_comm = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad value {value:?}"))?,
                );
            }
            "seed" => {
                seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad value {value:?}"))?,
                );
            }
            "ops" => {
                ops = Workload::parse_ops(value).ok_or_else(|| format!("bad ops {value:?}"))?;
            }
            "edits" => {
                edits =
                    Workload::parse_edits(value).ok_or_else(|| format!("bad edits {value:?}"))?;
            }
            other => return Err(format!("unknown corpus key {other:?}")),
        }
    }

    let nodes = nodes.ok_or("missing key `nodes`")?;
    let paths = paths.ok_or("missing key `paths`")?;
    let mut config =
        GeneratorConfig::new(nodes, paths).with_seed(seed.ok_or("missing key `seed`")?);
    if let Some(processors) = processors {
        config = config.with_processors(processors);
    }
    if let Some(buses) = buses {
        config = config.with_buses(buses);
    }
    if let Some(max_comm) = max_comm {
        config = config.with_max_comm_time(max_comm);
    }
    let mut workload = Workload::new(config);
    workload.ops = ops;
    workload.edits = edits;
    Ok(workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg_gen::{EditOp, WorkloadOp};

    #[test]
    fn entries_round_trip() {
        let mut workload =
            Workload::new(GeneratorConfig::new(24, 4).with_processors(2).with_seed(99));
        workload.ops = vec![
            WorkloadOp::ExecTime {
                slot: 3,
                units: 400,
            },
            WorkloadOp::SqueezeProcessors { processors: 1 },
        ];
        workload.edits = vec![EditOp::ExecTime { slot: 0, units: 9 }];
        let encoded = encode_entry(&workload, &["an offender".to_owned()]);
        let decoded = parse_entry(&encoded).unwrap();
        assert_eq!(decoded, workload);
    }

    #[test]
    fn empty_sequences_are_omitted_and_restored() {
        let workload = Workload::new(GeneratorConfig::new(12, 2).with_seed(7));
        let encoded = encode_entry(&workload, &[]);
        assert!(!encoded.contains("ops:"));
        assert!(!encoded.contains("edits:"));
        let decoded = parse_entry(&encoded).unwrap();
        assert_eq!(decoded, workload);
    }

    #[test]
    fn unknown_keys_fail_loudly() {
        assert!(parse_entry("nodes: 10\npaths: 2\nseed: 1\nbogus: 3").is_err());
        assert!(parse_entry("nodes: 10\npaths: 2").is_err());
        assert!(parse_entry("nodes: ten\npaths: 2\nseed: 1").is_err());
    }
}
