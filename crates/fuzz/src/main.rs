//! `cpg-fuzz` — CLI driver for the adversarial workload fuzzer.
//!
//! All knobs are flags (the fuzzer reads no environment variables):
//!
//! ```text
//! cpg-fuzz [--seed N] [--iterations N] [--max-seconds N] [--bank DIR]
//! cpg-fuzz --replay FILE...
//! ```
//!
//! With `--bank DIR`, every distinct behavior signature's representative is
//! shrunk and written as a corpus entry under `DIR`. The process exits
//! nonzero when any oracle failed.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cpg_fuzz::{corpus, fuzz, shrink_preserving_signature, FuzzConfig, Signature};

struct CliArgs {
    config: FuzzConfig,
    bank: Option<PathBuf>,
    replay: Vec<PathBuf>,
}

fn parse_args() -> Result<CliArgs, String> {
    let mut config = FuzzConfig::new(0x5eed, 200);
    let mut bank = None;
    let mut replay = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--seed" => config.seed = parse_seed(&value("--seed")?)?,
            "--iterations" => config.iterations = parse(&value("--iterations")?)?,
            "--max-seconds" => config.max_seconds = Some(parse(&value("--max-seconds")?)?),
            "--bank" => bank = Some(PathBuf::from(value("--bank")?)),
            "--replay" => replay.push(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => {
                println!(
                    "usage: cpg-fuzz [--seed N] [--iterations N] [--max-seconds N] [--bank DIR]\n\
                     \x20      cpg-fuzz --replay FILE..."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(CliArgs {
        config,
        bank,
        replay,
    })
}

fn parse<T: std::str::FromStr>(value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("malformed numeric value {value:?}"))
}

/// Seeds are printed in hex (`Found by cpg-fuzz --seed 0x…`), so the flag
/// accepts both hex and decimal to keep those lines replayable verbatim.
fn parse_seed(value: &str) -> Result<u64, String> {
    match value.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).map_err(|_| format!("malformed seed {value:?}")),
        None => parse(value),
    }
}

fn hex(signature: Signature) -> String {
    signature.iter().map(|byte| format!("{byte:02x}")).collect()
}

/// Replays banked corpus entries through the full oracle battery.
fn replay_entries(paths: &[PathBuf]) -> ExitCode {
    let mut failures = 0usize;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("cpg-fuzz: cannot read {}: {error}", path.display());
                return ExitCode::from(2);
            }
        };
        let workload = match cpg_fuzz::corpus::parse_entry(&text) {
            Ok(workload) => workload,
            Err(error) => {
                eprintln!("cpg-fuzz: {}: {error}", path.display());
                return ExitCode::from(2);
            }
        };
        let system = match workload.materialize() {
            Ok(system) => system,
            Err(error) => {
                eprintln!(
                    "cpg-fuzz: {}: does not materialize: {error}",
                    path.display()
                );
                failures += 1;
                continue;
            }
        };
        match cpg_fuzz::run_oracles(&workload, &system) {
            Ok(vector) => {
                println!(
                    "{}: ok, behavior {}",
                    path.display(),
                    hex(vector.signature())
                );
            }
            Err(failure) => {
                eprintln!("{}: FAILURE [{failure}]", path.display());
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("cpg-fuzz: {message}");
            return ExitCode::from(2);
        }
    };

    if !args.replay.is_empty() {
        return replay_entries(&args.replay);
    }

    println!(
        "cpg-fuzz: seed {:#x}, {} iterations{}",
        args.config.seed,
        args.config.iterations,
        args.config
            .max_seconds
            .map(|s| format!(", {s}s cutoff"))
            .unwrap_or_default()
    );
    let report = fuzz(&args.config);
    println!(
        "ran {} iterations: {} behavior signatures ({} search cells), \
         {} benign constructor rejections, {} oracle failures",
        report.iterations,
        report.behaviors.len(),
        report.search_cells,
        report.benign_rejections,
        report.failures.len()
    );

    for entry in &report.behaviors {
        println!(
            "  behavior {}: gen seed {:#x}, {} ops, {} edits \
             (nodes {}, depth {}, repairs {}, slips {}, rejection {})",
            hex(entry.vector.signature()),
            entry.workload.config.seed(),
            entry.workload.ops.len(),
            entry.workload.edits.len(),
            entry.vector.tree_nodes,
            entry.vector.max_walk_depth,
            entry.vector.conflicts_repaired,
            entry.vector.lock_slips,
            entry.vector.rejection,
        );
    }

    for failure in &report.failures {
        // The printed seed plus the encoded entry reproduce the offender
        // without the fuzzer: paste the entry into a corpus file and replay.
        eprintln!(
            "FAILURE [{}] gen seed {:#x}\n{}",
            failure.failure,
            failure.workload.config.seed(),
            corpus::encode_entry(
                &failure.workload,
                &[format!("offender: {}", failure.failure)]
            )
        );
    }

    if let Some(bank) = args.bank {
        if let Err(error) = std::fs::create_dir_all(&bank) {
            eprintln!("cpg-fuzz: cannot create {}: {error}", bank.display());
            return ExitCode::from(2);
        }
        for (index, entry) in report.behaviors.iter().enumerate() {
            let signature = entry.vector.signature();
            let shrunk = shrink_preserving_signature(&entry.workload, signature);
            let comments = vec![
                format!(
                    "Adversarial workload {index:02}: behavior signature {}.",
                    hex(signature)
                ),
                format!(
                    "tree_nodes={} adjustments={} conflicts_repaired={} unrepaired={} \
                     slip_repairs={} lock_slips={} max_walk_depth={} repair_rounds={} \
                     tracks={} rejection={} degraded={}",
                    entry.vector.tree_nodes,
                    entry.vector.adjustments,
                    entry.vector.conflicts_repaired,
                    entry.vector.unrepaired_conflicts,
                    entry.vector.slip_repairs,
                    entry.vector.lock_slips,
                    entry.vector.max_walk_depth,
                    entry.vector.repair_rounds,
                    entry.vector.tracks,
                    entry.vector.rejection,
                    entry.vector.degraded,
                ),
                format!(
                    "Found by cpg-fuzz --seed {:#x}; shrunk with ddmin.",
                    args.config.seed
                ),
            ];
            let path = bank.join(format!("w{index:02}_{}.txt", &hex(signature)[..8]));
            if let Err(error) = std::fs::write(&path, corpus::encode_entry(&shrunk, &comments)) {
                eprintln!("cpg-fuzz: cannot write {}: {error}", path.display());
                return ExitCode::from(2);
            }
            println!("banked {}", path.display());
        }
    }

    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
