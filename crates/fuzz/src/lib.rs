//! Coverage-driven adversarial workload fuzzer for the merge stack.
//!
//! Random workload sampling (`cpg-gen`) exercises the scheduler on *typical*
//! systems; this crate hunts the atypical ones. Its coverage signal is not
//! code coverage but the merger's own behavior: the counters of
//! [`MergeStats`](cpg_merge::MergeStats) (tree nodes, adjustments, repairs,
//! slips, walk depth, repair rounds) quantized into a [`Signature`] — a cell
//! in behavior space. Workloads whose mutated offspring land in fresh cells
//! are retained and mutated further, so the search gravitates toward inputs
//! that make the merger do *new things*: deep decision trees, repair storms,
//! degraded outcomes, typed rejections of every flavour.
//!
//! The pieces:
//!
//! * [`behavior`] — [`BehaviorVector`], its quantized [`Signature`] and the
//!   novelty archive;
//! * [`oracle`] — the differential battery ([`run_oracles`]): no-panic,
//!   typed input validation, thread-count identity, the clone-based walk,
//!   warm-vs-cold session replay and reference realizability;
//! * [`fuzz`] — the mutation loop ([`fuzz()`](fuzz::fuzz)) and the ddmin
//!   offender reducers;
//! * [`corpus`] — the `key: value` on-disk format for banked workloads
//!   (`tests/corpus/adversarial/`), mirroring the race-schedule corpus.
//!
//! Workloads themselves (mutation operators, deterministic
//! re-materialization) live in [`cpg_gen::Workload`] so the generator owns
//! reproducibility; this crate owns the search and the oracles. The fuzzer
//! reads no environment variables — every run is reproducible from its
//! printed seed.

#![forbid(unsafe_code)]

pub mod behavior;
pub mod corpus;
pub mod fuzz;
pub mod oracle;

pub use behavior::{BehaviorVector, NoveltyArchive, Signature, SIGNATURE_LEN};
pub use fuzz::{
    fuzz, shrink_failure, shrink_preserving_signature, BehaviorEntry, FailureEntry, FuzzConfig,
    FuzzReport,
};
pub use oracle::{run_oracles, OracleFailure, OracleKind};
